"""Core data structures: the skew-adaptive locality-sensitive filtering index.

The public entry points are:

* :class:`~repro.core.skewed_index.SkewAdaptiveIndex` — the adversarial-query
  variant of Theorem 2 (threshold ``s(x, j, i) = 1/(b1 |x| − j)``).
* :class:`~repro.core.correlated_index.CorrelatedIndex` — the correlated-query
  variant of Theorem 1 (threshold ``s(x, j, i) = (1+δ)/(p̂_i C log n − j)``).
* :func:`~repro.core.join.similarity_join` — set similarity join built from
  repeated similarity search queries (Section 1.1).

Lower-level building blocks (path generation, thresholds, the inverted filter
index and the generic engine) are exposed for baselines, ablations and tests.
"""

from repro.core.config import (
    DEFAULT_BATCH_SIZE,
    BatchQueryConfig,
    CorrelatedIndexConfig,
    PersistenceConfig,
    SkewAdaptiveIndexConfig,
)
from repro.core.correlated_index import CorrelatedIndex
from repro.core.engine import FilterEngine
from repro.core.inverted_index import InvertedFilterIndex
from repro.core.join import JoinResult, similarity_join, similarity_self_join
from repro.core.mmap_store import LazyVectorStore, ShardedInvertedFilterIndex
from repro.core.paths import PathGenerator, default_max_depth
from repro.core.serialization import (
    convert_index_file,
    describe_index_file,
    index_disk_bytes,
    load_index,
    save_index,
)
from repro.core.skewed_index import SkewAdaptiveIndex
from repro.core.stats import BatchQueryStats, BuildStats, QueryStats
from repro.core.thresholds import (
    AdversarialThreshold,
    ConstantThreshold,
    CorrelatedThreshold,
    ThresholdPolicy,
)

__all__ = [
    "BatchQueryConfig",
    "BatchQueryStats",
    "DEFAULT_BATCH_SIZE",
    "CorrelatedIndex",
    "CorrelatedIndexConfig",
    "SkewAdaptiveIndex",
    "SkewAdaptiveIndexConfig",
    "FilterEngine",
    "InvertedFilterIndex",
    "LazyVectorStore",
    "ShardedInvertedFilterIndex",
    "JoinResult",
    "similarity_join",
    "similarity_self_join",
    "PathGenerator",
    "PersistenceConfig",
    "default_max_depth",
    "save_index",
    "load_index",
    "convert_index_file",
    "describe_index_file",
    "index_disk_bytes",
    "BuildStats",
    "QueryStats",
    "AdversarialThreshold",
    "ConstantThreshold",
    "CorrelatedThreshold",
    "ThresholdPolicy",
]

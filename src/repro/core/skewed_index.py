"""The adversarial-query skew-adaptive index (Theorem 2).

:class:`SkewAdaptiveIndex` answers Braun-Blanquet similarity search queries
against a dataset sampled from a known product distribution
``D[p_1, ..., p_d]``.  The sampling thresholds follow Section 5:
``s(x, j, i) = 1/(b1 |x| − j)``, the recursion stops once the probability
product along a path drops below ``1/n``, and the skew of the distribution
enters through that stopping rule — paths through rare items terminate after
very few steps, while paths through frequent items must grow long before
their collision probability with uncorrelated vectors is under control.

Typical usage::

    from repro import SkewAdaptiveIndex, ItemDistribution

    distribution = ItemDistribution(probabilities)
    index = SkewAdaptiveIndex(distribution, b1=0.5, seed=7)
    index.build(dataset)                      # iterable of item-id sets
    match, stats = index.query(query_set)     # index into dataset, or None
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.core.config import SkewAdaptiveIndexConfig
from repro.core.engine import FilterEngine
from repro.core.stats import BatchQueryStats, BuildStats, QueryStats
from repro.core.thresholds import AdversarialThreshold
from repro.data.distributions import ItemDistribution

SetLike = Iterable[int]


class SkewAdaptiveIndex:
    """Skew-adaptive set similarity search for adversarial queries.

    Parameters
    ----------
    distribution:
        The item-level distribution the dataset is drawn from, either an
        :class:`ItemDistribution` or a raw probability array.  For real data
        with unknown probabilities use
        :meth:`SkewAdaptiveIndex.from_collection`, which plugs in empirical
        frequencies (Section 9 of the paper).
    b1:
        Braun-Blanquet similarity threshold: a query returns a vector ``x``
        with ``B(x, q) >= b1`` when one exists (with constant probability per
        the paper's guarantee, boosted by repetitions).
    config:
        Full configuration object; when given, ``b1`` and ``seed`` arguments
        are ignored.
    seed:
        Hash-function seed.
    """

    def __init__(
        self,
        distribution: ItemDistribution | Sequence[float] | np.ndarray,
        b1: float = 0.5,
        config: SkewAdaptiveIndexConfig | None = None,
        seed: int = 0,
    ):
        if config is None:
            config = SkewAdaptiveIndexConfig(b1=b1, seed=seed)
        self._config = config
        if isinstance(distribution, ItemDistribution):
            self._distribution = distribution
        else:
            self._distribution = ItemDistribution(np.asarray(distribution, dtype=np.float64))
        self._engine: FilterEngine | None = None

    # ------------------------------------------------------------------ #
    # Properties
    # ------------------------------------------------------------------ #

    @property
    def config(self) -> SkewAdaptiveIndexConfig:
        return self._config

    @property
    def distribution(self) -> ItemDistribution:
        return self._distribution

    @property
    def b1(self) -> float:
        return self._config.b1

    @property
    def build_stats(self) -> BuildStats:
        self._require_built()
        assert self._engine is not None
        return self._engine.build_stats

    @property
    def num_indexed(self) -> int:
        """Number of vectors currently indexed (0 before :meth:`build`)."""
        return len(self._engine.vectors) if self._engine is not None else 0

    @property
    def total_stored_filters(self) -> int:
        """Space usage in (filter, vector) postings across repetitions."""
        self._require_built()
        assert self._engine is not None
        return self._engine.total_stored_filters

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def from_collection(
        cls,
        collection: Iterable[SetLike],
        b1: float = 0.5,
        config: SkewAdaptiveIndexConfig | None = None,
        seed: int = 0,
        dimension: int | None = None,
    ) -> "SkewAdaptiveIndex":
        """Build an index over a dataset using its empirical item frequencies.

        The collection is materialised, empirical frequencies are computed,
        the index is constructed with those as the distribution, and the data
        is indexed immediately.
        """
        from repro.data.datasets import SetCollection

        if isinstance(collection, SetCollection):
            materialised = collection
        else:
            materialised = SetCollection(collection, dimension=dimension)
        index = cls(materialised.empirical_distribution(), b1=b1, config=config, seed=seed)
        index.build(materialised)
        return index

    def build(self, collection: Iterable[SetLike]) -> BuildStats:
        """Index a dataset (any iterable of item-id collections)."""
        vectors = [frozenset(int(item) for item in members) for members in collection]
        self._engine = self._create_engine(max(len(vectors), 1))
        return self._engine.build(vectors)

    def _create_engine(self, num_vectors: int) -> FilterEngine:
        """A fresh, empty engine for a dataset of the given size.

        Exposed so that :mod:`repro.core.serialization` can reconstruct the
        engine (hash functions, thresholds, stopping rule) from the saved
        configuration and then restore the saved state directly, without a
        placeholder build.
        """
        return FilterEngine(
            probabilities=self._distribution.probabilities,
            threshold_policy=AdversarialThreshold(self._config.b1),
            acceptance_threshold=self._config.b1,
            num_vectors_hint=num_vectors,
            repetitions=self._config.repetitions,
            max_depth=self._config.max_depth,
            collect_at_max_depth=False,
            stop_product_enabled=True,
            max_paths_per_vector=self._config.max_paths_per_vector,
            seed=self._config.seed,
        )

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def query(self, query: SetLike, mode: str = "first") -> tuple[int | None, QueryStats]:
        """Return the id of a stored vector with ``B(x, q) >= b1``, or ``None``.

        See :meth:`repro.core.engine.FilterEngine.query` for the ``mode``
        semantics.
        """
        self._require_built()
        assert self._engine is not None
        return self._engine.query(query, mode=mode)

    def query_batch(
        self,
        queries: Sequence[SetLike],
        mode: str = "first",
        batch_size: int | None = None,
        max_workers: int | None = None,
        deduplicate: bool = True,
        shard_workers: int | None = None,
        allow_partial: bool = False,
        deadline: float | None = None,
    ) -> tuple[list[int | None], BatchQueryStats]:
        """Answer many queries through the vectorised batch subsystem.

        Results are identical to ``[query(q, mode)[0] for q in queries]``;
        see :meth:`repro.core.engine.FilterEngine.query_batch` for the
        execution model and parameters (``shard_workers`` fans probes out
        per shard on mmap-loaded indexes).
        """
        self._require_built()
        assert self._engine is not None
        return self._engine.query_batch(
            queries,
            mode=mode,
            batch_size=batch_size,
            max_workers=max_workers,
            deduplicate=deduplicate,
            shard_workers=shard_workers,
            allow_partial=allow_partial,
            deadline=deadline,
        )

    def query_candidates(self, query: SetLike) -> tuple[set[int], QueryStats]:
        """All candidate ids colliding with the query (used by joins)."""
        self._require_built()
        assert self._engine is not None
        return self._engine.query_candidates(query)

    def query_candidates_batch(
        self,
        queries: Sequence[SetLike],
        batch_size: int | None = None,
        max_workers: int | None = None,
        deduplicate: bool = True,
        shard_workers: int | None = None,
        allow_partial: bool = False,
        deadline: float | None = None,
    ) -> tuple[list[set[int]], BatchQueryStats]:
        """Batched candidate enumeration (the similarity join's primitive)."""
        self._require_built()
        assert self._engine is not None
        return self._engine.query_candidates_batch(
            queries,
            batch_size=batch_size,
            max_workers=max_workers,
            deduplicate=deduplicate,
            shard_workers=shard_workers,
            allow_partial=allow_partial,
            deadline=deadline,
        )

    def query_candidates_arrays_batch(
        self,
        queries: Sequence[SetLike],
        batch_size: int | None = None,
        max_workers: int | None = None,
        deduplicate: bool = True,
        shard_workers: int | None = None,
        allow_partial: bool = False,
        deadline: float | None = None,
    ) -> tuple[list[np.ndarray], BatchQueryStats]:
        """Batched candidate enumeration as sorted id arrays (read-only).

        The CSR merge's native output; the similarity join consumes this to
        verify candidates without materialising per-query Python sets.
        """
        self._require_built()
        assert self._engine is not None
        return self._engine.query_candidates_arrays_batch(
            queries,
            batch_size=batch_size,
            max_workers=max_workers,
            deduplicate=deduplicate,
            shard_workers=shard_workers,
            allow_partial=allow_partial,
            deadline=deadline,
        )

    @property
    def shard_workers(self) -> int | None:
        """Default per-probe shard fan-out (mmap-loaded indexes only)."""
        self._require_built()
        assert self._engine is not None
        return self._engine.shard_workers

    @shard_workers.setter
    def shard_workers(self, workers: int | None) -> None:
        self._require_built()
        assert self._engine is not None
        self._engine.shard_workers = workers

    def get_vector(self, vector_id: int) -> frozenset[int]:
        """The stored vector with the given id."""
        self._require_built()
        assert self._engine is not None
        return self._engine.vectors[vector_id]

    # ------------------------------------------------------------------ #
    # Dynamic updates
    # ------------------------------------------------------------------ #

    def insert(self, members: SetLike) -> int:
        """Insert one vector into the built index and return its id.

        Suitable for a moderate number of additions; if the dataset grows by
        a large factor, rebuild so the ``1/n`` stopping rule and the number
        of repetitions match the new size.
        """
        self._require_built()
        assert self._engine is not None
        return self._engine.insert(members)

    def remove(self, vector_id: int) -> None:
        """Remove a stored vector by id (it stops appearing in results)."""
        self._require_built()
        assert self._engine is not None
        self._engine.remove(vector_id)

    # ------------------------------------------------------------------ #
    # Internal helpers
    # ------------------------------------------------------------------ #

    def _require_built(self) -> None:
        if self._engine is None:
            raise RuntimeError("the index has not been built yet; call build() first")

    def __repr__(self) -> str:
        return (
            f"SkewAdaptiveIndex(b1={self._config.b1:g}, "
            f"dimension={self._distribution.dimension}, indexed={self.num_indexed})"
        )

"""Inverted index from filters (paths) to the vectors that chose them.

The preprocessing step of the paper stores, for each filter ``f`` chosen by
some dataset vector, the list of vector ids that chose ``f`` ("a standard
dictionary data structure", Section 3).  Queries then look up each of their
own filters and examine the stored vectors.

Paths are tuples of item ids; the index keys them by the tuple itself inside
a Python dict, which gives exact (collision-free) lookups.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

Path = tuple[int, ...]


class InvertedFilterIndex:
    """Maps each filter to the sorted list of vector ids that chose it."""

    def __init__(self) -> None:
        self._postings: dict[Path, list[int]] = {}
        self._total_entries = 0

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    def add(self, vector_id: int, paths: Iterable[Path]) -> int:
        """Register all filters of one vector.  Returns the number added."""
        if vector_id < 0:
            raise ValueError(f"vector_id must be non-negative, got {vector_id}")
        count = 0
        for path in paths:
            self._postings.setdefault(tuple(path), []).append(vector_id)
            count += 1
        self._total_entries += count
        return count

    def add_many(self, filters_per_vector: Sequence[Iterable[Path]]) -> int:
        """Register filters of many vectors, ids being their positions."""
        total = 0
        for vector_id, paths in enumerate(filters_per_vector):
            total += self.add(vector_id, paths)
        return total

    def add_postings(self, path: Path, vector_ids: Sequence[int]) -> None:
        """Restore a full posting list for one filter (used when loading a
        serialised index); appends to any existing postings for that filter."""
        if any(vector_id < 0 for vector_id in vector_ids):
            raise ValueError("vector ids must be non-negative")
        self._postings.setdefault(tuple(path), []).extend(int(v) for v in vector_ids)
        self._total_entries += len(vector_ids)

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #

    def lookup(self, path: Path) -> list[int]:
        """Vector ids that chose ``path`` (empty list if none)."""
        return self._postings.get(tuple(path), [])

    def candidates(self, paths: Iterable[Path]) -> Iterator[int]:
        """Yield every (vector id) collision for the given query filters.

        A vector id is yielded once per shared filter, matching the paper's
        work measure ``Σ_x |F(q) ∩ F(x)|``; callers that want distinct
        candidates deduplicate downstream.
        """
        for path in paths:
            yield from self._postings.get(tuple(path), [])

    def __contains__(self, path: Path) -> bool:
        return tuple(path) in self._postings

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #

    @property
    def num_filters(self) -> int:
        """Number of distinct filters stored."""
        return len(self._postings)

    @property
    def total_entries(self) -> int:
        """Total number of (filter, vector) postings — the space usage."""
        return self._total_entries

    def posting_sizes(self) -> list[int]:
        """Sizes of all posting lists (useful for skew diagnostics)."""
        return [len(vector_ids) for vector_ids in self._postings.values()]

    def heaviest_filters(self, count: int = 10) -> list[tuple[Path, int]]:
        """The ``count`` filters with the largest posting lists."""
        ranked = sorted(
            self._postings.items(), key=lambda entry: len(entry[1]), reverse=True
        )
        return [(path, len(vector_ids)) for path, vector_ids in ranked[:count]]

    def __len__(self) -> int:
        return len(self._postings)

    def __repr__(self) -> str:
        return (
            f"InvertedFilterIndex(num_filters={self.num_filters}, "
            f"total_entries={self.total_entries})"
        )

"""Inverted index from filters (paths) to the vectors that chose them.

The preprocessing step of the paper stores, for each filter ``f`` chosen by
some dataset vector, the list of vector ids that chose ``f`` ("a standard
dictionary data structure", Section 3).  Queries then look up each of their
own filters and examine the stored vectors.

The store is array-backed rather than a dict-of-lists: each distinct filter
occupies one *slot*, and the compacted state lives in five flat numpy arrays

* ``path_items`` / ``path_offsets`` — the filters themselves in CSR form,
* ``path_keys`` — the 64-bit folded key (:func:`~repro.hashing.pairwise.
  fold_path`) of each filter, and
* ``posting_ids`` / ``posting_offsets`` — the posting lists in CSR form,

which is also, verbatim, the on-disk representation used by
:mod:`repro.core.serialization` (one file holds the arrays, nothing else).

Ingestion is append-only: :meth:`InvertedFilterIndex.add` pushes flat
``(key, path, vector_id)`` postings onto a pending buffer without resolving
slots, and :meth:`InvertedFilterIndex.compact` folds the whole buffer into
the CSR arrays with one stable sort over the folded keys plus ``np.unique``
style group detection — no per-posting dict lookups.  Slots end up ordered
by folded key, which doubles as the *probe table*: lookups (scalar and the
batched :meth:`InvertedFilterIndex.probe_batch`) binary-search the sorted
key array instead of going through a Python dict.  Because a 64-bit key
could in principle collide, stored paths are compared exactly (vectorised
during compaction and probing) before a slot is accepted, so lookups remain
collision-free like the original dict-of-tuples; genuinely colliding keys
are detected during compaction and handled by an exact chained fallback.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.core.kernels import get_impl, new_counters
from repro.core.paths import paths_to_csr
from repro.hashing.pairwise import fold_path, fold_paths_csr

Path = tuple[int, ...]

#: Array names of the compacted store, in serialisation order.  The folded
#: path keys are deliberately absent: they are high-entropy (incompressible)
#: and deterministically recomputable, so the on-disk format re-derives them
#: on load instead of storing 8 random-looking bytes per filter.
STATE_ARRAY_NAMES = (
    "path_items",
    "path_offsets",
    "posting_ids",
    "posting_offsets",
)


def _segment_gather(
    source: np.ndarray, starts: np.ndarray, lengths: np.ndarray
) -> np.ndarray:
    """Concatenate ``source[starts[k] : starts[k] + lengths[k]]`` for all k.

    The workhorse of the CSR pipeline: one fancy-indexing pass replaces a
    Python loop over variable-length segments.
    """
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=source.dtype)
    out_starts = np.cumsum(lengths) - lengths
    indices = np.arange(total, dtype=np.int64) + np.repeat(starts - out_starts, lengths)
    return source[indices]


class InvertedFilterIndex:
    """Maps each filter to the sorted list of vector ids that chose it."""

    is_sharded = False

    def __init__(self) -> None:
        # Compacted (frozen) slots: CSR arrays over paths and postings,
        # ordered by folded key after a bulk compact.
        self._path_items = np.empty(0, dtype=np.int64)
        self._path_offsets = np.zeros(1, dtype=np.int64)
        self._path_keys = np.empty(0, dtype=np.uint64)
        self._posting_ids = np.empty(0, dtype=np.int64)
        self._posting_offsets = np.zeros(1, dtype=np.int64)
        # Probe tables: the slot keys in sorted order plus the permutation
        # mapping sorted positions back to slots.  ``_has_duplicate_keys``
        # records whether any two slots share a 64-bit key (forced
        # collisions), which switches probing to the exact chained path.
        self._sorted_keys = np.empty(0, dtype=np.uint64)
        self._key_order = np.empty(0, dtype=np.int64)
        self._has_duplicate_keys = False
        # Append-only overlay: one (key, path, vector id) triple per posting
        # added since the last compact().  No slot resolution happens here.
        self._pending_keys: list[int] = []
        self._pending_paths: list[Path] = []
        self._pending_ids: list[int] = []
        self._total_entries = 0
        #: Kernel work counters accumulated by compaction (chain probes when
        #: forced collisions are resolved); callers fold them into BuildStats.
        self.kernel_counters = new_counters()

    # ------------------------------------------------------------------ #
    # Construction (append-only)
    # ------------------------------------------------------------------ #

    def add(
        self,
        vector_id: int,
        paths: Iterable[Path],
        keys: Sequence[int] | None = None,
    ) -> int:
        """Register all filters of one vector.  Returns the number added.

        ``keys``, when given, must hold the folded key of each path (as
        produced by the path generators); this skips the per-path re-fold on
        the build hot path.  The postings land in a flat pending buffer and
        are merged into the CSR arrays by the next :meth:`compact` (which
        every read path triggers automatically), so the per-posting cost is
        three list appends.
        """
        if vector_id < 0:
            raise ValueError(f"vector_id must be non-negative, got {vector_id}")
        paths = [tuple(path) for path in paths]
        if keys is None:
            keys = [fold_path(path) for path in paths]
        elif len(paths) != len(keys):
            raise ValueError(
                f"got {len(keys)} keys for {len(paths)} paths; need one per path"
            )
        self._pending_paths.extend(paths)
        self._pending_keys.extend(int(key) for key in keys)
        self._pending_ids.extend([vector_id] * len(paths))
        self._total_entries += len(paths)
        return len(paths)

    def add_many(self, filters_per_vector: Sequence[Iterable[Path]]) -> int:
        """Register filters of many vectors, ids being their positions."""
        total = 0
        for vector_id, paths in enumerate(filters_per_vector):
            total += self.add(vector_id, paths)
        return total

    def add_postings(self, path: Path, vector_ids: Sequence[int]) -> None:
        """Restore a full posting list for one filter (used when loading a
        serialised index); appends to any existing postings for that filter."""
        vector_ids = [int(v) for v in vector_ids]
        if any(vector_id < 0 for vector_id in vector_ids):
            raise ValueError("vector ids must be non-negative")
        path = tuple(path)
        key = fold_path(path)
        self._pending_paths.extend([path] * len(vector_ids))
        self._pending_keys.extend([key] * len(vector_ids))
        self._pending_ids.extend(vector_ids)
        self._total_entries += len(vector_ids)

    # ------------------------------------------------------------------ #
    # Compaction (vectorised bulk ingestion)
    # ------------------------------------------------------------------ #

    def compact(self) -> None:
        """Merge the pending postings into the flat CSR arrays.

        The whole pending stream — prefixed by the expanded frozen postings
        when re-compacting after inserts — is stable-sorted by folded key,
        group boundaries become slots, and the posting lists fall out in
        original stream order (frozen entries first, then the overlay's
        appends, in insertion order), so queries behave identically before
        and after compaction.  Path identity within each key group is
        verified with a vectorised item comparison; if two *distinct* paths
        genuinely share a 64-bit key, compaction falls back to an exact
        chained merge.  Idempotent and cheap when nothing is pending.
        """
        if not self._pending_keys:
            return

        pending_keys = np.asarray(self._pending_keys, dtype=np.uint64)
        pending_ids = np.asarray(self._pending_ids, dtype=np.int64)
        pending_items, pending_offsets = paths_to_csr(self._pending_paths)
        num_pending = pending_keys.size
        frozen_slots = self._path_keys.size
        frozen_counts = np.diff(self._posting_offsets)

        # The full posting stream plus, per entry, a reference into a
        # combined path table (frozen slot paths first, then the pending
        # entries' own paths).
        if frozen_slots:
            stream_keys = np.concatenate(
                [np.repeat(self._path_keys, frozen_counts), pending_keys]
            )
            stream_ids = np.concatenate([self._posting_ids, pending_ids])
            stream_refs = np.concatenate(
                [
                    np.repeat(np.arange(frozen_slots, dtype=np.int64), frozen_counts),
                    frozen_slots + np.arange(num_pending, dtype=np.int64),
                ]
            )
            table_offsets = np.concatenate(
                [self._path_offsets, self._path_offsets[-1] + pending_offsets[1:]]
            )
            table_items = np.concatenate([self._path_items, pending_items])
        else:
            stream_keys = pending_keys
            stream_ids = pending_ids
            stream_refs = np.arange(num_pending, dtype=np.int64)
            table_offsets = pending_offsets
            table_items = pending_items
        table_lengths = np.diff(table_offsets)

        order = np.argsort(stream_keys, kind="stable")
        keys_sorted = stream_keys[order]
        ids_sorted = stream_ids[order]
        refs_sorted = stream_refs[order]

        group_start = np.empty(keys_sorted.size, dtype=bool)
        group_start[0] = True
        np.not_equal(keys_sorted[1:], keys_sorted[:-1], out=group_start[1:])
        group_ids = np.cumsum(group_start) - 1

        dirty_groups = self._inconsistent_groups(
            group_start, group_ids, refs_sorted, table_items, table_offsets, table_lengths
        )
        if dirty_groups.size:
            # Genuine 64-bit key collisions between distinct paths
            # (astronomically rare in real data; exercised by tests that
            # force equal keys): resolve only the colliding groups through
            # the chain kernel, keeping everything else vectorised.
            self._compact_with_chains(
                keys_sorted,
                ids_sorted,
                refs_sorted,
                group_ids,
                dirty_groups,
                table_items,
                table_offsets,
                table_lengths,
            )
            return

        starts = np.flatnonzero(group_start)
        counts = np.diff(np.concatenate([starts, [keys_sorted.size]]))
        canonical = refs_sorted[starts]
        path_lengths = table_lengths[canonical]

        self._path_keys = keys_sorted[starts]
        self._path_items = _segment_gather(
            table_items, table_offsets[canonical], path_lengths
        )
        self._path_offsets = np.zeros(starts.size + 1, dtype=np.int64)
        np.cumsum(path_lengths, out=self._path_offsets[1:])
        self._posting_ids = ids_sorted
        self._posting_offsets = np.zeros(starts.size + 1, dtype=np.int64)
        np.cumsum(counts, out=self._posting_offsets[1:])
        # Slots are in key order, so the probe table is the identity view.
        self._sorted_keys = self._path_keys
        self._key_order = np.arange(starts.size, dtype=np.int64)
        self._has_duplicate_keys = False
        self._clear_pending()

    @staticmethod
    def _inconsistent_groups(
        group_start: np.ndarray,
        group_ids: np.ndarray,
        refs_sorted: np.ndarray,
        table_items: np.ndarray,
        table_offsets: np.ndarray,
        table_lengths: np.ndarray,
    ) -> np.ndarray:
        """Key groups referencing more than one distinct path (sorted ids).

        Checks each adjacent same-key pair of stream entries: identical path
        references are trivially equal; the rest are compared by length and
        then item-by-item, all vectorised.  Any group holding two distinct
        paths has an adjacent pair where the content changes, so pairwise
        checks find every colliding group.
        """
        empty = np.empty(0, dtype=np.int64)
        adjacent = np.flatnonzero(~group_start[1:])
        left = refs_sorted[adjacent]
        right = refs_sorted[adjacent + 1]
        differing = left != right
        if not np.any(differing):
            return empty
        adjacent = adjacent[differing]
        left = left[differing]
        right = right[differing]
        lengths = table_lengths[left]
        dirty = lengths != table_lengths[right]
        check = np.flatnonzero(~dirty & (lengths > 0))
        if check.size:
            check_lengths = lengths[check]
            left_items = _segment_gather(
                table_items, table_offsets[left[check]], check_lengths
            )
            right_items = _segment_gather(
                table_items, table_offsets[right[check]], check_lengths
            )
            mismatched = left_items != right_items
            if np.any(mismatched):
                bad = (
                    np.add.reduceat(mismatched, np.cumsum(check_lengths) - check_lengths)
                    > 0
                )
                dirty[check[bad]] = True
        if not np.any(dirty):
            return empty
        return np.unique(group_ids[adjacent[dirty] + 1])

    def _compact_with_chains(
        self,
        keys_sorted: np.ndarray,
        ids_sorted: np.ndarray,
        refs_sorted: np.ndarray,
        group_ids: np.ndarray,
        dirty_groups: np.ndarray,
        table_items: np.ndarray,
        table_offsets: np.ndarray,
        table_lengths: np.ndarray,
    ) -> None:
        """Compact a stream whose ``dirty_groups`` hold forced key collisions.

        Clean groups keep one slot each; the entries of colliding groups go
        through the ``chain_resolve`` kernel, which assigns sub-slots in
        first-appearance (stream) order — the same order the probe chain
        walks — and counts one ``chain_probes`` unit per representative
        comparison.  Slots come out ordered by key with equal-key runs in
        stream order, so the probe tables are the identity permutation, and
        posting lists stay in original stream order exactly as the clean
        path produces them.
        """
        num_groups = int(group_ids[-1]) + 1
        dirty_mask = np.zeros(num_groups, dtype=bool)
        dirty_mask[dirty_groups] = True
        entry_sel = np.flatnonzero(dirty_mask[group_ids])
        sel_refs = refs_sorted[entry_sel]
        sel_lengths = table_lengths[sel_refs]
        entry_offsets = np.zeros(entry_sel.size + 1, dtype=np.int64)
        np.cumsum(sel_lengths, out=entry_offsets[1:])
        entry_items = _segment_gather(table_items, table_offsets[sel_refs], sel_lengths)
        sel_groups = group_ids[entry_sel]
        group_bounds = np.empty(sel_groups.size, dtype=bool)
        group_bounds[0] = True
        np.not_equal(sel_groups[1:], sel_groups[:-1], out=group_bounds[1:])
        group_offsets = np.concatenate(
            [np.flatnonzero(group_bounds), [sel_groups.size]]
        ).astype(np.int64)

        sub_slots, group_counts = get_impl().chain_resolve(
            group_offsets, entry_items, entry_offsets, self.kernel_counters
        )

        counts_per_group = np.ones(num_groups, dtype=np.int64)
        counts_per_group[dirty_groups] = group_counts
        slot_base = np.cumsum(counts_per_group) - counts_per_group
        entry_slot = slot_base[group_ids]
        entry_slot[entry_sel] += sub_slots
        num_slots = int(counts_per_group.sum())

        # The stream is already grouped by key — and therefore by slot base —
        # so only the dirty groups' entries can be out of slot order.  Permute
        # those entries alone (argsort over the dirty selection, stable to
        # keep posting lists in stream order) instead of re-sorting the whole
        # stream: the collision path then costs the clean path plus work
        # proportional to the colliding entries.
        by_slot = np.arange(entry_slot.size, dtype=np.int64)
        by_slot[entry_sel] = entry_sel[np.argsort(entry_slot[entry_sel], kind="stable")]
        slots_sorted = entry_slot[by_slot]
        first_mask = np.empty(slots_sorted.size, dtype=bool)
        first_mask[0] = True
        np.not_equal(slots_sorted[1:], slots_sorted[:-1], out=first_mask[1:])
        canonical = refs_sorted[by_slot][first_mask]
        path_lengths = table_lengths[canonical]

        self._path_keys = keys_sorted[by_slot][first_mask]
        self._path_items = _segment_gather(
            table_items, table_offsets[canonical], path_lengths
        )
        self._path_offsets = np.zeros(num_slots + 1, dtype=np.int64)
        np.cumsum(path_lengths, out=self._path_offsets[1:])
        self._posting_ids = ids_sorted[by_slot]
        posting_counts = np.bincount(entry_slot, minlength=num_slots)
        self._posting_offsets = np.zeros(num_slots + 1, dtype=np.int64)
        np.cumsum(posting_counts, out=self._posting_offsets[1:])
        self._sorted_keys = self._path_keys
        self._key_order = np.arange(num_slots, dtype=np.int64)
        self._has_duplicate_keys = True
        self._clear_pending()

    def _clear_pending(self) -> None:
        self._pending_keys = []
        self._pending_paths = []
        self._pending_ids = []

    def _build_probe_tables(self) -> None:
        self._key_order = np.argsort(self._path_keys, kind="stable").astype(np.int64)
        self._sorted_keys = self._path_keys[self._key_order]
        self._has_duplicate_keys = bool(
            self._sorted_keys.size
            and np.any(self._sorted_keys[1:] == self._sorted_keys[:-1])
        )

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #

    def to_state(self) -> dict[str, np.ndarray]:
        """The compacted store as flat arrays (the on-disk representation).

        Compacts first; the returned arrays are the live internal ones, so
        treat them as read-only.
        """
        self.compact()
        return {
            "path_items": self._path_items,
            "path_offsets": self._path_offsets,
            "posting_ids": self._posting_ids,
            "posting_offsets": self._posting_offsets,
        }

    def to_sorted_state(self) -> tuple[dict[str, np.ndarray], np.ndarray]:
        """The state with slots stably re-ordered by folded key, plus keys.

        This is the slot order format v3 requires on disk (shard slices must
        be key-sorted so the mapped key arrays double as probe tables).
        After a vectorised bulk compaction the store already satisfies it
        and the live arrays are returned as-is; stores in another order
        (loaded from older formats, or rebuilt by the chained-collision
        fallback) are stably permuted, which preserves the relative order of
        equal-key slots — probes that walk an equal-key run therefore visit
        slots in the same order before and after.
        """
        self.compact()
        num_slots = self._path_keys.size
        if np.array_equal(self._key_order, np.arange(num_slots, dtype=np.int64)):
            return self.to_state(), self._path_keys
        order = self._key_order
        path_lengths = np.diff(self._path_offsets)[order]
        posting_lengths = np.diff(self._posting_offsets)[order]
        path_offsets = np.zeros(num_slots + 1, dtype=np.int64)
        np.cumsum(path_lengths, out=path_offsets[1:])
        posting_offsets = np.zeros(num_slots + 1, dtype=np.int64)
        np.cumsum(posting_lengths, out=posting_offsets[1:])
        state = {
            "path_items": _segment_gather(
                self._path_items, self._path_offsets[order], path_lengths
            ),
            "path_offsets": path_offsets,
            "posting_ids": _segment_gather(
                self._posting_ids, self._posting_offsets[order], posting_lengths
            ),
            "posting_offsets": posting_offsets,
        }
        return state, self._sorted_keys

    @classmethod
    def from_state(
        cls, state: Mapping[str, np.ndarray], keys: np.ndarray | None = None
    ) -> "InvertedFilterIndex":
        """Rebuild an index from :meth:`to_state` arrays, validating them.

        Without ``keys``, the folded path keys are re-derived from the
        stored paths with the vectorised
        :func:`~repro.hashing.pairwise.fold_paths_csr` (one array pass per
        recursion level) and the sorted probe tables are rebuilt with a
        single argsort — files written before the CSR-native probe path
        (whose slots are in first-registration order rather than key order)
        load through exactly the same code.  With ``keys`` (format v3 stores
        them, already slot-aligned and ascending), the re-fold and the
        argsort are both skipped: the key array is adopted as the probe
        table directly, which is what makes the v3 RAM load fast.  Raises
        :class:`ValueError` on missing arrays, malformed offsets, mismatched
        array lengths, negative vector ids, or unsorted adopted keys.
        """
        missing = [name for name in STATE_ARRAY_NAMES if name not in state]
        if missing:
            raise ValueError(f"postings state is missing arrays: {missing}")
        path_items = np.ascontiguousarray(state["path_items"], dtype=np.int64)
        path_offsets = np.ascontiguousarray(state["path_offsets"], dtype=np.int64)
        posting_ids = np.ascontiguousarray(state["posting_ids"], dtype=np.int64)
        posting_offsets = np.ascontiguousarray(state["posting_offsets"], dtype=np.int64)

        for name, offsets, flat in (
            ("path", path_offsets, path_items),
            ("posting", posting_offsets, posting_ids),
        ):
            if offsets.ndim != 1 or offsets.size == 0 or int(offsets[0]) != 0:
                raise ValueError(f"malformed {name}_offsets in postings state")
            if np.any(np.diff(offsets) < 0) or int(offsets[-1]) != flat.size:
                raise ValueError(f"{name}_offsets do not describe the {name} array")
        num_slots = path_offsets.size - 1
        if posting_offsets.size - 1 != num_slots:
            raise ValueError("postings state arrays disagree on the number of filters")
        if posting_ids.size and int(posting_ids.min()) < 0:
            raise ValueError("vector ids must be non-negative")
        if path_items.size and int(path_items.min()) < 0:
            raise ValueError("path items must be non-negative")

        index = cls()
        index._path_items = path_items
        index._path_offsets = path_offsets
        index._posting_ids = posting_ids
        index._posting_offsets = posting_offsets
        if keys is None:
            index._path_keys = fold_paths_csr(path_items, path_offsets)
            index._build_probe_tables()
        else:
            keys = np.ascontiguousarray(keys, dtype=np.uint64)
            if keys.size != num_slots:
                raise ValueError(
                    f"postings state stores {num_slots} filters but {keys.size} keys"
                )
            if keys.size > 1 and np.any(keys[1:] < keys[:-1]):
                raise ValueError("adopted path keys must be in ascending order")
            index._path_keys = keys
            index._sorted_keys = keys
            index._key_order = np.arange(num_slots, dtype=np.int64)
            index._has_duplicate_keys = bool(
                keys.size and np.any(keys[1:] == keys[:-1])
            )
        index._total_entries = int(posting_ids.size)
        return index

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #

    def _path_at(self, slot: int) -> Path:
        start = int(self._path_offsets[slot])
        end = int(self._path_offsets[slot + 1])
        return tuple(self._path_items[start:end].tolist())

    def _slot_for(self, path: Path, key: int) -> int | None:
        """The compacted slot storing ``path``, or ``None``.  Compacts."""
        self.compact()
        sorted_keys = self._sorted_keys
        position = int(np.searchsorted(sorted_keys, np.uint64(key)))
        while position < sorted_keys.size and int(sorted_keys[position]) == key:
            slot = int(self._key_order[position])
            if self._path_at(slot) == path:
                return slot
            position += 1
        return None

    def lookup(self, path: Path) -> list[int]:
        """Vector ids that chose ``path`` (empty list if none)."""
        path = tuple(path)
        return self.lookup_keyed(path, fold_path(path))

    def lookup_keyed(self, path: Path, key: int) -> list[int]:
        """:meth:`lookup` with the path's folded key already in hand.

        The generators return the keys alongside the paths, so query probes
        use this to skip re-folding.
        """
        slot = self._slot_for(path, key)
        if slot is None:
            return []
        start = int(self._posting_offsets[slot])
        end = int(self._posting_offsets[slot + 1])
        return self._posting_ids[start:end].tolist()

    def count_probe_shards(self, keys: Sequence[int] | np.ndarray) -> int:
        """Distinct shards the probe keys touch: 1 (the whole store) or 0.

        Interface parity with
        :class:`~repro.core.mmap_store.ShardedInvertedFilterIndex`, which
        routes keys through its manifest fences; the in-memory store is one
        shard.
        """
        return 1 if len(keys) else 0

    def probe_batch(
        self,
        paths: Sequence[Path],
        keys: Sequence[int] | np.ndarray,
        shard_workers: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """:meth:`probe_batch_routed` without the per-probe shard routes."""
        ids, offsets, _route = self.probe_batch_routed(paths, keys, shard_workers)
        return ids, offsets

    def probe_batch_routed(
        self,
        paths: Sequence[Path],
        keys: Sequence[int] | np.ndarray,
        shard_workers: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Resolve many probes at once; CSR slices of their posting lists.

        Parameters
        ----------
        paths:
            The probed filters (used only to verify stored paths exactly, so
            a 64-bit key collision cannot surface foreign postings).
        keys:
            The folded key of each path, as returned by the generators.
        shard_workers:
            Accepted for interface parity with the sharded (mmap) store and
            ignored — the in-memory store has a single probe table.

        Returns
        -------
        (posting_ids, offsets, route):
            ``posting_ids`` is the concatenation of every probe's posting
            list (a gather from the store, in probe order) and ``offsets``
            has length ``len(paths) + 1`` with probe ``k`` occupying
            ``posting_ids[offsets[k]:offsets[k + 1]]``.  Missing filters
            contribute empty segments.  ``route`` holds the shard index each
            probe key routes to — all zeros here, since the in-memory store
            is a single shard — so callers account shard fan-out from the
            probe itself instead of re-routing the same keys.  This is the
            query hot path: one ``searchsorted`` resolves the whole probe
            set against the sorted key table, and no per-path Python list is
            materialised.
        """
        self.compact()
        num_probes = len(paths)
        empty = np.empty(0, dtype=np.int64)
        route = np.zeros(num_probes, dtype=np.int64)
        if num_probes == 0:
            return empty, np.zeros(1, dtype=np.int64), route
        keys_arr = np.ascontiguousarray(keys, dtype=np.uint64)
        sorted_keys = self._sorted_keys
        if sorted_keys.size == 0:
            return empty, np.zeros(num_probes + 1, dtype=np.int64), route

        positions = np.searchsorted(sorted_keys, keys_arr)
        clipped = np.minimum(positions, sorted_keys.size - 1)
        found = sorted_keys[clipped] == keys_arr
        slots = np.where(found, self._key_order[clipped], 0)

        # Exact path verification, vectorised: lengths first, then items.
        probe_items, probe_offsets = paths_to_csr(paths)
        probe_lengths = np.diff(probe_offsets)
        slot_lengths = self._path_offsets[slots + 1] - self._path_offsets[slots]
        match = found & (slot_lengths == probe_lengths)
        check = np.flatnonzero(match & (probe_lengths > 0))
        if check.size:
            lengths = probe_lengths[check]
            stored = _segment_gather(
                self._path_items, self._path_offsets[slots[check]], lengths
            )
            probed = _segment_gather(probe_items, probe_offsets[check], lengths)
            mismatched = stored != probed
            if np.any(mismatched):
                bad = np.add.reduceat(mismatched, np.cumsum(lengths) - lengths) > 0
                match[check[bad]] = False

        if self._has_duplicate_keys:
            # Slots with shared keys (forced collisions) need the chained
            # scan: re-resolve every probe whose key exists in the table but
            # whose first-position slot did not verify.
            for probe in np.flatnonzero(found & ~match).tolist():
                slot = self._slot_for(tuple(paths[probe]), int(keys_arr[probe]))
                if slot is not None:
                    slots[probe] = slot
                    match[probe] = True

        lengths = np.where(
            match, self._posting_offsets[slots + 1] - self._posting_offsets[slots], 0
        )
        offsets = np.zeros(num_probes + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        if int(offsets[-1]) == 0:
            return empty, offsets, route
        gathered = _segment_gather(self._posting_ids, self._posting_offsets[slots], lengths)
        return gathered, offsets, route

    def candidates(
        self, paths: Iterable[Path], keys: Sequence[int] | None = None
    ) -> Iterator[int]:
        """Yield every (vector id) collision for the given query filters.

        A vector id is yielded once per shared filter, matching the paper's
        work measure ``Σ_x |F(q) ∩ F(x)|``; callers that want distinct
        candidates deduplicate downstream.  ``keys``, when given, must hold
        the folded key of each path.
        """
        if keys is None:
            for path in paths:
                yield from self.lookup(path)
        else:
            for path, key in zip(paths, keys):
                yield from self.lookup_keyed(tuple(path), key)

    def __contains__(self, path: Path) -> bool:
        path = tuple(path)
        return self._slot_for(path, fold_path(path)) is not None

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #

    @property
    def num_filters(self) -> int:
        """Number of distinct filters stored."""
        self.compact()
        return self._path_keys.size

    @property
    def total_entries(self) -> int:
        """Total number of (filter, vector) postings — the space usage."""
        return self._total_entries

    def posting_sizes(self) -> list[int]:
        """Sizes of all posting lists (useful for skew diagnostics)."""
        self.compact()
        return np.diff(self._posting_offsets).tolist()

    def heaviest_filters(self, count: int = 10) -> list[tuple[Path, int]]:
        """The ``count`` filters with the largest posting lists."""
        sizes = self.posting_sizes()
        ranked = sorted(range(len(sizes)), key=lambda slot: sizes[slot], reverse=True)
        return [(self._path_at(slot), sizes[slot]) for slot in ranked[:count]]

    def __len__(self) -> int:
        return self.num_filters

    def __repr__(self) -> str:
        return (
            f"InvertedFilterIndex(num_filters={self.num_filters}, "
            f"total_entries={self.total_entries})"
        )

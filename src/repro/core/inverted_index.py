"""Inverted index from filters (paths) to the vectors that chose them.

The preprocessing step of the paper stores, for each filter ``f`` chosen by
some dataset vector, the list of vector ids that chose ``f`` ("a standard
dictionary data structure", Section 3).  Queries then look up each of their
own filters and examine the stored vectors.

The store is array-backed rather than a dict-of-lists: each distinct filter
occupies one *slot*, and the compacted state lives in five flat numpy arrays

* ``path_items`` / ``path_offsets`` — the filters themselves in CSR form,
* ``path_keys`` — the 64-bit folded key (:func:`~repro.hashing.pairwise.
  fold_path`) of each filter, and
* ``posting_ids`` / ``posting_offsets`` — the posting lists in CSR form,

which is also, verbatim, the on-disk representation used by
:mod:`repro.core.serialization` (one file holds the arrays, nothing else).
Lookups go through a ``uint64 key → slot`` dict; because a 64-bit key could
in principle collide, the stored path is compared exactly before a slot is
accepted, so lookups remain collision-free like the original dict-of-tuples.

Additions land in a small per-slot overlay and are merged into the flat
arrays by :meth:`InvertedFilterIndex.compact` (called automatically at the
end of a build and before serialisation), so dynamic inserts stay cheap
without giving up the compact layout.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.hashing.pairwise import fold_path, fold_paths_csr

Path = tuple[int, ...]

#: Array names of the compacted store, in serialisation order.  The folded
#: path keys are deliberately absent: they are high-entropy (incompressible)
#: and deterministically recomputable, so the on-disk format re-derives them
#: on load instead of storing 8 random-looking bytes per filter.
STATE_ARRAY_NAMES = (
    "path_items",
    "path_offsets",
    "posting_ids",
    "posting_offsets",
)


class InvertedFilterIndex:
    """Maps each filter to the sorted list of vector ids that chose it."""

    def __init__(self) -> None:
        # Compacted (frozen) slots: CSR arrays over paths and postings.
        self._path_items = np.empty(0, dtype=np.int64)
        self._path_offsets = np.zeros(1, dtype=np.int64)
        self._path_keys = np.empty(0, dtype=np.uint64)
        self._posting_ids = np.empty(0, dtype=np.int64)
        self._posting_offsets = np.zeros(1, dtype=np.int64)
        # Lookup structure: folded 64-bit path key -> slot (or slots, in the
        # astronomically unlikely event of a key collision).
        self._slot_by_key: dict[int, int | list[int]] = {}
        # Mutable overlay for additions since the last compact().
        self._pending_paths: list[Path] = []
        self._pending_keys: list[int] = []
        self._pending_postings: dict[int, list[int]] = {}
        self._total_entries = 0

    # ------------------------------------------------------------------ #
    # Slot resolution
    # ------------------------------------------------------------------ #

    @property
    def _num_frozen(self) -> int:
        return self._path_keys.size

    def _path_at(self, slot: int) -> Path:
        frozen = self._num_frozen
        if slot < frozen:
            start = int(self._path_offsets[slot])
            end = int(self._path_offsets[slot + 1])
            return tuple(self._path_items[start:end].tolist())
        return self._pending_paths[slot - frozen]

    def _slot_for(self, path: Path, key: int) -> int | None:
        bucket = self._slot_by_key.get(key)
        if bucket is None:
            return None
        if isinstance(bucket, int):
            return bucket if self._path_at(bucket) == path else None
        for slot in bucket:
            if self._path_at(slot) == path:
                return slot
        return None

    @staticmethod
    def _bucket_insert(slot_by_key: dict[int, int | list[int]], key: int, slot: int) -> None:
        """Insert a slot into the key dict, chaining on 64-bit key collision."""
        bucket = slot_by_key.get(key)
        if bucket is None:
            slot_by_key[key] = slot
        elif isinstance(bucket, int):
            slot_by_key[key] = [bucket, slot]
        else:
            bucket.append(slot)

    def _register(self, path: Path, key: int) -> int:
        slot = self._num_frozen + len(self._pending_paths)
        self._pending_paths.append(path)
        self._pending_keys.append(key)
        self._bucket_insert(self._slot_by_key, key, slot)
        return slot

    def _postings_at(self, slot: int) -> list[int]:
        if slot < self._num_frozen:
            start = int(self._posting_offsets[slot])
            end = int(self._posting_offsets[slot + 1])
            stored = self._posting_ids[start:end].tolist()
        else:
            stored = []
        pending = self._pending_postings.get(slot)
        if pending:
            return stored + pending
        return stored

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    def add(
        self,
        vector_id: int,
        paths: Iterable[Path],
        keys: Sequence[int] | None = None,
    ) -> int:
        """Register all filters of one vector.  Returns the number added.

        ``keys``, when given, must hold the folded key of each path (as
        produced by the path generators); this skips the per-path re-fold on
        the build hot path.
        """
        if vector_id < 0:
            raise ValueError(f"vector_id must be non-negative, got {vector_id}")
        if keys is None:
            paths = [tuple(path) for path in paths]
            keys = [fold_path(path) for path in paths]
        else:
            paths = [tuple(path) for path in paths]
            if len(paths) != len(keys):
                raise ValueError(
                    f"got {len(keys)} keys for {len(paths)} paths; need one per path"
                )
        # Build hot loop: local bindings and an inlined slot resolution keep
        # the per-posting cost close to the plain dict-of-lists it replaced.
        slot_by_key = self._slot_by_key
        pending_postings = self._pending_postings
        pending_paths = self._pending_paths
        pending_keys = self._pending_keys
        frozen = self._path_keys.size
        count = 0
        for path, key in zip(paths, keys):
            bucket = slot_by_key.get(key)
            if bucket is None:
                slot = frozen + len(pending_paths)
                pending_paths.append(path)
                pending_keys.append(key)
                slot_by_key[key] = slot
            elif type(bucket) is int:
                stored = (
                    pending_paths[bucket - frozen]
                    if bucket >= frozen
                    else self._path_at(bucket)
                )
                if stored == path:
                    slot = bucket
                else:  # 64-bit key collision: chain the slots
                    slot = frozen + len(pending_paths)
                    pending_paths.append(path)
                    pending_keys.append(key)
                    slot_by_key[key] = [bucket, slot]
            else:
                slot = -1
                for candidate in bucket:
                    if self._path_at(candidate) == path:
                        slot = candidate
                        break
                if slot < 0:
                    slot = frozen + len(pending_paths)
                    pending_paths.append(path)
                    pending_keys.append(key)
                    bucket.append(slot)
            postings = pending_postings.get(slot)
            if postings is None:
                pending_postings[slot] = [vector_id]
            else:
                postings.append(vector_id)
            count += 1
        self._total_entries += count
        return count

    def add_many(self, filters_per_vector: Sequence[Iterable[Path]]) -> int:
        """Register filters of many vectors, ids being their positions."""
        total = 0
        for vector_id, paths in enumerate(filters_per_vector):
            total += self.add(vector_id, paths)
        return total

    def add_postings(self, path: Path, vector_ids: Sequence[int]) -> None:
        """Restore a full posting list for one filter (used when loading a
        serialised index); appends to any existing postings for that filter."""
        vector_ids = [int(v) for v in vector_ids]
        if any(vector_id < 0 for vector_id in vector_ids):
            raise ValueError("vector ids must be non-negative")
        path = tuple(path)
        key = fold_path(path)
        slot = self._slot_for(path, key)
        if slot is None:
            slot = self._register(path, key)
        self._pending_postings.setdefault(slot, []).extend(vector_ids)
        self._total_entries += len(vector_ids)

    def compact(self) -> None:
        """Merge the mutable overlay into the flat CSR arrays.

        Per-slot posting order is preserved (frozen entries first, then the
        overlay's appends, in insertion order), so queries behave identically
        before and after compaction.  Idempotent and cheap when nothing is
        pending.
        """
        if not self._pending_paths and not self._pending_postings:
            return
        frozen = self._num_frozen
        total_slots = frozen + len(self._pending_paths)

        if frozen == 0:
            # Build fast path: every slot is pending, so one flat pass over
            # the per-slot lists beats per-slot numpy slice assignments.
            pending_postings = self._pending_postings
            sizes = np.zeros(total_slots, dtype=np.int64)
            flat: list[int] = []
            extend = flat.extend
            for slot in range(total_slots):
                ids = pending_postings.get(slot)
                if ids:
                    sizes[slot] = len(ids)
                    extend(ids)
            posting_offsets = np.zeros(total_slots + 1, dtype=np.int64)
            np.cumsum(sizes, out=posting_offsets[1:])
            posting_ids = np.asarray(flat, dtype=np.int64)
        else:
            sizes = np.zeros(total_slots, dtype=np.int64)
            sizes[:frozen] = np.diff(self._posting_offsets)
            for slot, pending in self._pending_postings.items():
                sizes[slot] += len(pending)
            posting_offsets = np.zeros(total_slots + 1, dtype=np.int64)
            np.cumsum(sizes, out=posting_offsets[1:])
            posting_ids = np.empty(int(posting_offsets[-1]), dtype=np.int64)

            # Scatter the frozen entries to their (possibly shifted) ranges.
            frozen_total = int(self._posting_ids.size)
            if frozen_total:
                frozen_sizes = np.diff(self._posting_offsets)
                shift = np.repeat(
                    posting_offsets[:frozen] - self._posting_offsets[:-1], frozen_sizes
                )
                posting_ids[np.arange(frozen_total, dtype=np.int64) + shift] = (
                    self._posting_ids
                )
            for slot, pending in self._pending_postings.items():
                end = int(posting_offsets[slot + 1])
                posting_ids[end - len(pending) : end] = pending

        if self._pending_paths:
            new_items = [item for path in self._pending_paths for item in path]
            new_lengths = np.asarray(
                [len(path) for path in self._pending_paths], dtype=np.int64
            )
            self._path_items = np.concatenate(
                [self._path_items, np.asarray(new_items, dtype=np.int64)]
            )
            self._path_offsets = np.concatenate(
                [self._path_offsets, self._path_offsets[-1] + np.cumsum(new_lengths)]
            )
            self._path_keys = np.concatenate(
                [self._path_keys, np.asarray(self._pending_keys, dtype=np.uint64)]
            )

        self._posting_ids = posting_ids
        self._posting_offsets = posting_offsets
        self._pending_paths = []
        self._pending_keys = []
        self._pending_postings = {}

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #

    def to_state(self) -> dict[str, np.ndarray]:
        """The compacted store as flat arrays (the on-disk representation).

        Compacts first; the returned arrays are the live internal ones, so
        treat them as read-only.
        """
        self.compact()
        return {
            "path_items": self._path_items,
            "path_offsets": self._path_offsets,
            "posting_ids": self._posting_ids,
            "posting_offsets": self._posting_offsets,
        }

    @classmethod
    def from_state(cls, state: Mapping[str, np.ndarray]) -> "InvertedFilterIndex":
        """Rebuild an index from :meth:`to_state` arrays, validating them.

        The folded path keys are re-derived from the stored paths with the
        vectorised :func:`~repro.hashing.pairwise.fold_paths_csr` (one array
        pass per recursion level).  Raises :class:`ValueError` on missing
        arrays, malformed offsets, mismatched array lengths or negative
        vector ids.
        """
        missing = [name for name in STATE_ARRAY_NAMES if name not in state]
        if missing:
            raise ValueError(f"postings state is missing arrays: {missing}")
        path_items = np.ascontiguousarray(state["path_items"], dtype=np.int64)
        path_offsets = np.ascontiguousarray(state["path_offsets"], dtype=np.int64)
        posting_ids = np.ascontiguousarray(state["posting_ids"], dtype=np.int64)
        posting_offsets = np.ascontiguousarray(state["posting_offsets"], dtype=np.int64)

        for name, offsets, flat in (
            ("path", path_offsets, path_items),
            ("posting", posting_offsets, posting_ids),
        ):
            if offsets.ndim != 1 or offsets.size == 0 or int(offsets[0]) != 0:
                raise ValueError(f"malformed {name}_offsets in postings state")
            if np.any(np.diff(offsets) < 0) or int(offsets[-1]) != flat.size:
                raise ValueError(f"{name}_offsets do not describe the {name} array")
        num_slots = path_offsets.size - 1
        if posting_offsets.size - 1 != num_slots:
            raise ValueError("postings state arrays disagree on the number of filters")
        if posting_ids.size and int(posting_ids.min()) < 0:
            raise ValueError("vector ids must be non-negative")
        if path_items.size and int(path_items.min()) < 0:
            raise ValueError("path items must be non-negative")
        path_keys = fold_paths_csr(path_items, path_offsets)

        index = cls()
        index._path_items = path_items
        index._path_offsets = path_offsets
        index._path_keys = path_keys
        index._posting_ids = posting_ids
        index._posting_offsets = posting_offsets
        slot_by_key: dict[int, int | list[int]] = {}
        for slot, key in enumerate(path_keys.tolist()):
            cls._bucket_insert(slot_by_key, key, slot)
        index._slot_by_key = slot_by_key
        index._total_entries = int(posting_ids.size)
        return index

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #

    def lookup(self, path: Path) -> list[int]:
        """Vector ids that chose ``path`` (empty list if none)."""
        path = tuple(path)
        return self.lookup_keyed(path, fold_path(path))

    def lookup_keyed(self, path: Path, key: int) -> list[int]:
        """:meth:`lookup` with the path's folded key already in hand.

        The generators return the keys alongside the paths, so query probes
        use this to skip re-folding.
        """
        slot = self._slot_for(path, key)
        if slot is None:
            return []
        return self._postings_at(slot)

    def candidates(
        self, paths: Iterable[Path], keys: Sequence[int] | None = None
    ) -> Iterator[int]:
        """Yield every (vector id) collision for the given query filters.

        A vector id is yielded once per shared filter, matching the paper's
        work measure ``Σ_x |F(q) ∩ F(x)|``; callers that want distinct
        candidates deduplicate downstream.  ``keys``, when given, must hold
        the folded key of each path.
        """
        if keys is None:
            for path in paths:
                yield from self.lookup(path)
        else:
            for path, key in zip(paths, keys):
                yield from self.lookup_keyed(tuple(path), key)

    def __contains__(self, path: Path) -> bool:
        path = tuple(path)
        return self._slot_for(path, fold_path(path)) is not None

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #

    @property
    def num_filters(self) -> int:
        """Number of distinct filters stored."""
        return self._num_frozen + len(self._pending_paths)

    @property
    def total_entries(self) -> int:
        """Total number of (filter, vector) postings — the space usage."""
        return self._total_entries

    def posting_sizes(self) -> list[int]:
        """Sizes of all posting lists (useful for skew diagnostics)."""
        sizes = np.diff(self._posting_offsets).tolist()
        sizes.extend(0 for _ in self._pending_paths)
        for slot, pending in self._pending_postings.items():
            sizes[slot] += len(pending)
        return sizes

    def heaviest_filters(self, count: int = 10) -> list[tuple[Path, int]]:
        """The ``count`` filters with the largest posting lists."""
        sizes = self.posting_sizes()
        ranked = sorted(range(len(sizes)), key=lambda slot: sizes[slot], reverse=True)
        return [(self._path_at(slot), sizes[slot]) for slot in ranked[:count]]

    def __len__(self) -> int:
        return self.num_filters

    def __repr__(self) -> str:
        return (
            f"InvertedFilterIndex(num_filters={self.num_filters}, "
            f"total_entries={self.total_entries})"
        )

"""Shared kernel contract: counter slots and array conventions.

Every kernel backend (numpy fallback, numba) implements the same
array-in/array-out signatures and accumulates work counts into a caller-owned
``int64[NUM_COUNTERS]`` vector.  The slot layout below is the contract: a
counter total reported by one backend must mean exactly the same thing under
the other, so the equivalence suites can assert bit-identical counters across
backends.

Counter slots
-------------
``PATHS_EXTENDED``
    Chosen path extensions materialised by ``extend_level`` (finished paths
    and frontier children both count; candidates dropped by the hash test or
    by ``max_paths`` truncation do not).
``KEYS_FOLDED``
    Candidate extension keys submitted to ``extend_level`` — one per
    (frontier entry, available item) pair, whether or not the extension was
    chosen.
``CHAIN_PROBES``
    Path-content comparisons performed by ``chain_resolve`` while walking a
    forced-collision chain (one per distinct representative tried).
``MERGE_ROWS``
    Candidate rows entering a merge kernel (``merge_labeled``,
    ``ordered_unique``, ``sorted_unique``).
``DEDUPE_HITS``
    Rows removed by a merge kernel as duplicates (rows in minus rows out).
"""

from __future__ import annotations

import numpy as np

#: Human-readable counter names, index-aligned with the slot constants.
COUNTER_NAMES = (
    "paths_extended",
    "keys_folded",
    "chain_probes",
    "merge_rows",
    "dedupe_hits",
)

PATHS_EXTENDED, KEYS_FOLDED, CHAIN_PROBES, MERGE_ROWS, DEDUPE_HITS = range(5)

NUM_COUNTERS = len(COUNTER_NAMES)


def new_counters() -> np.ndarray:
    """A fresh all-zero counter vector in the shared slot layout."""
    return np.zeros(NUM_COUNTERS, dtype=np.int64)

"""Compiled hot-path kernels behind a numpy-fallback dispatch layer.

The three interpreted hot loops — per-level path extension, the
forced-collision chain fallback in ``InvertedFilterIndex.compact``, and the
engine's CSR gather → sort/unique segment merges — run through the fixed
array-in/array-out kernel signatures defined here.  Two backends implement
them:

* ``python`` — pure numpy (:mod:`repro.core.kernels._numpy_impl`), always
  available, and the behavioural reference;
* ``numba`` — ``@njit``-compiled loops (:mod:`repro.core.kernels.
  _numba_impl`), used automatically when numba is importable.

Selection is controlled by the ``REPRO_KERNELS`` environment variable:
``auto`` (default — numba when available, else numpy), ``numba`` (require
numba; raise if absent), or ``python`` (force the numpy fallback).  The two
backends are bit-identical: same outputs wherever the kernel contract
defines them, same counter totals (see :mod:`repro.core.kernels._contract`),
pinned by the cross-backend equivalence suites.

Every kernel accumulates per-stage work counts into a caller-owned
``int64[NUM_COUNTERS]`` vector (:func:`new_counters`), surfaced upstream as
``KernelStats`` on query/build statistics.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.kernels import _numpy_impl
from repro.core.kernels._contract import (
    CHAIN_PROBES,
    COUNTER_NAMES,
    DEDUPE_HITS,
    KEYS_FOLDED,
    MERGE_ROWS,
    NUM_COUNTERS,
    PATHS_EXTENDED,
    new_counters,
)

__all__ = [
    "CHAIN_PROBES",
    "COUNTER_NAMES",
    "DEDUPE_HITS",
    "KEYS_FOLDED",
    "KernelImplementation",
    "MERGE_ROWS",
    "NUM_COUNTERS",
    "PATHS_EXTENDED",
    "active_backend",
    "available_backends",
    "get_impl",
    "new_counters",
]

#: Environment variable selecting the kernel backend (read on every call).
KERNELS_ENV_VAR = "REPRO_KERNELS"

_ExtendLevel = Callable[
    ...,
    tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray],
]
_ChainResolve = Callable[..., tuple[np.ndarray, np.ndarray]]
_MergeLabeled = Callable[..., tuple[np.ndarray, np.ndarray]]
_OrderedUnique = Callable[..., tuple[np.ndarray, np.ndarray]]
_SortedUnique = Callable[..., np.ndarray]


@dataclass(frozen=True)
class KernelImplementation:
    """One backend's bundle of kernel entry points.

    All fields share the signatures documented on the numpy reference
    implementations in :mod:`repro.core.kernels._numpy_impl`.
    """

    name: str
    extend_level: _ExtendLevel
    chain_resolve: _ChainResolve
    merge_labeled: _MergeLabeled
    ordered_unique: _OrderedUnique
    sorted_unique: _SortedUnique


_PYTHON_IMPL = KernelImplementation(
    name="python",
    extend_level=_numpy_impl.extend_level,
    chain_resolve=_numpy_impl.chain_resolve,
    merge_labeled=_numpy_impl.merge_labeled,
    ordered_unique=_numpy_impl.ordered_unique,
    sorted_unique=_numpy_impl.sorted_unique,
)

_numba_impl_cached: KernelImplementation | None = None
_numba_probe_done = False
_numba_error: str | None = None


def _load_numba() -> KernelImplementation | None:
    """Import the numba backend once; remember the failure reason if any."""
    global _numba_impl_cached, _numba_probe_done, _numba_error
    if _numba_probe_done:
        return _numba_impl_cached
    try:
        from repro.core.kernels import _numba_impl
    except ImportError as exc:
        _numba_error = str(exc)
    else:
        _numba_impl_cached = KernelImplementation(
            name="numba",
            extend_level=_numba_impl.extend_level,
            chain_resolve=_numba_impl.chain_resolve,
            merge_labeled=_numba_impl.merge_labeled,
            ordered_unique=_numba_impl.ordered_unique,
            sorted_unique=_numba_impl.sorted_unique,
        )
    _numba_probe_done = True
    return _numba_impl_cached


def available_backends() -> tuple[str, ...]:
    """Backend names usable in this environment (``python`` always is)."""
    if _load_numba() is not None:
        return ("python", "numba")
    return ("python",)


def get_impl() -> KernelImplementation:
    """Resolve the active backend from ``REPRO_KERNELS``.

    ``auto`` (or unset) prefers numba and silently falls back to numpy;
    ``numba`` demands the compiled backend and raises ``RuntimeError`` with
    the import failure when it is unavailable, so a deployment that *expects*
    compiled kernels cannot silently run interpreted.
    """
    requested = os.environ.get(KERNELS_ENV_VAR, "auto").strip().lower() or "auto"
    if requested == "python":
        return _PYTHON_IMPL
    if requested == "numba":
        impl = _load_numba()
        if impl is None:
            raise RuntimeError(
                "REPRO_KERNELS=numba but the numba backend is unavailable "
                f"({_numba_error}); install numba or unset REPRO_KERNELS"
            )
        return impl
    if requested != "auto":
        raise ValueError(
            f"REPRO_KERNELS must be 'auto', 'numba' or 'python', got {requested!r}"
        )
    impl = _load_numba()
    return impl if impl is not None else _PYTHON_IMPL


def active_backend() -> str:
    """Name of the backend :func:`get_impl` currently resolves to."""
    return get_impl().name

"""Numba-jitted kernel backend (optional dependency).

Importing this module raises ``ImportError`` when numba is not installed;
the dispatch layer catches that and falls back to the numpy backend.  Every
kernel mirrors its :mod:`repro.core.kernels._numpy_impl` counterpart
scalar-for-scalar — in particular the SplitMix64 fold and the multiply-add
hash over the Mersenne prime ``2^61 - 1`` reproduce the exact 32-bit-split
uint64 arithmetic of :func:`repro.hashing.pairwise.hash_keys`, so hash
values (and therefore every downstream decision) are bit-identical.

Numba notes: all 64-bit hash constants are pinned as ``np.uint64`` module
globals — mixing a raw Python int literal into uint64 arithmetic would
promote to float64 and silently change the hash.
"""

from __future__ import annotations

import numpy as np
from numba import njit  # noqa: F401 - import failure selects the numpy backend

from repro.core.kernels._contract import (
    CHAIN_PROBES,
    DEDUPE_HITS,
    KEYS_FOLDED,
    MERGE_ROWS,
    PATHS_EXTENDED,
)
from repro.hashing.pairwise import MERSENNE_PRIME

_U64_PRIME = np.uint64(MERSENNE_PRIME)
_PRIME_FLOAT = float(MERSENNE_PRIME)
_U64_1 = np.uint64(1)
_U64_8 = np.uint64(8)
_U64_27 = np.uint64(27)
_U64_29 = np.uint64(29)
_U64_30 = np.uint64(30)
_U64_31 = np.uint64(31)
_U64_32 = np.uint64(32)
_U64_61 = np.uint64(61)
_U64_LOW29 = np.uint64((1 << 29) - 1)
_U64_LOW32 = np.uint64((1 << 32) - 1)
_U64_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_U64_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_U64_MIX2 = np.uint64(0x94D049BB133111EB)


@njit(cache=True)
def _mod_mersenne(value):
    folded = (value & _U64_PRIME) + (value >> _U64_61)
    if folded >= _U64_PRIME:
        folded -= _U64_PRIME
    return folded


@njit(cache=True)
def _splitmix64(value):
    value = value + _U64_GOLDEN
    value = (value ^ (value >> _U64_30)) * _U64_MIX1
    value = (value ^ (value >> _U64_27)) * _U64_MIX2
    return value ^ (value >> _U64_31)


@njit(cache=True)
def _extend_key(prefix_key, item):
    return _splitmix64(prefix_key ^ (np.uint64(item) + _U64_1))


@njit(cache=True)
def _hash_key(key, a_hi, a_lo, b):
    reduced = _mod_mersenne(key)
    x_hi = reduced >> _U64_32
    x_lo = reduced & _U64_LOW32
    high = _mod_mersenne(_U64_8 * (a_hi * x_hi))
    middle = _mod_mersenne(a_hi * x_lo + a_lo * x_hi)
    middle = _mod_mersenne((middle >> _U64_29) + ((middle & _U64_LOW29) << _U64_32))
    low = _mod_mersenne(a_lo * x_lo)
    total = _mod_mersenne(high + middle + low + b)
    return np.float64(total) / _PRIME_FLOAT


@njit(cache=True)
def _extend_level_jit(
    cand_prefix_keys,
    cand_items,
    cand_probs,
    cand_parent_logs,
    cand_item_logs,
    entry_offsets,
    entry_vector,
    num_vectors,
    vec_finished,
    log_stop,
    use_stop,
    max_paths,
    a,
    b,
    counters,
):
    num_candidates = cand_items.size
    num_entries = entry_vector.size
    new_keys = np.zeros(num_candidates, dtype=np.uint64)
    status = np.zeros(num_candidates, dtype=np.int8)
    new_logs = np.zeros(num_candidates, dtype=np.float64)
    expansions = np.zeros(num_vectors, dtype=np.int64)
    truncated = np.zeros(num_vectors, dtype=np.bool_)

    a_u = np.uint64(a)
    a_hi = a_u >> _U64_32
    a_lo = a_u & _U64_LOW32
    b_u = np.uint64(b)

    extended = 0
    entry = 0
    while entry < num_entries:
        vector = entry_vector[entry]
        run = vec_finished[vector]
        vec_truncated = False
        while entry < num_entries and entry_vector[entry] == vector:
            if not vec_truncated:
                expansions[vector] += 1
                for index in range(entry_offsets[entry], entry_offsets[entry + 1]):
                    key = _extend_key(cand_prefix_keys[index], cand_items[index])
                    new_keys[index] = key
                    log_product = cand_parent_logs[index] + cand_item_logs[index]
                    new_logs[index] = log_product
                    if _hash_key(key, a_hi, a_lo, b_u) < cand_probs[index]:
                        if use_stop and log_product <= log_stop:
                            status[index] = 2
                        else:
                            status[index] = 1
                        extended += 1
                        run += 1
                        if max_paths >= 0 and run >= max_paths:
                            truncated[vector] = True
                            vec_truncated = True
                            break
            entry += 1

    counters[PATHS_EXTENDED] += extended
    counters[KEYS_FOLDED] += num_candidates
    return new_keys, status, new_logs, expansions, truncated


@njit(cache=True)
def _chain_resolve_jit(group_offsets, entry_items, entry_offsets, counters):
    num_groups = group_offsets.size - 1
    num_entries = entry_offsets.size - 1
    sub_slots = np.zeros(num_entries, dtype=np.int64)
    group_counts = np.zeros(num_groups, dtype=np.int64)
    probes = 0
    for group in range(num_groups):
        start = group_offsets[group]
        end = group_offsets[group + 1]
        rep_starts = np.empty(end - start, dtype=np.int64)
        rep_ends = np.empty(end - start, dtype=np.int64)
        num_reps = 0
        for entry in range(start, end):
            entry_start = entry_offsets[entry]
            entry_end = entry_offsets[entry + 1]
            slot = -1
            for rep in range(num_reps):
                probes += 1
                rep_start = rep_starts[rep]
                rep_end = rep_ends[rep]
                if rep_end - rep_start == entry_end - entry_start:
                    match = True
                    for offset in range(entry_end - entry_start):
                        if entry_items[rep_start + offset] != entry_items[entry_start + offset]:
                            match = False
                            break
                    if match:
                        slot = rep
                        break
            if slot < 0:
                slot = num_reps
                rep_starts[num_reps] = entry_start
                rep_ends[num_reps] = entry_end
                num_reps += 1
            sub_slots[entry] = slot
        group_counts[group] = num_reps
    counters[CHAIN_PROBES] += probes
    return sub_slots, group_counts


@njit(cache=True)
def _merge_labeled_jit(labels, ids, counters):
    size = ids.size
    counters[MERGE_ROWS] += size
    if size == 0:
        return labels[:0], ids[:0]
    # np.lexsort equivalent: stable sort by the secondary key, then a stable
    # sort by the primary key.
    by_ids = np.argsort(ids, kind="mergesort")
    order = by_ids[np.argsort(labels[by_ids], kind="mergesort")]
    out_labels = np.empty(size, dtype=labels.dtype)
    out_ids = np.empty(size, dtype=np.int64)
    count = 0
    for position in range(size):
        index = order[position]
        label = labels[index]
        value = ids[index]
        if count == 0 or out_labels[count - 1] != label or out_ids[count - 1] != value:
            out_labels[count] = label
            out_ids[count] = value
            count += 1
    counters[DEDUPE_HITS] += size - count
    return out_labels[:count], out_ids[:count]


@njit(cache=True)
def _ordered_unique_jit(ids, counters):
    size = ids.size
    counters[MERGE_ROWS] += size
    if size == 0:
        return ids[:0], np.zeros(0, dtype=np.int64)
    order = np.argsort(ids, kind="mergesort")
    first = np.empty(size, dtype=np.int64)
    count = 0
    for position in range(size):
        index = order[position]
        if position == 0 or ids[index] != ids[order[position - 1]]:
            first[count] = index
            count += 1
    first_sorted = np.sort(first[:count])
    out = np.empty(count, dtype=ids.dtype)
    for position in range(count):
        out[position] = ids[first_sorted[position]]
    counters[DEDUPE_HITS] += size - count
    return out, first_sorted


@njit(cache=True)
def _sorted_unique_jit(ids, counters):
    size = ids.size
    counters[MERGE_ROWS] += size
    if size == 0:
        return ids[:0]
    ordered = np.sort(ids)
    out = np.empty(size, dtype=ids.dtype)
    count = 0
    for position in range(size):
        value = ordered[position]
        if count == 0 or out[count - 1] != value:
            out[count] = value
            count += 1
    counters[DEDUPE_HITS] += size - count
    return out[:count]


extend_level = _extend_level_jit
chain_resolve = _chain_resolve_jit
merge_labeled = _merge_labeled_jit
ordered_unique = _ordered_unique_jit
sorted_unique = _sorted_unique_jit

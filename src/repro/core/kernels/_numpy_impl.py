"""Pure-numpy kernel backend — the always-available reference.

These implementations define the behavioural contract that the numba backend
must reproduce bit-for-bit: same outputs at every index where the output is
defined, same counter totals.  They are built from the exact vectorised
primitives the interpreted hot paths used before the kernel split
(:func:`repro.hashing.pairwise.extend_keys` / :func:`~repro.hashing.pairwise.
hash_keys`, ``np.lexsort`` + keep-mask dedupe, ``np.unique``), so results are
also bit-identical to the pre-kernel code.
"""

from __future__ import annotations

import numpy as np

from repro.core.kernels._contract import (
    CHAIN_PROBES,
    DEDUPE_HITS,
    KEYS_FOLDED,
    MERGE_ROWS,
    PATHS_EXTENDED,
)
from repro.hashing.pairwise import extend_keys, hash_keys


def extend_level(
    cand_prefix_keys: np.ndarray,
    cand_items: np.ndarray,
    cand_probs: np.ndarray,
    cand_parent_logs: np.ndarray,
    cand_item_logs: np.ndarray,
    entry_offsets: np.ndarray,
    entry_vector: np.ndarray,
    num_vectors: int,
    vec_finished: np.ndarray,
    log_stop: float,
    use_stop: bool,
    max_paths: int,
    a: int,
    b: int,
    counters: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Extend one recursion level of a batched path frontier.

    Candidates are the flattened (frontier entry, available item) pairs of
    the whole level, grouped per entry by ``entry_offsets`` (``M + 1``
    monotone offsets for ``M`` entries); ``entry_vector`` maps each entry to
    its vector and must be non-decreasing (entries grouped by vector).  Every
    entry has at least one candidate.

    For each candidate the kernel folds the extended path key, hashes it with
    the level's multiply-add coefficients ``(a, b)`` and compares against the
    sampling probability.  Chosen extensions get ``status`` 2 (finished: the
    stopping rule ``log_product <= log_stop`` fired, only when ``use_stop``)
    or 1 (frontier child); dropped candidates get 0.  ``max_paths >= 0``
    reproduces the serial truncation rule: within a vector, once
    ``vec_finished[v]`` plus the chosen-so-far count reaches ``max_paths``,
    the current candidate is the cutoff — it keeps its status, every later
    candidate of the vector is zeroed, and ``truncated[v]`` is set.

    Returns ``(new_keys, status, new_logs, expansions, truncated)``.
    ``expansions[v]`` counts the entries of ``v`` processed (up to and
    including the cutoff's entry when truncated).  At indices where
    ``status == 0`` the contents of ``new_keys``/``new_logs`` are
    unspecified — backends may skip computing them.
    """
    num_candidates = int(cand_items.size)
    num_entries = int(entry_vector.size)
    lengths = np.diff(entry_offsets)
    cand_entry = np.repeat(np.arange(num_entries, dtype=np.int64), lengths)
    cand_vec = entry_vector[cand_entry]

    new_keys = extend_keys(cand_prefix_keys, cand_items)
    hash_values = hash_keys(new_keys, a, b)
    chosen = hash_values < cand_probs
    new_logs = cand_parent_logs + cand_item_logs

    status = np.zeros(num_candidates, dtype=np.int8)
    status[chosen] = 1
    if use_stop:
        status[chosen & (new_logs <= log_stop)] = 2

    expansions = np.bincount(entry_vector, minlength=num_vectors).astype(np.int64)
    truncated = np.zeros(num_vectors, dtype=np.bool_)

    if max_paths >= 0 and num_candidates:
        cumulative = np.cumsum(chosen)
        vec_start = np.searchsorted(
            cand_vec, np.arange(num_vectors, dtype=np.int64), side="left"
        )
        base = np.where(vec_start > 0, cumulative[vec_start - 1], 0)
        run = cumulative - base[cand_vec] + vec_finished[cand_vec]
        violating = chosen & (run >= max_paths)
        if violating.any():
            violating_idx = np.flatnonzero(violating)
            violating_vecs = cand_vec[violating_idx]
            first_mask = np.ones(violating_idx.size, dtype=np.bool_)
            first_mask[1:] = violating_vecs[1:] != violating_vecs[:-1]
            for cutoff in violating_idx[first_mask]:
                vector = int(cand_vec[cutoff])
                segment_end = int(np.searchsorted(cand_vec, vector, side="right"))
                status[cutoff + 1 : segment_end] = 0
                first_entry = int(np.searchsorted(entry_vector, vector, side="left"))
                expansions[vector] = int(cand_entry[cutoff]) - first_entry + 1
                truncated[vector] = True

    counters[PATHS_EXTENDED] += int(np.count_nonzero(status))
    counters[KEYS_FOLDED] += num_candidates
    return new_keys, status, new_logs, expansions, truncated


def chain_resolve(
    group_offsets: np.ndarray,
    entry_items: np.ndarray,
    entry_offsets: np.ndarray,
    counters: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Resolve forced-collision chains: assign sub-slots within key groups.

    The entries of each group share a folded key but may carry different path
    contents; they arrive in stream (first-appearance) order.  Group ``g``
    spans entries ``group_offsets[g]:group_offsets[g + 1]``; entry ``e``'s
    path items are ``entry_items[entry_offsets[e]:entry_offsets[e + 1]]``.

    For each entry the kernel walks the group's distinct representatives in
    first-appearance order, comparing path contents (one ``CHAIN_PROBES``
    count per representative tried), and assigns the matching sub-slot — or
    opens a new one.  Returns ``(sub_slots, group_counts)``: the per-entry
    sub-slot index and the number of distinct paths per group.
    """
    num_groups = int(group_offsets.size) - 1
    num_entries = int(entry_offsets.size) - 1
    sub_slots = np.zeros(num_entries, dtype=np.int64)
    group_counts = np.zeros(num_groups, dtype=np.int64)
    probes = 0
    for group in range(num_groups):
        start = int(group_offsets[group])
        end = int(group_offsets[group + 1])
        representatives: list[tuple[int, int]] = []
        for entry in range(start, end):
            entry_start = int(entry_offsets[entry])
            entry_end = int(entry_offsets[entry + 1])
            slot = -1
            for index, (rep_start, rep_end) in enumerate(representatives):
                probes += 1
                if rep_end - rep_start == entry_end - entry_start and np.array_equal(
                    entry_items[rep_start:rep_end], entry_items[entry_start:entry_end]
                ):
                    slot = index
                    break
            if slot < 0:
                slot = len(representatives)
                representatives.append((entry_start, entry_end))
            sub_slots[entry] = slot
        group_counts[group] = len(representatives)
    counters[CHAIN_PROBES] += probes
    return sub_slots, group_counts


def merge_labeled(
    labels: np.ndarray, ids: np.ndarray, counters: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Sort ``(label, id)`` pairs and drop duplicates.

    Returns ``(labels_out, ids_out)`` sorted by label then id, with exact
    duplicate pairs removed — the engine's batched candidate-merge step.
    """
    counters[MERGE_ROWS] += int(ids.size)
    if ids.size == 0:
        return labels[:0], ids[:0]
    order = np.lexsort((ids, labels))
    sorted_labels = labels[order]
    sorted_ids = ids[order]
    keep = np.ones(sorted_ids.size, dtype=np.bool_)
    keep[1:] = (sorted_ids[1:] != sorted_ids[:-1]) | (
        sorted_labels[1:] != sorted_labels[:-1]
    )
    counters[DEDUPE_HITS] += int(sorted_ids.size - np.count_nonzero(keep))
    return sorted_labels[keep], sorted_ids[keep]


def ordered_unique(
    ids: np.ndarray, counters: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Deduplicate ``ids`` preserving first-appearance order.

    Returns ``(ordered, first_positions)``: the distinct values in the order
    they first appear, and the index of each value's first appearance.
    """
    counters[MERGE_ROWS] += int(ids.size)
    if ids.size == 0:
        return ids[:0], np.zeros(0, dtype=np.int64)
    _, first = np.unique(ids, return_index=True)
    first.sort()
    counters[DEDUPE_HITS] += int(ids.size - first.size)
    return ids[first], first.astype(np.int64, copy=False)


def sorted_unique(ids: np.ndarray, counters: np.ndarray) -> np.ndarray:
    """Deduplicate ``ids`` into ascending order (``np.unique``)."""
    counters[MERGE_ROWS] += int(ids.size)
    result = np.unique(ids)
    counters[DEDUPE_HITS] += int(ids.size - result.size)
    return result

"""Memory-mapped, sharded views of a saved postings store (format v3).

Format v3 splits every repetition's postings store into ``S`` shards by
folded-key range and lays each shard out as page-aligned raw arrays, so a
saved index can be *opened* instead of *loaded*: the classes here wrap
``np.memmap`` views of those arrays and serve the exact same probe contract
as the in-memory :class:`~repro.core.inverted_index.InvertedFilterIndex`,
paging in only the slots a query actually touches.

Two pieces cooperate:

* :class:`ShardedInvertedFilterIndex` — one per repetition.  Probes are
  routed to their shard with one ``searchsorted`` over the manifest's
  key-range fences, and each touched shard runs the standard
  searchsorted/CSR-gather resolution against its mapped arrays (the shard
  slices are key-sorted by construction, so the probe table is the arrays
  themselves — nothing is rebuilt, nothing is copied at open time).
  Optional per-shard fan-out overlaps the gathers of independent shards on
  a thread pool.
* :class:`LazyVectorStore` — the stored vectors as a read-only sequence
  over the mapped CSR arrays, materialising a ``frozenset`` only when a
  vector is actually asked for (verification normally runs against the
  mapped arrays directly and never asks).

A memory-mapped index is **read-only**: tombstone removals overlay at the
engine level exactly as in RAM mode (they never touch the store), while
mutating the postings (:meth:`ShardedInvertedFilterIndex.add`, engine
inserts) raises a clear error directing the caller at ``mode="ram"``.
"""

from __future__ import annotations

import threading
from collections.abc import Sequence as SequenceABC
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.core.inverted_index import InvertedFilterIndex, _segment_gather
from repro.core.paths import paths_to_csr
from repro.hashing.pairwise import fold_path

Path = tuple[int, ...]

_MMAP_READ_ONLY_ERROR = (
    "a memory-mapped index is read-only: postings cannot be mutated in "
    "mode='mmap'; reload the index with load_index(path, mode='ram') to "
    "insert (removals are fine in either mode — tombstones overlay at the "
    "engine level and never touch the mapped store)"
)


class MmapReadOnlyError(TypeError):
    """Raised when a mutation is attempted on a memory-mapped index."""


def shard_key_ranges(num_shards: int) -> np.ndarray:
    """The inner fences splitting the uint64 key space into equal ranges.

    Returns ``num_shards - 1`` boundaries; shard ``s`` owns keys in
    ``[fences[s - 1], fences[s])`` with the implicit outer bounds ``0`` and
    ``2**64``.  Folded path keys are (salted) hash values, so equal ranges
    give balanced shards without looking at the data — and, crucially, the
    same fences are valid for every repetition even though their key sets
    differ.
    """
    if num_shards <= 0:
        raise ValueError(f"num_shards must be positive, got {num_shards}")
    return np.asarray(
        [(step * (1 << 64)) // num_shards for step in range(1, num_shards)],
        dtype=np.uint64,
    )


def route_keys(fences: np.ndarray, keys: np.ndarray) -> np.ndarray:
    """Shard index of each folded key, given the inner fences."""
    return np.searchsorted(fences, np.ascontiguousarray(keys, dtype=np.uint64), side="right")


def probe_sorted_arrays(
    keys: np.ndarray,
    probe_items: np.ndarray,
    probe_starts: np.ndarray,
    probe_lengths: np.ndarray,
    store_keys: np.ndarray,
    path_items: np.ndarray,
    path_offsets: np.ndarray,
    posting_offsets: np.ndarray,
    has_duplicate_keys: bool,
) -> tuple[np.ndarray, np.ndarray]:
    """Resolve probes against a *key-sorted* store; ``(slots, lengths)``.

    The store arrays must hold slots in ascending folded-key order (the
    invariant of every format v3 shard), so the key array doubles as the
    probe table and slot indices are positions directly — no permutation
    array exists, which is what makes this safe to run over ``np.memmap``
    views without materialising anything proportional to the store.

    ``lengths[k]`` is 0 for probes whose path is not stored; stored paths
    are compared exactly (vectorised), so a 64-bit key collision can never
    surface a foreign posting list, and genuinely duplicated keys (forced
    collisions) fall back to an exact forward scan over the equal-key run.
    """
    num_probes = keys.size
    if store_keys.size == 0:
        return np.zeros(num_probes, dtype=np.int64), np.zeros(num_probes, dtype=np.int64)
    positions = np.searchsorted(store_keys, keys)
    clipped = np.minimum(positions, store_keys.size - 1)
    found = store_keys[clipped] == keys
    slots = np.where(found, clipped, 0)

    slot_lengths = path_offsets[slots + 1] - path_offsets[slots]
    match = found & (slot_lengths == probe_lengths)
    check = np.flatnonzero(match & (probe_lengths > 0))
    if check.size:
        lengths = probe_lengths[check]
        stored = _segment_gather(path_items, path_offsets[slots[check]], lengths)
        probed = _segment_gather(probe_items, probe_starts[check], lengths)
        mismatched = stored != probed
        if np.any(mismatched):
            bad = np.add.reduceat(mismatched, np.cumsum(lengths) - lengths) > 0
            match[check[bad]] = False

    if has_duplicate_keys:
        for probe in np.flatnonzero(found & ~match).tolist():
            key = keys[probe]
            start = int(probe_starts[probe])
            length = int(probe_lengths[probe])
            target = probe_items[start : start + length]
            position = int(positions[probe])
            while position < store_keys.size and store_keys[position] == key:
                slot_start = int(path_offsets[position])
                slot_end = int(path_offsets[position + 1])
                if slot_end - slot_start == length and np.array_equal(
                    path_items[slot_start:slot_end], target
                ):
                    slots[probe] = position
                    match[probe] = True
                    break
                position += 1

    lengths = np.where(match, posting_offsets[slots + 1] - posting_offsets[slots], 0)
    return slots, lengths


class ShardSlice:
    """One repetition's arrays within one shard (typically memmap views)."""

    __slots__ = (
        "keys",
        "path_items",
        "path_offsets",
        "posting_ids",
        "posting_offsets",
        "has_duplicate_keys",
    )

    def __init__(
        self,
        keys: np.ndarray,
        path_items: np.ndarray,
        path_offsets: np.ndarray,
        posting_ids: np.ndarray,
        posting_offsets: np.ndarray,
        has_duplicate_keys: bool,
    ) -> None:
        self.keys = keys
        self.path_items = path_items
        self.path_offsets = path_offsets
        self.posting_ids = posting_ids
        self.posting_offsets = posting_offsets
        self.has_duplicate_keys = bool(has_duplicate_keys)

    @property
    def num_slots(self) -> int:
        return self.keys.size

    @property
    def num_postings(self) -> int:
        return int(self.posting_offsets[-1]) if self.posting_offsets.size else 0


def concatenate_shard_slices(
    slices: Sequence[ShardSlice],
) -> tuple[dict[str, np.ndarray], np.ndarray]:
    """Concatenate ascending key-range shard slices into one sorted store.

    Returns the standard state arrays plus the slot-aligned folded keys.
    Each slice's local offsets are rebased onto the running item/posting
    totals; because shards are ascending key ranges and each slice is
    key-sorted, the result is the globally key-sorted store.  Used both by
    the RAM-mode v3 loader and by :meth:`ShardedInvertedFilterIndex.
    to_sorted_state` (re-serialisation / v2 downgrade), so the rebasing
    logic lives exactly once.  Every output array is a fresh RAM array —
    callers may delete the backing files afterwards.
    """
    keys = (
        np.concatenate([part.keys for part in slices])
        if slices
        else np.empty(0, dtype=np.uint64)
    )
    path_items = np.concatenate(
        [np.asarray(part.path_items, dtype=np.int64) for part in slices]
    ) if slices else np.empty(0, dtype=np.int64)
    posting_ids = np.concatenate(
        [np.asarray(part.posting_ids, dtype=np.int64) for part in slices]
    ) if slices else np.empty(0, dtype=np.int64)
    num_slots = sum(part.num_slots for part in slices)
    path_offsets = np.zeros(num_slots + 1, dtype=np.int64)
    posting_offsets = np.zeros(num_slots + 1, dtype=np.int64)
    cursor = item_base = posting_base = 0
    for part in slices:
        span = part.num_slots
        path_offsets[cursor + 1 : cursor + span + 1] = (
            np.asarray(part.path_offsets[1:], dtype=np.int64) + item_base
        )
        posting_offsets[cursor + 1 : cursor + span + 1] = (
            np.asarray(part.posting_offsets[1:], dtype=np.int64) + posting_base
        )
        item_base += int(part.path_offsets[-1]) if part.path_offsets.size else 0
        posting_base += part.num_postings
        cursor += span
    state = {
        "path_items": path_items,
        "path_offsets": path_offsets,
        "posting_ids": posting_ids,
        "posting_offsets": posting_offsets,
    }
    return state, np.ascontiguousarray(keys, dtype=np.uint64)


class ShardPoolCache:
    """Persistent per-width thread pools shared by an index's repetitions.

    Per-probe pool creation would cost more than the gathers it overlaps,
    and pool-per-repetition would hoard ``repetitions × width`` idle
    threads; one cache shared across every repetition of a loaded index
    caps the thread count at the fan-out width actually requested.  Pools
    are never shut down while the cache lives, so concurrent probes
    requesting different widths can never race onto a closed executor.
    """

    def __init__(self) -> None:
        self._pools: dict[int, ThreadPoolExecutor] = {}
        self._lock = threading.Lock()

    def get(self, width: int) -> ThreadPoolExecutor:
        # Double-checked locking: dict reads are atomic under the GIL and
        # pools are only ever added, so a racy miss just takes the lock.
        pool = self._pools.get(width)  # repro-lint: disable=RPL002 -- double-checked fast path; re-read under the lock below
        if pool is None:
            with self._lock:
                pool = self._pools.get(width)
                if pool is None:
                    pool = ThreadPoolExecutor(
                        max_workers=width, thread_name_prefix="repro-shard"
                    )
                    self._pools[width] = pool
        return pool


class ShardedInvertedFilterIndex:
    """Read-only, shard-routed drop-in for :class:`InvertedFilterIndex`.

    Parameters
    ----------
    fences:
        The ``num_shards - 1`` inner key-range boundaries from the manifest
        (:func:`shard_key_ranges` layout).
    opener:
        Callable mapping a shard index to that shard's :class:`ShardSlice`
        for this repetition.  Called lazily, at most once per shard (the
        slice is cached), so untouched shards never open their arrays.
    slot_counts / posting_counts:
        Per-shard slot and posting counts from the manifest; statistics
        (``num_filters``, ``total_entries``) answer from these without
        paging anything in.
    shard_workers:
        Default per-probe shard fan-out; ``None`` resolves shards serially.
        Callers can override per :meth:`probe_batch` call.
    pool_cache:
        Optional :class:`ShardPoolCache` shared with sibling repetitions of
        the same loaded index (one pool per width instead of one per
        repetition); a private cache is created when omitted.
    """

    is_sharded = True

    def __init__(
        self,
        fences: np.ndarray,
        opener: Callable[[int], ShardSlice],
        slot_counts: Sequence[int],
        posting_counts: Sequence[int],
        shard_workers: int | None = None,
        pool_cache: ShardPoolCache | None = None,
    ) -> None:
        self._fences = np.ascontiguousarray(fences, dtype=np.uint64)
        self._num_shards = self._fences.size + 1
        if len(slot_counts) != self._num_shards or len(posting_counts) != self._num_shards:
            raise ValueError(
                f"expected {self._num_shards} per-shard counts, got "
                f"{len(slot_counts)} slot and {len(posting_counts)} posting counts"
            )
        self._opener = opener
        self._slot_counts = [int(count) for count in slot_counts]
        self._posting_counts = [int(count) for count in posting_counts]
        self.shard_workers = shard_workers
        self._slices: dict[int, ShardSlice] = {}
        self._lock = threading.Lock()
        self._pool_cache = pool_cache if pool_cache is not None else ShardPoolCache()

    # ------------------------------------------------------------------ #
    # Shard access
    # ------------------------------------------------------------------ #

    @property
    def num_shards(self) -> int:
        return self._num_shards

    @property
    def fences(self) -> np.ndarray:
        """The inner key-range boundaries (read-only view)."""
        return self._fences

    @property
    def shards_opened(self) -> int:
        """How many shards have had their arrays opened so far."""
        with self._lock:
            return len(self._slices)

    def _slice(self, shard: int) -> ShardSlice:
        # Double-checked locking: slices are only ever added, never
        # replaced, so a racy hit returns the same immutable ShardSlice
        # the locked path would.
        cached = self._slices.get(shard)  # repro-lint: disable=RPL002 -- double-checked fast path; re-read under the lock below
        if cached is not None:
            return cached
        with self._lock:
            cached = self._slices.get(shard)
            if cached is None:
                cached = self._opener(shard)
                if cached.num_slots != self._slot_counts[shard]:
                    raise ValueError(
                        f"shard {shard} holds {cached.num_slots} slots but the "
                        f"manifest promises {self._slot_counts[shard]}; the index "
                        "directory is corrupted or mixes files from different saves"
                    )
                self._slices[shard] = cached
        return cached

    def _executor(self, workers: int) -> ThreadPoolExecutor:
        """The persistent fan-out pool for the requested width."""
        return self._pool_cache.get(min(int(workers), self._num_shards))

    # ------------------------------------------------------------------ #
    # Probing (the query hot path)
    # ------------------------------------------------------------------ #

    def count_probe_shards(self, keys: Sequence[int] | np.ndarray) -> int:
        """Distinct shards the given probe keys route to."""
        if len(keys) == 0:
            return 0
        return int(np.unique(route_keys(self._fences, np.asarray(keys, dtype=np.uint64))).size)

    def probe_batch(
        self,
        paths: Sequence[Path],
        keys: Sequence[int] | np.ndarray,
        shard_workers: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """:meth:`probe_batch_routed` without the per-probe shard routes."""
        ids, offsets, _route = self.probe_batch_routed(paths, keys, shard_workers)
        return ids, offsets

    def probe_batch_routed(
        self,
        paths: Sequence[Path],
        keys: Sequence[int] | np.ndarray,
        shard_workers: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Resolve many probes at once; CSR slices of their posting lists.

        Same contract as :meth:`InvertedFilterIndex.probe_batch_routed` —
        one concatenated ``posting_ids`` array plus ``len(paths) + 1``
        offsets, in probe order, missing filters contributing empty segments
        and results bit-identical to probing the unsharded store.  Each
        probe key is routed to its shard via the manifest fences, and the
        computed ``route`` (shard index per probe) is returned so callers
        can account shard fan-out without re-routing the same keys; with
        ``shard_workers`` set (or the instance default), independent shards
        resolve and gather concurrently on a thread pool.
        """
        num_probes = len(paths)
        empty = np.empty(0, dtype=np.int64)
        if num_probes == 0:
            return empty, np.zeros(1, dtype=np.int64), np.zeros(0, dtype=np.int64)
        keys_arr = np.ascontiguousarray(keys, dtype=np.uint64)
        probe_items, probe_offsets = paths_to_csr(paths)
        probe_starts = probe_offsets[:-1]
        probe_lengths = np.diff(probe_offsets)
        route = route_keys(self._fences, keys_arr)
        touched = np.unique(route).tolist()

        def resolve(shard: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
            members = np.flatnonzero(route == shard)
            part = self._slice(shard)
            slots, lengths = probe_sorted_arrays(
                keys_arr[members],
                probe_items,
                probe_starts[members],
                probe_lengths[members],
                part.keys,
                part.path_items,
                part.path_offsets,
                part.posting_offsets,
                part.has_duplicate_keys,
            )
            gathered = _segment_gather(
                part.posting_ids, part.posting_offsets[slots], lengths
            ).astype(np.int64, copy=False)
            return members, lengths, gathered

        workers = shard_workers if shard_workers is not None else self.shard_workers
        if workers is not None and workers > 1 and len(touched) > 1:
            parts = list(self._executor(workers).map(resolve, touched))
        else:
            parts = [resolve(shard) for shard in touched]

        per_probe = np.zeros(num_probes, dtype=np.int64)
        for members, lengths, _gathered in parts:
            per_probe[members] = lengths
        offsets = np.zeros(num_probes + 1, dtype=np.int64)
        np.cumsum(per_probe, out=offsets[1:])
        total = int(offsets[-1])
        route64 = route.astype(np.int64, copy=False)
        if total == 0:
            return empty, offsets, route64
        ids = np.empty(total, dtype=np.int64)
        for members, lengths, gathered in parts:
            if not gathered.size:
                continue
            starts = offsets[:-1][members]
            destination = np.arange(gathered.size, dtype=np.int64) + np.repeat(
                starts - (np.cumsum(lengths) - lengths), lengths
            )
            ids[destination] = gathered
        return ids, offsets, route64

    def lookup(self, path: Path) -> list[int]:
        """Vector ids that chose ``path`` (empty list if none)."""
        path = tuple(path)
        return self.lookup_keyed(path, fold_path(path))

    def lookup_keyed(self, path: Path, key: int) -> list[int]:
        """:meth:`lookup` with the path's folded key already in hand."""
        ids, _offsets = self.probe_batch([tuple(path)], [int(key)])
        return ids.tolist()

    def candidates(
        self, paths: Iterable[Path], keys: Sequence[int] | None = None
    ) -> Iterator[int]:
        """Yield every (vector id) collision for the given query filters."""
        paths = [tuple(path) for path in paths]
        if keys is None:
            keys = [fold_path(path) for path in paths]
        ids, _offsets = self.probe_batch(paths, keys)
        yield from ids.tolist()

    def __contains__(self, path: Path) -> bool:
        return self._path_is_stored(tuple(path))

    def _path_is_stored(self, path: Path) -> bool:
        # A stored path with an empty posting list is indistinguishable from
        # a missing one through probe_batch; resolve the slot explicitly.
        key = np.uint64(fold_path(path))
        shard = int(route_keys(self._fences, np.asarray([key]))[0])
        part = self._slice(shard)
        if part.keys.size == 0:
            return False
        probe_items, probe_offsets = paths_to_csr([path])
        slots, _lengths = probe_sorted_arrays(
            np.asarray([key], dtype=np.uint64),
            probe_items,
            probe_offsets[:-1],
            np.diff(probe_offsets),
            part.keys,
            part.path_items,
            part.path_offsets,
            part.posting_offsets,
            part.has_duplicate_keys,
        )
        slot = int(slots[0])
        if part.keys[slot] != key:
            return False
        start = int(part.path_offsets[slot])
        end = int(part.path_offsets[slot + 1])
        return tuple(part.path_items[start:end].tolist()) == path

    # ------------------------------------------------------------------ #
    # Mutation (rejected) and compaction (no-op)
    # ------------------------------------------------------------------ #

    def add(self, *_args: Any, **_kwargs: Any) -> int:
        raise MmapReadOnlyError(_MMAP_READ_ONLY_ERROR)

    def add_many(self, *_args: Any, **_kwargs: Any) -> int:
        raise MmapReadOnlyError(_MMAP_READ_ONLY_ERROR)

    def add_postings(self, *_args: Any, **_kwargs: Any) -> None:
        raise MmapReadOnlyError(_MMAP_READ_ONLY_ERROR)

    def compact(self) -> None:
        """No-op: a mapped store is always compact."""

    # ------------------------------------------------------------------ #
    # Statistics and serialisation
    # ------------------------------------------------------------------ #

    @property
    def num_filters(self) -> int:
        """Number of distinct filters stored (from the manifest counts)."""
        return sum(self._slot_counts)

    @property
    def total_entries(self) -> int:
        """Total number of (filter, vector) postings (manifest counts)."""
        return sum(self._posting_counts)

    def __len__(self) -> int:
        return self.num_filters

    def posting_sizes(self) -> list[int]:
        """Sizes of all posting lists, in global (key) slot order."""
        sizes: list[int] = []
        for shard in range(self._num_shards):
            if self._slot_counts[shard] == 0:
                continue
            sizes.extend(np.diff(self._slice(shard).posting_offsets).tolist())
        return sizes

    def to_state(self) -> dict[str, np.ndarray]:
        """Materialise the full store as the standard state arrays.

        Used by the v3 → v2 downgrade path; this reads every shard (it is
        the one operation that genuinely needs the whole store).
        """
        state, _keys = self.to_sorted_state()
        return state

    def to_sorted_state(self) -> tuple[dict[str, np.ndarray], np.ndarray]:
        """The full store plus its folded keys, slots in ascending key order.

        Shards are key ranges in ascending order and each shard is sorted,
        so concatenation *is* the globally sorted store.  All arrays are
        materialised in RAM — no view into the mapped files survives.
        """
        return concatenate_shard_slices(
            [self._slice(shard) for shard in range(self._num_shards)]
        )

    @property
    def has_duplicate_keys(self) -> bool:
        """Whether any shard carries a forced 64-bit key collision."""
        # Duplicate-key flags live in the manifest-backed opener output; a
        # shard must be opened to know.  Conservative callers should use the
        # per-shard flags; this property is mainly diagnostic.  The lock
        # keeps the iteration consistent with a concurrent lazy open.
        with self._lock:
            return any(
                opened.has_duplicate_keys for opened in self._slices.values()
            )

    def __repr__(self) -> str:
        return (
            f"ShardedInvertedFilterIndex(num_shards={self._num_shards}, "
            f"num_filters={self.num_filters}, total_entries={self.total_entries}, "
            f"opened={self.shards_opened})"
        )


class LazyVectorStore(SequenceABC):
    """The stored dataset vectors as a read-only view over mapped CSR arrays.

    Quacks like the list of ``frozenset`` the engine holds in RAM mode, but
    materialises a vector only when indexed — the vectorised verification
    path reads the mapped arrays directly and normally never asks.
    """

    is_lazy = True

    def __init__(self, items: np.ndarray, offsets: np.ndarray) -> None:
        if offsets.ndim != 1 or offsets.size == 0:
            raise ValueError("vector offsets must be a non-empty 1-d array")
        self._items = items
        self._offsets = offsets

    def __len__(self) -> int:
        return self._offsets.size - 1

    def __getitem__(self, index: int | slice) -> Any:
        if isinstance(index, slice):
            return [self[position] for position in range(*index.indices(len(self)))]
        length = len(self)
        if index < 0:
            index += length
        if not 0 <= index < length:
            raise IndexError(f"vector id {index} is out of range for {length} vectors")
        start = int(self._offsets[index])
        end = int(self._offsets[index + 1])
        return frozenset(int(item) for item in self._items[start:end])

    def __iter__(self) -> Iterator[frozenset[int]]:
        for index in range(len(self)):
            yield self[index]

    def append(self, _vector: Iterable[int]) -> None:
        raise MmapReadOnlyError(_MMAP_READ_ONLY_ERROR)

    def csr_view(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(flat_items, start_offsets, sizes)`` for the candidate store.

        ``flat_items`` stays a mapped view; the derived offset/size arrays
        are small (one int64 per vector) and materialised eagerly.
        """
        starts = np.asarray(self._offsets[:-1], dtype=np.int64)
        sizes = np.diff(np.asarray(self._offsets, dtype=np.int64))
        return self._items, starts, sizes


def sorted_state_of(index: Any) -> tuple[Mapping[str, np.ndarray], np.ndarray]:
    """A postings store's state with slots in ascending folded-key order.

    Accepts both store classes: the sharded view is sorted by construction;
    the in-memory :class:`InvertedFilterIndex` is stably re-ordered by key
    when needed (slots loaded from older formats sit in file order, and the
    chained-collision fallback leaves slots in insertion order).
    """
    if not isinstance(index, (ShardedInvertedFilterIndex, InvertedFilterIndex)):
        raise TypeError(f"cannot shard a store of type {type(index).__name__}")
    return index.to_sorted_state()

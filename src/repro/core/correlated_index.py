"""The correlated-query skew-adaptive index (Theorem 1).

:class:`CorrelatedIndex` is the variant of the data structure for the
"planted" setting: queries are promised to be α-correlated with some dataset
vector (Definition 3).  Knowing the correlation level lets the structure
weight its path choices by the conditional probability
``p̂_i = Pr[x_i = 1 | q_i = 1] = p_i (1 − α) + α`` (Section 6): a shared rare
item is much stronger evidence of correlation than a shared frequent item, so
rare items are sampled far more aggressively.

The acceptance rule follows Lemma 10: an α-correlated pair has Braun-Blanquet
similarity at least ``α/1.3`` with high probability, while uncorrelated pairs
stay below ``α/1.5``, so candidates are reported at threshold ``α/1.3``.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.core.config import CorrelatedIndexConfig
from repro.core.engine import FilterEngine
from repro.core.stats import BatchQueryStats, BuildStats, QueryStats
from repro.core.thresholds import CorrelatedThreshold
from repro.data.distributions import ItemDistribution

SetLike = Iterable[int]


class CorrelatedIndex:
    """Skew-adaptive similarity search for α-correlated queries.

    Parameters
    ----------
    distribution:
        The item-level distribution (must be the true/estimated distribution
        of the data; the thresholds depend on it).
    alpha:
        Correlation level of the queries.
    config:
        Full configuration; when given, ``alpha`` and ``seed`` are ignored.
    seed:
        Hash-function seed.
    """

    def __init__(
        self,
        distribution: ItemDistribution | Sequence[float] | np.ndarray,
        alpha: float = 0.5,
        config: CorrelatedIndexConfig | None = None,
        seed: int = 0,
    ):
        if config is None:
            config = CorrelatedIndexConfig(alpha=alpha, seed=seed)
        self._config = config
        if isinstance(distribution, ItemDistribution):
            self._distribution = distribution
        else:
            self._distribution = ItemDistribution(np.asarray(distribution, dtype=np.float64))
        self._engine: FilterEngine | None = None

    # ------------------------------------------------------------------ #
    # Properties
    # ------------------------------------------------------------------ #

    @property
    def config(self) -> CorrelatedIndexConfig:
        return self._config

    @property
    def distribution(self) -> ItemDistribution:
        return self._distribution

    @property
    def alpha(self) -> float:
        return self._config.alpha

    @property
    def acceptance_threshold(self) -> float:
        """The Braun-Blanquet threshold ``α / 1.3`` used to report candidates."""
        return self._config.acceptance_threshold

    @property
    def build_stats(self) -> BuildStats:
        self._require_built()
        assert self._engine is not None
        return self._engine.build_stats

    @property
    def num_indexed(self) -> int:
        return len(self._engine.vectors) if self._engine is not None else 0

    @property
    def total_stored_filters(self) -> int:
        self._require_built()
        assert self._engine is not None
        return self._engine.total_stored_filters

    # ------------------------------------------------------------------ #
    # Construction and queries
    # ------------------------------------------------------------------ #

    def build(self, collection: Iterable[SetLike]) -> BuildStats:
        """Index a dataset (any iterable of item-id collections)."""
        vectors = [frozenset(int(item) for item in members) for members in collection]
        self._engine = self._create_engine(max(len(vectors), 1))
        return self._engine.build(vectors)

    def _create_engine(self, num_vectors: int) -> FilterEngine:
        """A fresh, empty engine for a dataset of the given size.

        Exposed so that :mod:`repro.core.serialization` can reconstruct the
        engine from the saved configuration and restore the saved state
        directly, without a placeholder build.
        """
        threshold_policy = CorrelatedThreshold(
            probabilities=self._distribution.probabilities,
            alpha=self._config.alpha,
            num_vectors=num_vectors,
            boost_delta=self._config.boost_delta,
        )
        return FilterEngine(
            probabilities=self._distribution.probabilities,
            threshold_policy=threshold_policy,
            acceptance_threshold=self._config.acceptance_threshold,
            num_vectors_hint=num_vectors,
            repetitions=self._config.repetitions,
            max_depth=self._config.max_depth,
            collect_at_max_depth=False,
            stop_product_enabled=True,
            max_paths_per_vector=self._config.max_paths_per_vector,
            seed=self._config.seed,
        )

    def query(self, query: SetLike, mode: str = "first") -> tuple[int | None, QueryStats]:
        """Return the id of the stored vector the query is correlated with.

        Returns ``None`` when no stored vector reaches similarity
        ``α / 1.3`` with the query (e.g. the query is not actually correlated
        with anything in the dataset).
        """
        self._require_built()
        assert self._engine is not None
        return self._engine.query(query, mode=mode)

    def query_batch(
        self,
        queries: Sequence[SetLike],
        mode: str = "first",
        batch_size: int | None = None,
        max_workers: int | None = None,
        deduplicate: bool = True,
        shard_workers: int | None = None,
        allow_partial: bool = False,
        deadline: float | None = None,
    ) -> tuple[list[int | None], BatchQueryStats]:
        """Answer many queries through the vectorised batch subsystem.

        Results are identical to ``[query(q, mode)[0] for q in queries]``;
        see :meth:`repro.core.engine.FilterEngine.query_batch`.
        """
        self._require_built()
        assert self._engine is not None
        return self._engine.query_batch(
            queries,
            mode=mode,
            batch_size=batch_size,
            max_workers=max_workers,
            deduplicate=deduplicate,
            shard_workers=shard_workers,
            allow_partial=allow_partial,
            deadline=deadline,
        )

    def query_candidates(self, query: SetLike) -> tuple[set[int], QueryStats]:
        """All candidate ids colliding with the query (used by joins)."""
        self._require_built()
        assert self._engine is not None
        return self._engine.query_candidates(query)

    def query_candidates_batch(
        self,
        queries: Sequence[SetLike],
        batch_size: int | None = None,
        max_workers: int | None = None,
        deduplicate: bool = True,
        shard_workers: int | None = None,
        allow_partial: bool = False,
        deadline: float | None = None,
    ) -> tuple[list[set[int]], BatchQueryStats]:
        """Batched candidate enumeration (the similarity join's primitive)."""
        self._require_built()
        assert self._engine is not None
        return self._engine.query_candidates_batch(
            queries,
            batch_size=batch_size,
            max_workers=max_workers,
            deduplicate=deduplicate,
            shard_workers=shard_workers,
            allow_partial=allow_partial,
            deadline=deadline,
        )

    def query_candidates_arrays_batch(
        self,
        queries: Sequence[SetLike],
        batch_size: int | None = None,
        max_workers: int | None = None,
        deduplicate: bool = True,
        shard_workers: int | None = None,
        allow_partial: bool = False,
        deadline: float | None = None,
    ) -> tuple[list[np.ndarray], BatchQueryStats]:
        """Batched candidate enumeration as sorted id arrays (read-only)."""
        self._require_built()
        assert self._engine is not None
        return self._engine.query_candidates_arrays_batch(
            queries,
            batch_size=batch_size,
            max_workers=max_workers,
            deduplicate=deduplicate,
            shard_workers=shard_workers,
            allow_partial=allow_partial,
            deadline=deadline,
        )

    @property
    def shard_workers(self) -> int | None:
        """Default per-probe shard fan-out (mmap-loaded indexes only)."""
        self._require_built()
        assert self._engine is not None
        return self._engine.shard_workers

    @shard_workers.setter
    def shard_workers(self, workers: int | None) -> None:
        self._require_built()
        assert self._engine is not None
        self._engine.shard_workers = workers

    def get_vector(self, vector_id: int) -> frozenset[int]:
        """The stored vector with the given id."""
        self._require_built()
        assert self._engine is not None
        return self._engine.vectors[vector_id]

    def insert(self, members: SetLike) -> int:
        """Insert one vector into the built index and return its id.

        Suitable for a moderate number of additions; if the dataset grows by
        a large factor, rebuild so the ``1/n`` stopping rule and the number
        of repetitions match the new size.
        """
        self._require_built()
        assert self._engine is not None
        return self._engine.insert(members)

    def remove(self, vector_id: int) -> None:
        """Remove a stored vector by id (it stops appearing in results)."""
        self._require_built()
        assert self._engine is not None
        self._engine.remove(vector_id)

    def threshold_policy(self) -> CorrelatedThreshold:
        """The bound threshold policy (exposed for inspection and ablations)."""
        self._require_built()
        assert self._engine is not None
        policy = self._engine.threshold_policy
        assert isinstance(policy, CorrelatedThreshold)
        return policy

    # ------------------------------------------------------------------ #
    # Internal helpers
    # ------------------------------------------------------------------ #

    def _require_built(self) -> None:
        if self._engine is None:
            raise RuntimeError("the index has not been built yet; call build() first")

    def __repr__(self) -> str:
        return (
            f"CorrelatedIndex(alpha={self._config.alpha:g}, "
            f"dimension={self._distribution.dimension}, indexed={self.num_indexed})"
        )

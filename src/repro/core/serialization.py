"""Saving and loading built indexes.

Building the filter structure is the expensive step (``O(d n^{1+ρ})``), so a
production deployment wants to build once and reload across processes.  The
format is a single JSON document containing the configuration, the item
probabilities, the stored vectors and every repetition's filter postings, so
a loaded index answers queries identically to the one that was saved (the
hash functions are reconstructed from the saved seed, and the postings are
restored verbatim rather than regenerated).

JSON is chosen over pickle so the files are portable, diffable and safe to
load from untrusted sources.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import numpy as np

from repro.core.config import CorrelatedIndexConfig, SkewAdaptiveIndexConfig
from repro.core.correlated_index import CorrelatedIndex
from repro.core.skewed_index import SkewAdaptiveIndex
from repro.data.distributions import ItemDistribution

#: Format version written into every file; bumped on incompatible changes.
FORMAT_VERSION = 1

_INDEX_KINDS = {
    "skew_adaptive": SkewAdaptiveIndex,
    "correlated": CorrelatedIndex,
}


def _engine_state(index: SkewAdaptiveIndex | CorrelatedIndex) -> dict[str, Any]:
    engine = index._engine  # noqa: SLF001 - serialization is a trusted friend module
    if engine is None:
        raise ValueError("only a built index can be saved; call build() first")
    postings_per_repetition = []
    for inverted in engine._indexes:  # noqa: SLF001
        postings_per_repetition.append(
            [[list(path), vector_ids] for path, vector_ids in inverted._postings.items()]  # noqa: SLF001
        )
    return {
        "vectors": [sorted(vector) for vector in engine.vectors],
        "removed": sorted(engine._removed),  # noqa: SLF001
        "postings": postings_per_repetition,
        "build_stats": {
            "num_vectors": engine.build_stats.num_vectors,
            "total_filters": engine.build_stats.total_filters,
            "truncated_vectors": engine.build_stats.truncated_vectors,
            "repetitions": engine.build_stats.repetitions,
        },
    }


def _config_payload(index: SkewAdaptiveIndex | CorrelatedIndex) -> dict[str, Any]:
    config = index.config
    if isinstance(index, SkewAdaptiveIndex):
        return {
            "kind": "skew_adaptive",
            "b1": config.b1,
            "repetitions": config.repetitions,
            "max_depth": config.max_depth,
            "max_paths_per_vector": config.max_paths_per_vector,
            "seed": config.seed,
        }
    return {
        "kind": "correlated",
        "alpha": config.alpha,
        "acceptance_divisor": config.acceptance_divisor,
        "boost_delta": config.boost_delta,
        "repetitions": config.repetitions,
        "max_depth": config.max_depth,
        "max_paths_per_vector": config.max_paths_per_vector,
        "seed": config.seed,
    }


def save_index(index: SkewAdaptiveIndex | CorrelatedIndex, path: str | Path) -> None:
    """Serialise a built index to a JSON file.

    Parameters
    ----------
    index:
        A built :class:`SkewAdaptiveIndex` or :class:`CorrelatedIndex`.
    path:
        Destination file path (overwritten if it exists).
    """
    if not isinstance(index, (SkewAdaptiveIndex, CorrelatedIndex)):
        raise TypeError(f"cannot serialise index of type {type(index).__name__}")
    payload = {
        "format_version": FORMAT_VERSION,
        "config": _config_payload(index),
        "probabilities": index.distribution.probabilities.tolist(),
        "engine": _engine_state(index),
    }
    Path(path).write_text(json.dumps(payload), encoding="utf-8")


def _restore_config(config_payload: dict[str, Any]):
    kind = config_payload["kind"]
    if kind == "skew_adaptive":
        return SkewAdaptiveIndexConfig(
            b1=config_payload["b1"],
            repetitions=config_payload["repetitions"],
            max_depth=config_payload["max_depth"],
            max_paths_per_vector=config_payload["max_paths_per_vector"],
            seed=config_payload["seed"],
        )
    if kind == "correlated":
        return CorrelatedIndexConfig(
            alpha=config_payload["alpha"],
            acceptance_divisor=config_payload["acceptance_divisor"],
            boost_delta=config_payload["boost_delta"],
            repetitions=config_payload["repetitions"],
            max_depth=config_payload["max_depth"],
            max_paths_per_vector=config_payload["max_paths_per_vector"],
            seed=config_payload["seed"],
        )
    raise ValueError(f"unknown index kind {kind!r} in saved file")


def load_index(path: str | Path) -> SkewAdaptiveIndex | CorrelatedIndex:
    """Load an index previously written by :func:`save_index`.

    The returned index answers queries identically to the saved one: the
    stored postings are restored verbatim and the hash functions are rebuilt
    deterministically from the saved seed.
    """
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported index file format version {version!r}; expected {FORMAT_VERSION}"
        )
    config_payload = payload["config"]
    kind = config_payload["kind"]
    if kind not in _INDEX_KINDS:
        raise ValueError(f"unknown index kind {kind!r} in saved file")

    distribution = ItemDistribution(np.asarray(payload["probabilities"], dtype=np.float64))
    config = _restore_config(config_payload)
    index_class = _INDEX_KINDS[kind]
    index = index_class(distribution, config=config)

    engine_payload = payload["engine"]
    vectors = [frozenset(int(item) for item in members) for members in engine_payload["vectors"]]
    # build() recreates the engine (generators, hash functions, stopping rule,
    # repetition count) from the dataset *size*, so it is called with the right
    # number of placeholder empty vectors — generating no filters — and the
    # saved vectors and postings are then restored verbatim.  Queries on the
    # loaded index therefore generate exactly the same filters as on the
    # original one.
    index.build([frozenset()] * len(vectors))
    engine = index._engine  # noqa: SLF001
    assert engine is not None
    engine._vectors = vectors  # noqa: SLF001
    engine._removed = set(int(v) for v in engine_payload["removed"])  # noqa: SLF001
    stats_payload = engine_payload["build_stats"]
    engine._build_stats.num_vectors = stats_payload["num_vectors"]  # noqa: SLF001
    engine._build_stats.total_filters = stats_payload["total_filters"]  # noqa: SLF001
    engine._build_stats.truncated_vectors = stats_payload["truncated_vectors"]  # noqa: SLF001
    engine._build_stats.repetitions = stats_payload["repetitions"]  # noqa: SLF001

    from repro.core.inverted_index import InvertedFilterIndex

    restored_indexes = []
    for repetition_postings in engine_payload["postings"]:
        inverted = InvertedFilterIndex()
        for path, vector_ids in repetition_postings:
            inverted.add_postings(tuple(int(item) for item in path), [int(v) for v in vector_ids])
        restored_indexes.append(inverted)
    if len(restored_indexes) != len(engine._indexes):  # noqa: SLF001
        raise ValueError(
            "saved index has a different number of repetitions than its configuration implies"
        )
    engine._indexes = restored_indexes  # noqa: SLF001
    return index

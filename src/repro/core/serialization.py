"""Saving and loading built indexes (sharded format v3, legacy v2/v1).

Building the filter structure is the expensive step (``O(d n^{1+ρ})``), so a
production deployment wants to build once and reload across processes — and,
past a certain scale, to *open* rather than *load*: an index bigger than RAM
must still answer its first query promptly.

**Format v3 (default)** is a directory, sharded by folded-key range::

    index.v3/
      manifest.json        # version, config, BuildStats, fences, counts
      store.bin            # vectors (CSR), probabilities, tombstones
      shard_0000.bin ...   # per shard: every repetition's postings slice

Each ``.bin`` file is a self-describing raw container: a small JSON header
followed by little-endian numpy arrays at page-aligned offsets — exactly
the layout ``np.memmap`` can serve zero-copy.  Every repetition's postings
store is written with slots in ascending folded-key order and split at the
manifest's key-range *fences*, so a shard's slice of any repetition is
itself key-sorted: the mapped key array doubles as the probe table and
nothing is rebuilt at open time.  Unlike v2, the folded ``path_keys`` *are*
stored (8 bytes per slot buys skipping both the re-fold and the argsort on
load — and in mmap mode makes lazy probing possible at all), offsets are
stored directly rather than delta-encoded (random access must not cumsum),
and nothing is compressed (deflate and ``memmap`` are mutually exclusive).

:func:`load_index` takes ``mode="ram"`` (default) or ``mode="mmap"``:

* RAM mode reads the shard files — concurrently, on a small thread pool —
  concatenates each repetition's slices (shards are ascending key ranges,
  so concatenation *is* the sorted store) and adopts the arrays into
  ordinary :class:`~repro.core.inverted_index.InvertedFilterIndex` stores.
* mmap mode opens ``np.memmap`` views lazily per shard and serves queries
  through :class:`~repro.core.mmap_store.ShardedInvertedFilterIndex` and
  :class:`~repro.core.mmap_store.LazyVectorStore` — cold start is
  O(manifest), resident memory is proportional to the slots a workload
  actually touches, and results are bit-identical to RAM mode on every
  query surface.

**Format v2** (single-file compressed ``.npz`` container) remains fully
readable and writable (``PersistenceConfig(format_version=2)``), serving as
the downgrade path; **format v1** (the original JSON dump) remains readable.
:func:`convert_index_file` rewrites any readable format as any writable one.
Malformed input of every format — bad zip data, corrupt manifests,
truncated shard files, out-of-range postings — is rejected with
:class:`ValueError` carrying an actionable message before it can affect
query results, and v2 containers are still loaded with
``allow_pickle=False`` so files are safe to accept from untrusted sources.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import zipfile
import zlib
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Any

import numpy as np

from repro.baselines.chosen_path import ChosenPathIndex
from repro.core.config import (
    CorrelatedIndexConfig,
    PersistenceConfig,
    SkewAdaptiveIndexConfig,
)
from repro.core.correlated_index import CorrelatedIndex
from repro.core.engine import FilterEngine
from repro.core.inverted_index import InvertedFilterIndex, _segment_gather
from repro.core.mmap_store import (
    LazyVectorStore,
    ShardedInvertedFilterIndex,
    ShardPoolCache,
    ShardSlice,
    concatenate_shard_slices,
    shard_key_ranges,
    sorted_state_of,
)
from repro.core.skewed_index import SkewAdaptiveIndex
from repro.core.stats import BuildStats
from repro.data.distributions import ItemDistribution

#: Format version written by default; bumped on incompatible changes.
FORMAT_VERSION = 3

#: The single-file ``.npz`` container format (still written on request —
#: the v3 → v2 downgrade path — and always readable).
V2_FORMAT_VERSION = 2

#: The legacy all-JSON format this module can still read (and convert).
LEGACY_JSON_VERSION = 1

AnyIndex = SkewAdaptiveIndex | CorrelatedIndex | ChosenPathIndex

_INDEX_KINDS = ("skew_adaptive", "correlated", "chosen_path")

_ZIP_MAGIC = b"PK\x03\x04"

#: Raw-container prefix of every v3 ``.bin`` file: magic, container
#: revision, JSON header length, data start (all little-endian uint32
#: after the 4-byte magic).
_V3_MAGIC = b"RPV3"
_V3_CONTAINER_REVISION = 1
_V3_PREFIX = struct.Struct("<4sIII")

#: Arrays inside a v3 container start at multiples of this (one page), so
#: ``np.memmap`` views fall on page boundaries and lazy paging is clean.
_V3_PAGE = 4096

_MANIFEST_NAME = "manifest.json"
_STORE_NAME = "store.bin"

#: Per-repetition arrays inside each v3 shard file.
_V3_SHARD_ARRAYS = (
    "path_keys",
    "path_items",
    "path_offsets",
    "posting_ids",
    "posting_offsets",
)

#: Per-repetition array names as stored on disk (offsets are delta-encoded
#: to lengths there; :data:`repro.core.inverted_index.STATE_ARRAY_NAMES` is
#: the in-memory contract).
_DISK_POSTINGS_NAMES = ("path_items", "path_lengths", "posting_ids", "posting_lengths")


# --------------------------------------------------------------------- #
# Configuration payloads
# --------------------------------------------------------------------- #


def _config_payload(index: AnyIndex) -> dict[str, Any]:
    if isinstance(index, SkewAdaptiveIndex):
        config = index.config
        return {
            "kind": "skew_adaptive",
            "b1": config.b1,
            "repetitions": config.repetitions,
            "max_depth": config.max_depth,
            "max_paths_per_vector": config.max_paths_per_vector,
            "seed": config.seed,
        }
    if isinstance(index, CorrelatedIndex):
        config = index.config
        return {
            "kind": "correlated",
            "alpha": config.alpha,
            "acceptance_divisor": config.acceptance_divisor,
            "boost_delta": config.boost_delta,
            "repetitions": config.repetitions,
            "max_depth": config.max_depth,
            "max_paths_per_vector": config.max_paths_per_vector,
            "seed": config.seed,
        }
    return {
        "kind": "chosen_path",
        "dimension": index.dimension,
        "b1": index.b1,
        "b2": index.b2,
        "repetitions": index._repetitions,  # noqa: SLF001 - friend module
        "max_paths_per_vector": index._max_paths_per_vector,  # noqa: SLF001
        "seed": index._seed,  # noqa: SLF001
    }


def _construct_index(
    config_payload: dict[str, Any], probabilities: np.ndarray | None
) -> AnyIndex:
    if not isinstance(config_payload, dict):
        raise ValueError("malformed configuration block in saved file")
    kind = config_payload.get("kind")
    if kind not in _INDEX_KINDS:
        raise ValueError(f"unknown index kind {kind!r} in saved file")
    try:
        return _construct_index_checked(kind, config_payload, probabilities)
    except KeyError as error:
        raise ValueError(
            f"saved {kind} configuration is missing field {error.args[0]!r}"
        ) from error


def _construct_index_checked(
    kind: str, config_payload: dict[str, Any], probabilities: np.ndarray | None
) -> AnyIndex:
    if kind == "chosen_path":
        return ChosenPathIndex(
            dimension=config_payload["dimension"],
            b1=config_payload["b1"],
            b2=config_payload["b2"],
            repetitions=config_payload["repetitions"],
            max_paths_per_vector=config_payload["max_paths_per_vector"],
            seed=config_payload["seed"],
        )
    if probabilities is None:
        raise ValueError(f"saved {kind} index is missing its item probabilities")
    distribution = ItemDistribution(np.asarray(probabilities, dtype=np.float64))
    if kind == "skew_adaptive":
        config: SkewAdaptiveIndexConfig | CorrelatedIndexConfig = SkewAdaptiveIndexConfig(
            b1=config_payload["b1"],
            repetitions=config_payload["repetitions"],
            max_depth=config_payload["max_depth"],
            max_paths_per_vector=config_payload["max_paths_per_vector"],
            seed=config_payload["seed"],
        )
        return SkewAdaptiveIndex(distribution, config=config)
    config = CorrelatedIndexConfig(
        alpha=config_payload["alpha"],
        acceptance_divisor=config_payload["acceptance_divisor"],
        boost_delta=config_payload["boost_delta"],
        repetitions=config_payload["repetitions"],
        max_depth=config_payload["max_depth"],
        max_paths_per_vector=config_payload["max_paths_per_vector"],
        seed=config_payload["seed"],
    )
    return CorrelatedIndex(distribution, config=config)


def _require_engine(index: AnyIndex) -> FilterEngine:
    engine = index._engine  # noqa: SLF001 - serialization is a trusted friend module
    if engine is None:
        raise ValueError("only a built index can be saved; call build() first")
    return engine


# --------------------------------------------------------------------- #
# Save (format v2)
# --------------------------------------------------------------------- #


def _compact_ints(array: np.ndarray) -> np.ndarray:
    """Narrow a non-negative integer array to the smallest unsigned dtype.

    Item ids, vector ids and per-row lengths are far below ``2^64`` in any
    realistic dataset, so this shrinks the dominant arrays of the file by
    2–8×; loading widens them back to int64.
    """
    peak = int(array.max()) if array.size else 0
    for dtype in (np.uint8, np.uint16, np.uint32):
        if peak < np.iinfo(dtype).max + 1:
            return array.astype(dtype)
    return array


def _lengths_from_offsets(offsets: np.ndarray) -> np.ndarray:
    """Delta-encode a CSR offsets array for storage (lengths compress well)."""
    return _compact_ints(np.diff(offsets))


def _offsets_from_lengths(lengths: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_lengths_from_offsets`, rejecting negative lengths.

    (A negative length would make the reconstructed offsets non-monotone and
    silently scramble the rows; files we write store unsigned lengths, so
    this only fires on corrupted or hand-crafted input.)
    """
    lengths = np.asarray(lengths)
    if lengths.ndim != 1:
        raise ValueError("length arrays must be one-dimensional")
    if lengths.size and int(lengths.min()) < 0:
        raise ValueError("negative row length in saved index; the file is corrupted")
    offsets = np.zeros(lengths.size + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    return offsets


def _locality_order(state: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
    """Reorder a postings state's slots lexicographically by path content.

    The in-memory store keeps slots in folded-*key* order (fast probes), but
    64-bit hashes are a random shuffle of the paths, which costs deflate
    dearly — paths sharing prefixes end up far apart.  The on-disk format
    does not constrain slot order (loading rebuilds the probe tables from
    scratch), so saving reorders slots so that prefix-sharing paths are
    adjacent again; at n=10k this shrinks the compressed container by ~40%.
    Implemented as one ``lexsort`` over a depth-padded item matrix — no
    per-slot Python work.
    """
    path_offsets = state["path_offsets"]
    path_items = state["path_items"]
    num_slots = path_offsets.size - 1
    lengths = np.diff(path_offsets)
    max_depth = int(lengths.max()) if num_slots else 0
    if num_slots <= 1 or max_depth == 0:
        return state
    padded = np.full((num_slots, max_depth), -1, dtype=np.int64)
    for level in range(max_depth):
        rows = np.flatnonzero(lengths > level)
        padded[rows, level] = path_items[path_offsets[rows] + level]
    order = np.lexsort(tuple(padded[:, column] for column in range(max_depth - 1, -1, -1)))

    posting_offsets = state["posting_offsets"]
    posting_ids = state["posting_ids"]
    new_path_offsets = np.zeros(num_slots + 1, dtype=np.int64)
    np.cumsum(lengths[order], out=new_path_offsets[1:])
    posting_lengths = np.diff(posting_offsets)
    new_posting_offsets = np.zeros(num_slots + 1, dtype=np.int64)
    np.cumsum(posting_lengths[order], out=new_posting_offsets[1:])
    return {
        "path_items": _segment_gather(path_items, path_offsets[order], lengths[order]),
        "path_offsets": new_path_offsets,
        "posting_ids": _segment_gather(
            posting_ids, posting_offsets[order], posting_lengths[order]
        ),
        "posting_offsets": new_posting_offsets,
    }


def _vectors_csr(vectors: Any) -> tuple[np.ndarray, np.ndarray]:
    """The stored vectors as (flat sorted items, per-vector lengths)."""
    lengths = np.fromiter(
        (len(vector) for vector in vectors), dtype=np.int64, count=len(vectors)
    )
    items = np.fromiter(
        (item for vector in vectors for item in sorted(vector)),
        dtype=np.int64,
        count=int(lengths.sum()),
    )
    return items, lengths


def save_index(
    index: AnyIndex, path: str | Path, config: PersistenceConfig | None = None
) -> None:
    """Serialise a built index in the configured on-disk format.

    Parameters
    ----------
    index:
        A built :class:`SkewAdaptiveIndex`, :class:`CorrelatedIndex` or
        :class:`~repro.baselines.chosen_path.ChosenPathIndex` — including
        one loaded in ``mode="mmap"`` (its mapped shards are materialised
        while writing).
    path:
        Destination path (overwritten if it exists).  Format v3 writes a
        *directory* of shard files here; format v2 a single file.
    config:
        Optional :class:`~repro.core.config.PersistenceConfig`; the default
        writes format v3 with 8 shards.  ``format_version=2`` selects the
        legacy single-file container (the downgrade path).
    """
    if not isinstance(index, (SkewAdaptiveIndex, CorrelatedIndex, ChosenPathIndex)):
        raise TypeError(f"cannot serialise index of type {type(index).__name__}")
    persistence = config if config is not None else PersistenceConfig()
    engine = _require_engine(index)
    if persistence.format_version == V2_FORMAT_VERSION:
        _save_v2(index, engine, Path(path), persistence)
    else:
        _save_v3(index, engine, Path(path), persistence)


def _index_meta(index: AnyIndex, engine: FilterEngine, format_version: int) -> dict[str, Any]:
    """The JSON metadata block shared by the v2 and v3 writers."""
    return {
        "format_version": format_version,
        "config": _config_payload(index),
        "num_vectors": len(engine.vectors),
        "num_vectors_hint": engine.num_vectors_hint,
        "repetitions": engine.repetitions,
        "build_stats": engine.build_stats.to_dict(),
    }


def _save_v2(
    index: AnyIndex, engine: FilterEngine, path: Path, persistence: PersistenceConfig
) -> None:
    """Write the single-file compressed ``.npz`` container (format v2)."""
    if path.is_dir():
        raise ValueError(
            f"cannot write a format v2 single-file container at {path}: it is a "
            "directory (a v3 index?); pick a different destination path"
        )
    meta = _index_meta(index, engine, V2_FORMAT_VERSION)
    arrays: dict[str, np.ndarray] = {
        "meta": np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8),
    }
    if not isinstance(index, ChosenPathIndex):
        arrays["probabilities"] = np.asarray(
            index.distribution.probabilities, dtype=np.float64
        )
    vector_items, vector_lengths = _vectors_csr(engine.vectors)
    arrays["vector_items"] = _compact_ints(vector_items)
    arrays["vector_lengths"] = _compact_ints(vector_lengths)
    arrays["removed"] = _compact_ints(np.asarray(sorted(engine.removed_ids), dtype=np.int64))
    for repetition, inverted in enumerate(engine.filter_indexes):
        state = _locality_order(dict(inverted.to_state()))
        prefix = f"rep{repetition:04d}_"
        arrays[prefix + "path_items"] = _compact_ints(state["path_items"])
        arrays[prefix + "path_lengths"] = _lengths_from_offsets(state["path_offsets"])
        arrays[prefix + "posting_ids"] = _compact_ints(state["posting_ids"])
        arrays[prefix + "posting_lengths"] = _lengths_from_offsets(state["posting_offsets"])

    writer = np.savez_compressed if persistence.compress else np.savez
    # Write through an open handle so numpy cannot append an ``.npz`` suffix
    # behind the caller's back — the file lands exactly at ``path``.
    with open(path, "wb") as handle:
        writer(handle, **arrays)


# --------------------------------------------------------------------- #
# Format v3: page-aligned raw containers, sharded by folded-key range
# --------------------------------------------------------------------- #


def _align_page(offset: int) -> int:
    return (offset + _V3_PAGE - 1) // _V3_PAGE * _V3_PAGE


def _resolve_io_workers(persistence: PersistenceConfig, num_files: int) -> int:
    if persistence.io_workers is not None:
        return max(1, min(persistence.io_workers, num_files))
    return max(1, min(num_files, os.cpu_count() or 1))


def _write_raw_container(path: Path, arrays: dict[str, np.ndarray]) -> None:
    """Write a self-describing raw-array container (one v3 ``.bin`` file).

    Layout: a 16-byte prefix (magic, container revision, JSON header
    length, data start), the JSON header mapping array names to
    ``{dtype, shape, offset}`` (offsets relative to the data start, each
    page-aligned), zero padding, then the raw little-endian array bytes.
    """
    entries: dict[str, dict[str, Any]] = {}
    cursor = 0
    contiguous: dict[str, np.ndarray] = {}
    for name, array in arrays.items():
        array = np.ascontiguousarray(array)
        if array.dtype.byteorder == ">":  # pragma: no cover - big-endian hosts
            array = array.astype(array.dtype.newbyteorder("<"))
        contiguous[name] = array
        entries[name] = {
            "dtype": np.dtype(array.dtype).str,
            "shape": list(array.shape),
            "offset": cursor,
        }
        cursor = _align_page(cursor + array.nbytes)
    header = json.dumps({"arrays": entries}).encode("utf-8")
    data_start = _align_page(_V3_PREFIX.size + len(header))
    with open(path, "wb") as handle:
        handle.write(
            _V3_PREFIX.pack(_V3_MAGIC, _V3_CONTAINER_REVISION, len(header), data_start)
        )
        handle.write(header)
        for name, array in contiguous.items():
            handle.seek(data_start + entries[name]["offset"])
            array.tofile(handle)
        # Pad the file out to a page boundary so the last mapped array never
        # reads past EOF even when viewed a full page at a time.
        end = data_start + (
            max(
                entries[name]["offset"] + contiguous[name].nbytes
                for name in contiguous
            )
            if contiguous
            else 0
        )
        handle.truncate(_align_page(end))


def _read_raw_container(path: Path, mode: str) -> dict[str, np.ndarray]:
    """Open a v3 ``.bin`` container as arrays (``mmap`` views or ``ram``).

    Every malformed input — wrong magic, corrupt header, arrays extending
    past the end of the file — raises :class:`ValueError` naming the file
    and the problem, so a truncated copy fails loudly instead of serving
    garbage postings.
    """
    file_size = path.stat().st_size
    with open(path, "rb") as handle:
        prefix = handle.read(_V3_PREFIX.size)
        if len(prefix) < _V3_PREFIX.size:
            raise ValueError(
                f"{path} is truncated: too short to hold a v3 container prefix"
            )
        magic, revision, header_len, data_start = _V3_PREFIX.unpack(prefix)
        if magic != _V3_MAGIC:
            raise ValueError(f"{path} is not a v3 array container (bad magic)")
        if revision != _V3_CONTAINER_REVISION:
            raise ValueError(
                f"{path} uses container revision {revision}; this version reads "
                f"revision {_V3_CONTAINER_REVISION}"
            )
        header_bytes = handle.read(header_len)
        if len(header_bytes) < header_len:
            raise ValueError(f"{path} is truncated inside its container header")
        try:
            header = json.loads(header_bytes.decode("utf-8"))
            entries = header["arrays"]
            assert isinstance(entries, dict)
        except (ValueError, KeyError, AssertionError) as error:
            raise ValueError(f"{path} has a corrupt container header: {error}") from error

        arrays: dict[str, np.ndarray] = {}
        for name, entry in entries.items():
            try:
                dtype = np.dtype(entry["dtype"])
                shape = tuple(int(axis) for axis in entry["shape"])
                offset = int(entry["offset"])
            except (KeyError, TypeError, ValueError) as error:
                raise ValueError(
                    f"{path} has a corrupt entry for array {name!r}: {error}"
                ) from error
            nbytes = dtype.itemsize * int(np.prod(shape, dtype=np.int64)) if shape else dtype.itemsize
            end = data_start + offset + nbytes
            if offset < 0 or end > file_size:
                raise ValueError(
                    f"{path} is truncated: array {name!r} needs bytes up to "
                    f"{end} but the file holds {file_size}; the file is "
                    "corrupted or was partially copied"
                )
            if mode == "mmap":
                arrays[name] = np.memmap(
                    path, dtype=dtype, mode="r", offset=data_start + offset, shape=shape
                )
            else:
                handle.seek(data_start + offset)
                count = int(np.prod(shape, dtype=np.int64)) if shape else 1
                arrays[name] = np.fromfile(handle, dtype=dtype, count=count).reshape(shape)
    return arrays


def _shard_file_name(shard: int) -> str:
    return f"shard_{shard:04d}.bin"


def _save_v3(
    index: AnyIndex, engine: FilterEngine, path: Path, persistence: PersistenceConfig
) -> None:
    """Write the sharded, mmap-native directory layout (format v3).

    The write is staged for crash safety: every array is materialised
    *before* any existing file is touched (an mmap-loaded index may be
    resaving over the very shards its views are backed by), the complete
    new layout — manifest last — is written into a sibling staging
    directory, and only then is the destination swapped with two directory
    renames.  At every instant the destination path holds the complete old
    index, the complete new index, or (for the one instant between the
    renames, and after a crash in that window) nothing readable — never a
    mixture of the two saves, which could answer queries inconsistently.
    A crash before the swap leaves the old index untouched.
    """
    num_shards = persistence.shards
    fences = shard_key_ranges(num_shards)
    if path.is_dir():
        existing = {entry.name for entry in path.iterdir()}
        index_like = {
            name
            for name in existing
            if name == _MANIFEST_NAME
            or name == _STORE_NAME
            or (name.startswith("shard_") and name.endswith(".bin"))
        }
        if existing - index_like:
            raise ValueError(
                f"refusing to overwrite {path}: it exists but does not look like "
                f"an index directory (unexpected entries: "
                f"{sorted(existing - index_like)[:5]})"
            )

    meta = _index_meta(index, engine, FORMAT_VERSION)

    # Top-level store file: vectors in CSR form (offsets stored directly so
    # mmap mode can slice without a cumsum), probabilities, tombstones.
    vector_items, vector_lengths = _vectors_csr(engine.vectors)
    vector_offsets = np.zeros(vector_lengths.size + 1, dtype=np.int64)
    np.cumsum(vector_lengths, out=vector_offsets[1:])
    store_arrays: dict[str, np.ndarray] = {
        "vector_items": _compact_ints(vector_items),
        "vector_offsets": vector_offsets,
        "removed": np.asarray(sorted(engine.removed_ids), dtype=np.int64),
    }
    if not isinstance(index, ChosenPathIndex):
        store_arrays["probabilities"] = np.asarray(
            index.distribution.probabilities, dtype=np.float64
        )

    # Slice every repetition's key-sorted postings store at the fences.
    # Shard s of repetition r holds the slots whose folded key falls in
    # [fences[s-1], fences[s]) — a contiguous slot range, because slots are
    # in ascending key order.
    per_shard_arrays: list[dict[str, np.ndarray]] = [{} for _ in range(num_shards)]
    shard_meta: list[list[dict[str, Any]]] = [[] for _ in range(num_shards)]
    for repetition, inverted in enumerate(engine.filter_indexes):
        state, keys = sorted_state_of(inverted)
        path_offsets = np.ascontiguousarray(state["path_offsets"], dtype=np.int64)
        posting_offsets = np.ascontiguousarray(state["posting_offsets"], dtype=np.int64)
        path_items = _compact_ints(np.ascontiguousarray(state["path_items"], dtype=np.int64))
        posting_ids = _compact_ints(np.ascontiguousarray(state["posting_ids"], dtype=np.int64))
        cuts = np.concatenate(
            [[0], np.searchsorted(keys, fences), [keys.size]]
        ).astype(np.int64)
        prefix = f"rep{repetition:04d}_"
        for shard in range(num_shards):
            low, high = int(cuts[shard]), int(cuts[shard + 1])
            shard_keys = keys[low:high]
            arrays = per_shard_arrays[shard]
            arrays[prefix + "path_keys"] = shard_keys
            arrays[prefix + "path_items"] = path_items[
                int(path_offsets[low]) : int(path_offsets[high])
            ]
            arrays[prefix + "path_offsets"] = path_offsets[low : high + 1] - path_offsets[low]
            arrays[prefix + "posting_ids"] = posting_ids[
                int(posting_offsets[low]) : int(posting_offsets[high])
            ]
            arrays[prefix + "posting_offsets"] = (
                posting_offsets[low : high + 1] - posting_offsets[low]
            )
            shard_meta[shard].append(
                {
                    "num_slots": high - low,
                    "num_postings": int(posting_offsets[high] - posting_offsets[low]),
                    "has_duplicate_keys": bool(
                        shard_keys.size and np.any(shard_keys[1:] == shard_keys[:-1])
                    ),
                }
            )

    shard_files = [_shard_file_name(shard) for shard in range(num_shards)]

    # Stage 1: write the complete new layout into a sibling staging
    # directory, manifest last.  Nothing of a pre-existing index has been
    # touched, and sorted_state_of above already materialised every source
    # array, so an mmap-loaded index can safely resave over its own path.
    staging = path.parent / (path.name + ".v3-staging")
    if staging.exists():
        _remove_index_path(staging)
    staging.mkdir(parents=True)

    def write_shard(shard: int) -> None:
        _write_raw_container(staging / shard_files[shard], per_shard_arrays[shard])

    workers = _resolve_io_workers(persistence, num_shards)
    if workers > 1 and num_shards > 1:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            list(pool.map(write_shard, range(num_shards)))
    else:
        for shard in range(num_shards):
            write_shard(shard)
    _write_raw_container(staging / _STORE_NAME, store_arrays)

    manifest = dict(meta)
    manifest.update(
        {
            "container_revision": _V3_CONTAINER_REVISION,
            "num_shards": num_shards,
            "fences": [int(fence) for fence in fences],
            "store_file": _STORE_NAME,
            "shard_files": shard_files,
            "shards": [{"repetitions": shard_meta[shard]} for shard in range(num_shards)],
        }
    )
    # The manifest lands last even within the staging directory, so no
    # directory with a manifest ever has incomplete shard files.
    (staging / _MANIFEST_NAME).write_text(json.dumps(manifest), encoding="utf-8")

    # Stage 2: swap.  The old index (directory or single file) is moved
    # aside, the staging directory renamed into place, and the old copy
    # removed only after the new one is live.
    backup = path.parent / (path.name + ".v3-old")
    if backup.exists():
        _remove_index_path(backup)
    if path.exists():
        os.replace(path, backup)
    os.replace(staging, path)
    if backup.exists():
        _remove_index_path(backup)


def _remove_index_path(path: Path) -> None:
    """Delete a saved index (single file or directory) from disk."""
    if path.is_dir():
        for entry in path.iterdir():
            entry.unlink()
        path.rmdir()
    else:
        path.unlink()


# --------------------------------------------------------------------- #
# Load (v2 fast path + legacy v1)
# --------------------------------------------------------------------- #


def _restore_engine(
    index: AnyIndex,
    num_vectors_hint: int,
    vectors: Any,
    removed: Any,
    build_stats: BuildStats,
    filter_indexes: Any,
) -> AnyIndex:
    engine = index._create_engine(max(num_vectors_hint, 1))  # noqa: SLF001
    # restore_state rejects a repetition count that disagrees with the
    # engine the saved configuration reconstructs.
    engine.restore_state(vectors, removed, build_stats, filter_indexes)
    index._engine = engine  # noqa: SLF001
    return index


def _load_v2(path: Path, persistence: PersistenceConfig) -> AnyIndex:
    try:
        return _load_v2_container(path, persistence)
    except (zipfile.BadZipFile, zlib.error, EOFError) as error:
        # A file can carry the zip magic yet be truncated or corrupt; keep
        # the documented ValueError contract for every malformed input.
        raise ValueError(f"{path} is not a valid index file: {error}") from error


def _load_v2_container(path: Path, persistence: PersistenceConfig) -> AnyIndex:
    with np.load(path, allow_pickle=False) as container:
        try:
            meta = json.loads(bytes(container["meta"]).decode("utf-8"))
        except (KeyError, ValueError) as error:
            raise ValueError(
                f"{path} is not a valid index file: missing or corrupt metadata"
            ) from error
        if not isinstance(meta, dict):
            raise ValueError(f"{path} is not a valid index file: metadata is not an object")
        version = meta.get("format_version")
        if version != V2_FORMAT_VERSION:
            raise ValueError(
                f"unsupported index file format version {version!r}; "
                f"expected {V2_FORMAT_VERSION} in a single-file container"
            )
        missing_meta = [
            key
            for key in ("config", "build_stats", "num_vectors", "num_vectors_hint", "repetitions")
            if key not in meta
        ]
        missing_arrays = [
            name
            for name in ("vector_items", "vector_lengths", "removed")
            if name not in container
        ]
        if missing_meta or missing_arrays:
            raise ValueError(
                f"{path} is not a valid index file: missing "
                f"{missing_meta + missing_arrays}"
            )
        probabilities = (
            np.asarray(container["probabilities"]) if "probabilities" in container else None
        )
        index = _construct_index(meta["config"], probabilities)
        build_stats = BuildStats.from_dict(meta["build_stats"], strict=True)

        vector_items = container["vector_items"].tolist()
        vector_offsets = _offsets_from_lengths(container["vector_lengths"]).tolist()
        if vector_offsets[-1] != len(vector_items):
            raise ValueError(f"{path} has a malformed stored-vector layout")
        vectors = [
            frozenset(vector_items[start:end])
            for start, end in zip(vector_offsets, vector_offsets[1:])
        ]
        num_vectors = int(meta["num_vectors"])
        if len(vectors) != num_vectors:
            raise ValueError(
                f"{path} declares {num_vectors} vectors but stores {len(vectors)}"
            )
        removed = container["removed"].tolist()

        config_payload = meta["config"]
        if config_payload["kind"] == "chosen_path":
            dimension = int(config_payload["dimension"])
        else:
            assert probabilities is not None
            dimension = int(probabilities.size)

        repetitions = int(meta["repetitions"])
        filter_indexes = []
        for repetition in range(repetitions):
            prefix = f"rep{repetition:04d}_"
            missing = [
                name
                for name in _DISK_POSTINGS_NAMES
                if prefix + name not in container
            ]
            if missing:
                raise ValueError(
                    f"{path} is missing arrays for repetition {repetition}: {missing}"
                )
            state = {
                "path_items": container[prefix + "path_items"],
                "path_offsets": _offsets_from_lengths(container[prefix + "path_lengths"]),
                "posting_ids": container[prefix + "posting_ids"],
                "posting_offsets": _offsets_from_lengths(
                    container[prefix + "posting_lengths"]
                ),
            }
            if persistence.validate_postings:
                ids = state["posting_ids"]
                if ids.size and int(ids.max()) >= num_vectors:
                    raise ValueError(
                        f"{path} repetition {repetition} references vector ids beyond "
                        f"the {num_vectors} stored vectors; the file is corrupted"
                    )
                items = state["path_items"]
                if items.size and int(items.max()) >= dimension:
                    raise ValueError(
                        f"{path} repetition {repetition} references items beyond the "
                        f"universe of size {dimension}; the file is corrupted"
                    )
            filter_indexes.append(InvertedFilterIndex.from_state(state))

    return _restore_engine(
        index,
        int(meta["num_vectors_hint"]),
        vectors,
        removed,
        build_stats,
        filter_indexes,
    )


def _read_manifest(path: Path) -> dict[str, Any]:
    """Read and structurally validate a v3 directory's ``manifest.json``."""
    manifest_path = path / _MANIFEST_NAME
    if not manifest_path.is_file():
        raise ValueError(
            f"{path} is a directory but holds no {_MANIFEST_NAME}; it is not a "
            f"format v{FORMAT_VERSION} index (or the manifest was deleted)"
        )
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except ValueError as error:
        raise ValueError(
            f"{manifest_path} is not valid JSON ({error}); the manifest is corrupted"
        ) from error
    if not isinstance(manifest, dict):
        raise ValueError(f"{manifest_path} does not hold a JSON object; corrupted")
    version = manifest.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported index file format version {version!r}; expected {FORMAT_VERSION}"
        )
    required = (
        "config",
        "build_stats",
        "num_vectors",
        "num_vectors_hint",
        "repetitions",
        "num_shards",
        "fences",
        "store_file",
        "shard_files",
        "shards",
    )
    missing = [key for key in required if key not in manifest]
    if missing:
        raise ValueError(
            f"{manifest_path} is missing fields {missing}; the manifest is corrupted"
        )
    try:
        num_shards = int(manifest["num_shards"])
        repetitions = int(manifest["repetitions"])
        fences = [int(fence) for fence in manifest["fences"]]
    except (TypeError, ValueError) as error:
        # Non-numeric counts or fences must surface as the documented
        # ValueError (actionable, CLI-catchable), never a raw TypeError.
        raise ValueError(
            f"{manifest_path} holds non-numeric shard counts or fences "
            f"({error}); the manifest is corrupted"
        ) from error
    if num_shards <= 0 or repetitions <= 0:
        raise ValueError(f"{manifest_path} declares a non-positive shard/repetition count")
    if (
        len(fences) != num_shards - 1
        or any(fences[i] >= fences[i + 1] for i in range(len(fences) - 1))
        or any(not 0 < fence < 1 << 64 for fence in fences)
    ):
        raise ValueError(
            f"{manifest_path} declares {num_shards} shards but its key-range "
            "fences are inconsistent; the manifest is corrupted"
        )
    shard_files = manifest["shard_files"]
    shards = manifest["shards"]
    if len(shard_files) != num_shards or len(shards) != num_shards:
        raise ValueError(
            f"{manifest_path} lists {len(shard_files)} shard files and "
            f"{len(shards)} shard entries for {num_shards} shards; corrupted"
        )
    for shard, entry in enumerate(shards):
        reps = entry.get("repetitions") if isinstance(entry, dict) else None
        if not isinstance(reps, list) or len(reps) != repetitions:
            raise ValueError(
                f"{manifest_path} shard {shard} does not describe all "
                f"{repetitions} repetitions; the manifest is corrupted"
            )
        for repetition, counts in enumerate(reps):
            if not isinstance(counts, dict) or any(
                key not in counts
                for key in ("num_slots", "num_postings", "has_duplicate_keys")
            ):
                raise ValueError(
                    f"{manifest_path} shard {shard} repetition {repetition} is "
                    "missing its slot/posting counts; the manifest is corrupted"
                )
    return manifest


def _shard_slice_from_container(
    arrays: dict[str, np.ndarray],
    file_path: Path,
    repetition: int,
    counts: dict[str, Any],
) -> ShardSlice:
    """Assemble (and validate) one repetition's slice of a shard container."""
    prefix = f"rep{repetition:04d}_"
    missing = [name for name in _V3_SHARD_ARRAYS if prefix + name not in arrays]
    if missing:
        raise ValueError(
            f"{file_path} is missing arrays for repetition {repetition}: {missing}; "
            "the shard file is corrupted or from a different save"
        )
    num_slots = int(counts["num_slots"])
    num_postings = int(counts["num_postings"])
    keys = arrays[prefix + "path_keys"]
    path_offsets = arrays[prefix + "path_offsets"]
    posting_offsets = arrays[prefix + "posting_offsets"]
    posting_ids = arrays[prefix + "posting_ids"]
    if (
        keys.size != num_slots
        or path_offsets.size != num_slots + 1
        or posting_offsets.size != num_slots + 1
        or posting_ids.size != num_postings
    ):
        raise ValueError(
            f"{file_path} repetition {repetition} disagrees with the manifest "
            f"counts ({num_slots} slots, {num_postings} postings); the index "
            "directory mixes files from different saves or is corrupted"
        )
    return ShardSlice(
        keys=keys,
        path_items=arrays[prefix + "path_items"],
        path_offsets=path_offsets,
        posting_ids=posting_ids,
        posting_offsets=posting_offsets,
        has_duplicate_keys=bool(counts["has_duplicate_keys"]),
    )


class _ShardContainerCache:
    """Lazily opened, thread-safe mmap containers of a v3 shard directory."""

    def __init__(self, directory: Path, shard_files: list[str]) -> None:
        self._directory = directory
        self._shard_files = shard_files
        self._containers: dict[int, dict[str, np.ndarray]] = {}
        self._lock = threading.Lock()

    def path_of(self, shard: int) -> Path:
        return self._directory / self._shard_files[shard]

    def arrays(self, shard: int) -> dict[str, np.ndarray]:
        # Double-checked locking: containers are add-only, so a racy hit
        # returns the same mapping the locked path would.
        cached = self._containers.get(shard)  # repro-lint: disable=RPL002 -- double-checked fast path; re-read under the lock below
        if cached is not None:
            return cached
        with self._lock:
            cached = self._containers.get(shard)
            if cached is None:
                cached = _read_raw_container(self.path_of(shard), "mmap")
                self._containers[shard] = cached
        return cached


def _load_v3(
    path: Path,
    persistence: PersistenceConfig,
    mode: str,
    shard_workers: int | None,
) -> AnyIndex:
    manifest = _read_manifest(path)
    num_shards = int(manifest["num_shards"])
    repetitions = int(manifest["repetitions"])
    num_vectors = int(manifest["num_vectors"])
    fences = np.asarray([int(fence) for fence in manifest["fences"]], dtype=np.uint64)
    shard_files = [str(name) for name in manifest["shard_files"]]
    for name in [str(manifest["store_file"])] + shard_files:
        if not (path / name).is_file():
            raise ValueError(
                f"{path} is missing {name}; the index directory is incomplete"
            )

    store = _read_raw_container(path / str(manifest["store_file"]), mode)
    missing_store = [
        name for name in ("vector_items", "vector_offsets", "removed") if name not in store
    ]
    if missing_store:
        raise ValueError(f"{path} store file is missing arrays {missing_store}")
    probabilities = (
        np.asarray(store["probabilities"], dtype=np.float64)
        if "probabilities" in store
        else None
    )
    index = _construct_index(manifest["config"], probabilities)
    build_stats = BuildStats.from_dict(manifest["build_stats"], strict=True)

    vector_items = store["vector_items"]
    vector_offsets = np.asarray(store["vector_offsets"], dtype=np.int64)
    if (
        vector_offsets.size != num_vectors + 1
        or (vector_offsets.size and int(vector_offsets[0]) != 0)
        or np.any(np.diff(vector_offsets) < 0)
        or int(vector_offsets[-1]) != vector_items.size
    ):
        raise ValueError(f"{path} has a malformed stored-vector layout")
    removed = np.asarray(store["removed"]).tolist()

    config_payload = manifest["config"]
    if config_payload["kind"] == "chosen_path":
        dimension = int(config_payload["dimension"])
    else:
        assert probabilities is not None
        dimension = int(probabilities.size)

    counts_by_rep = [
        [manifest["shards"][shard]["repetitions"][repetition] for shard in range(num_shards)]
        for repetition in range(repetitions)
    ]

    if mode == "mmap":
        vectors: Any = LazyVectorStore(vector_items, store["vector_offsets"])
        cache = _ShardContainerCache(path, shard_files)
        pool_cache = ShardPoolCache()
        filter_indexes = []
        for repetition in range(repetitions):
            def opener(shard: int, _repetition: int = repetition) -> ShardSlice:
                return _shard_slice_from_container(
                    cache.arrays(shard),
                    cache.path_of(shard),
                    _repetition,
                    counts_by_rep[_repetition][shard],
                )

            filter_indexes.append(
                ShardedInvertedFilterIndex(
                    fences,
                    opener,
                    slot_counts=[
                        int(counts["num_slots"]) for counts in counts_by_rep[repetition]
                    ],
                    posting_counts=[
                        int(counts["num_postings"]) for counts in counts_by_rep[repetition]
                    ],
                    shard_workers=shard_workers,
                    pool_cache=pool_cache,
                )
            )
    else:
        items_list = vector_items.tolist()
        offsets_list = vector_offsets.tolist()
        vectors = [
            frozenset(items_list[start:end])
            for start, end in zip(offsets_list, offsets_list[1:])
        ]

        def read_shard(shard: int) -> dict[str, np.ndarray]:
            return _read_raw_container(path / shard_files[shard], "ram")

        workers = _resolve_io_workers(persistence, num_shards)
        if workers > 1 and num_shards > 1:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                containers = list(pool.map(read_shard, range(num_shards)))
        else:
            containers = [read_shard(shard) for shard in range(num_shards)]

        filter_indexes = []
        for repetition in range(repetitions):
            slices = [
                _shard_slice_from_container(
                    containers[shard],
                    path / shard_files[shard],
                    repetition,
                    counts_by_rep[repetition][shard],
                )
                for shard in range(num_shards)
            ]
            # Shards are ascending key ranges, so concatenating their
            # key-sorted slices yields the globally sorted store; the keys
            # are adopted directly (no re-fold, no argsort).
            state, keys = concatenate_shard_slices(slices)
            if persistence.validate_postings:
                ids = state["posting_ids"]
                if ids.size and int(ids.max()) >= num_vectors:
                    raise ValueError(
                        f"{path} repetition {repetition} references vector ids beyond "
                        f"the {num_vectors} stored vectors; the file is corrupted"
                    )
                items = state["path_items"]
                if items.size and int(items.max()) >= dimension:
                    raise ValueError(
                        f"{path} repetition {repetition} references items beyond the "
                        f"universe of size {dimension}; the file is corrupted"
                    )
            try:
                filter_indexes.append(InvertedFilterIndex.from_state(state, keys=keys))
            except ValueError as error:
                raise ValueError(f"{path} repetition {repetition}: {error}") from error

    restored = _restore_engine(
        index,
        int(manifest["num_vectors_hint"]),
        vectors,
        removed,
        build_stats,
        filter_indexes,
    )
    engine = restored._engine  # noqa: SLF001 - friend module
    assert engine is not None
    engine.shard_workers = shard_workers
    return restored


def _load_v1(path: Path) -> AnyIndex:
    payload = json.loads(path.read_text(encoding="utf-8"))
    version = payload.get("format_version")
    if version != LEGACY_JSON_VERSION:
        raise ValueError(
            f"unsupported index file format version {version!r}; expected "
            f"{FORMAT_VERSION} (or legacy {LEGACY_JSON_VERSION}, convertible with "
            "'repro convert')"
        )
    config_payload = payload["config"]
    probabilities = np.asarray(payload["probabilities"], dtype=np.float64)
    index = _construct_index(config_payload, probabilities)

    engine_payload = payload["engine"]
    vectors = [
        frozenset(int(item) for item in members) for members in engine_payload["vectors"]
    ]
    removed = [int(v) for v in engine_payload["removed"]]
    build_stats = BuildStats.from_dict(engine_payload["build_stats"], strict=True)

    filter_indexes = []
    for repetition_postings in engine_payload["postings"]:
        inverted = InvertedFilterIndex()
        for stored_path, vector_ids in repetition_postings:
            inverted.add_postings(
                tuple(int(item) for item in stored_path), [int(v) for v in vector_ids]
            )
        inverted.compact()
        filter_indexes.append(inverted)

    return _restore_engine(
        index,
        len(vectors),
        vectors,
        removed,
        build_stats,
        filter_indexes,
    )


def load_index(
    path: str | Path,
    config: PersistenceConfig | None = None,
    mode: str = "ram",
    shard_workers: int | None = None,
) -> AnyIndex:
    """Load an index previously written by :func:`save_index`.

    The returned index answers single and batched queries identically to the
    saved one: the engine (hash functions, thresholds, stopping rule) is
    reconstructed deterministically from the saved configuration and the
    postings arrays are adopted directly — nothing is rebuilt.

    Parameters
    ----------
    path:
        A format v3 index directory, a v2 single-file container, or a
        legacy v1 JSON file; the format is auto-detected.  Anything else
        raises :class:`ValueError` with the offending version.
    config:
        Optional :class:`~repro.core.config.PersistenceConfig` (controls
        load-time validation and the RAM-mode shard-read thread pool).
    mode:
        ``"ram"`` (default) materialises every array in memory — shard
        files are read concurrently and the stored keys make the load
        cheaper than a v2 load ever was.  ``"mmap"`` (v3 only) opens the
        arrays as lazy ``np.memmap`` views instead: cold start touches only
        the manifest, resident memory tracks the slots queries actually
        probe, and results stay bit-identical to RAM mode on every query
        surface.  An mmap-loaded index is read-only (removals overlay fine;
        inserts raise).
    shard_workers:
        Default per-probe shard fan-out installed on the loaded engine
        (overridable per batched call); mainly useful with ``mode="mmap"``.
    """
    path = Path(path)
    persistence = config if config is not None else PersistenceConfig()
    if mode not in ("ram", "mmap"):
        raise ValueError(f"mode must be 'ram' or 'mmap', got {mode!r}")
    if path.is_dir():
        return _load_v3(path, persistence, mode, shard_workers)
    if mode == "mmap":
        raise ValueError(
            f"mode='mmap' requires a format v{FORMAT_VERSION} index directory, but "
            f"{path} is a single file; convert it first with "
            "convert_index_file(source, destination) or 'repro convert'"
        )
    with open(path, "rb") as handle:
        head = handle.read(64)
    if head.startswith(_ZIP_MAGIC):
        index = _load_v2(path, persistence)
    elif head.lstrip().startswith(b"{"):
        index = _load_v1(path)
    else:
        raise ValueError(
            f"{path} is not a recognised index file (expected a format "
            f"v{FORMAT_VERSION} directory, a v{V2_FORMAT_VERSION} binary container "
            f"or a legacy v{LEGACY_JSON_VERSION} JSON document)"
        )
    if shard_workers is not None:
        engine = index._engine  # noqa: SLF001 - friend module
        assert engine is not None
        engine.shard_workers = shard_workers
    return index


def convert_index_file(
    source: str | Path, destination: str | Path, config: PersistenceConfig | None = None
) -> AnyIndex:
    """Convert a saved index (any readable version) to a writable format.

    Loads ``source`` (v1 JSON, v2 container or v3 directory) and rewrites
    it at ``destination`` in the configured format — v3 by default, so this
    is the v1/v2 → v3 upgrade path, and with
    ``PersistenceConfig(format_version=2)`` the v3 → v2 downgrade path for
    deployments that must hand files back to an older release.  Returns the
    loaded index so callers can keep using it.
    """
    index = load_index(source, config=config)
    save_index(index, destination, config=config)
    return index


def index_disk_bytes(path: str | Path) -> int:
    """Total on-disk footprint of a saved index (file, or v3 directory)."""
    path = Path(path)
    if path.is_dir():
        return sum(entry.stat().st_size for entry in path.iterdir() if entry.is_file())
    return path.stat().st_size


def _container_resident_bytes(path: Path) -> int:
    """Sum of array sizes in a v3 container, from its header only."""
    with open(path, "rb") as handle:
        prefix = handle.read(_V3_PREFIX.size)
        if len(prefix) < _V3_PREFIX.size:
            raise ValueError(
                f"{path} is truncated: too short to hold a v3 container prefix"
            )
        magic, _revision, header_len, _data_start = _V3_PREFIX.unpack(prefix)
        if magic != _V3_MAGIC:
            raise ValueError(f"{path} is not a v3 array container (bad magic)")
        header_bytes = handle.read(header_len)
        if len(header_bytes) < header_len:
            raise ValueError(f"{path} is truncated inside its container header")
        try:
            header = json.loads(header_bytes.decode("utf-8"))
            entries = header["arrays"].values()
        except (ValueError, KeyError, AttributeError) as error:
            raise ValueError(f"{path} has a corrupt container header: {error}") from error
    total = 0
    for entry in entries:
        dtype = np.dtype(entry["dtype"])
        total += dtype.itemsize * int(np.prod(entry["shape"], dtype=np.int64))
    return total


def _npz_array_counts(path: Path) -> dict[str, int]:
    """Element counts of every array in an ``.npz`` container, header-only.

    Reads each zip member's ``.npy`` header (a few dozen bytes, inflated
    incrementally) instead of decompressing the array data, so inspecting a
    large v2 file stays cheap.  Falls back to loading the container when a
    member uses a ``.npy`` format revision the header readers reject.
    """
    counts: dict[str, int] = {}
    try:
        with zipfile.ZipFile(path) as archive:
            for info in archive.infolist():
                name = info.filename
                if not name.endswith(".npy") or name == "meta.npy":
                    continue
                with archive.open(info) as member:
                    version = np.lib.format.read_magic(member)
                    if version == (1, 0):
                        shape, _fortran, _dtype = np.lib.format.read_array_header_1_0(member)
                    else:
                        shape, _fortran, _dtype = np.lib.format.read_array_header_2_0(member)
                counts[name[: -len(".npy")]] = int(np.prod(shape, dtype=np.int64))
    except ValueError:  # pragma: no cover - future .npy header revisions
        with np.load(path, allow_pickle=False) as container:
            counts = {
                name: int(container[name].size)
                for name in container.files
                if name != "meta"
            }
    return counts


def describe_index_file(path: str | Path) -> dict[str, Any]:
    """Metadata of a saved index without fully loading it (CLI ``inspect``).

    Works for all three formats and returns a dict with ``format_version``,
    ``kind``, ``num_vectors``, ``repetitions``, ``build_stats``,
    ``disk_bytes``, ``resident_bytes`` (estimated size of the arrays once
    loaded in RAM mode — for v3 this is also the ceiling an mmap workload
    can page in), and for v3 additionally ``num_shards``, ``fences`` and a
    per-shard ``shards`` table of slot/posting counts.
    """
    path = Path(path)
    disk_bytes = index_disk_bytes(path)
    if path.is_dir():
        manifest = _read_manifest(path)
        resident = sum(
            _container_resident_bytes(path / str(name))
            for name in [manifest["store_file"], *manifest["shard_files"]]
        )
        shards = [
            {
                "slots": sum(int(rep["num_slots"]) for rep in entry["repetitions"]),
                "postings": sum(int(rep["num_postings"]) for rep in entry["repetitions"]),
            }
            for entry in manifest["shards"]
        ]
        return {
            "format_version": FORMAT_VERSION,
            "kind": manifest["config"].get("kind"),
            "num_vectors": int(manifest["num_vectors"]),
            "num_vectors_hint": int(manifest["num_vectors_hint"]),
            "repetitions": int(manifest["repetitions"]),
            "build_stats": dict(manifest["build_stats"]),
            "num_shards": int(manifest["num_shards"]),
            "fences": [int(fence) for fence in manifest["fences"]],
            "shards": shards,
            "disk_bytes": disk_bytes,
            "resident_bytes": resident,
        }
    with open(path, "rb") as handle:
        head = handle.read(64)
    if head.startswith(_ZIP_MAGIC):
        try:
            with np.load(path, allow_pickle=False) as container:
                try:
                    meta = json.loads(bytes(container["meta"]).decode("utf-8"))
                except (KeyError, ValueError) as error:
                    raise ValueError(
                        f"{path} is not a valid index file: missing or corrupt metadata"
                    ) from error
            # Estimate the footprint *after* a RAM load, on the same footing
            # as the v3 figure: the narrowed ids/items widen back to int64,
            # the delta-encoded lengths become int64 offsets, and every slot
            # re-derives its folded key plus a probe-table entry (8+8 bytes)
            # that v3 stores explicitly.  Element counts come from the
            # ``.npy`` member headers — nothing is decompressed beyond a few
            # bytes each.
            resident = 0
            for name, count in _npz_array_counts(path).items():
                resident += (count + 1) * 8 if name.endswith("_lengths") else count * 8
                if name.endswith("path_lengths"):
                    resident += count * 16
        except (zipfile.BadZipFile, zlib.error, EOFError) as error:
            # Same contract as loading: zip-level corruption surfaces as the
            # documented (CLI-catchable) ValueError.
            raise ValueError(f"{path} is not a valid index file: {error}") from error
        return {
            "format_version": V2_FORMAT_VERSION,
            "kind": meta.get("config", {}).get("kind"),
            "num_vectors": int(meta.get("num_vectors", 0)),
            "num_vectors_hint": int(meta.get("num_vectors_hint", 0)),
            "repetitions": int(meta.get("repetitions", 0)),
            "build_stats": dict(meta.get("build_stats", {})),
            "num_shards": None,
            "fences": None,
            "shards": None,
            "disk_bytes": disk_bytes,
            "resident_bytes": resident,
        }
    if head.lstrip().startswith(b"{"):
        payload = json.loads(path.read_text(encoding="utf-8"))
        engine_payload = payload.get("engine", {})
        postings = engine_payload.get("postings", [])
        entries = sum(
            len(vector_ids)
            for repetition in postings
            for _stored_path, vector_ids in repetition
        )
        items = sum(
            len(stored_path)
            for repetition in postings
            for stored_path, _vector_ids in repetition
        )
        vector_items = sum(len(members) for members in engine_payload.get("vectors", []))
        return {
            "format_version": LEGACY_JSON_VERSION,
            "kind": payload.get("config", {}).get("kind"),
            "num_vectors": len(engine_payload.get("vectors", [])),
            "num_vectors_hint": len(engine_payload.get("vectors", [])),
            "repetitions": len(postings),
            "build_stats": dict(engine_payload.get("build_stats", {})),
            "num_shards": None,
            "fences": None,
            "shards": None,
            "disk_bytes": disk_bytes,
            "resident_bytes": 8 * (entries + items + vector_items),
        }
    raise ValueError(f"{path} is not a recognised index file")


# --------------------------------------------------------------------- #
# Legacy writer (benchmarks and migration tests only)
# --------------------------------------------------------------------- #


def _save_legacy_v1(index: SkewAdaptiveIndex | CorrelatedIndex, path: str | Path) -> None:
    """Write the legacy v1 JSON format (kept for benchmarks and tests).

    v1 never supported the Chosen Path baseline and stored only four
    ``BuildStats`` fields; this writer reproduces that historical layout so
    the migration path (:func:`convert_index_file`, the serialization
    benchmark) can be exercised against real v1 files.
    """
    if not isinstance(index, (SkewAdaptiveIndex, CorrelatedIndex)):
        raise TypeError(f"format v1 cannot store an index of type {type(index).__name__}")
    engine = _require_engine(index)
    postings_per_repetition = []
    for inverted in engine.filter_indexes:
        state = inverted.to_state()
        offsets = state["path_offsets"].tolist()
        items = state["path_items"].tolist()
        posting_offsets = state["posting_offsets"].tolist()
        posting_ids = state["posting_ids"].tolist()
        postings_per_repetition.append(
            [
                [items[p_start:p_end], posting_ids[v_start:v_end]]
                for p_start, p_end, v_start, v_end in zip(
                    offsets, offsets[1:], posting_offsets, posting_offsets[1:]
                )
            ]
        )
    stats = engine.build_stats
    payload = {
        "format_version": LEGACY_JSON_VERSION,
        "config": _config_payload(index),
        "probabilities": index.distribution.probabilities.tolist(),
        "engine": {
            "vectors": [sorted(vector) for vector in engine.vectors],
            "removed": sorted(engine.removed_ids),
            "postings": postings_per_repetition,
            "build_stats": {
                "num_vectors": stats.num_vectors,
                "total_filters": stats.total_filters,
                "truncated_vectors": stats.truncated_vectors,
                "repetitions": stats.repetitions,
            },
        },
    }
    Path(path).write_text(json.dumps(payload), encoding="utf-8")

"""Saving and loading built indexes (binary format v2).

Building the filter structure is the expensive step (``O(d n^{1+ρ})``), so a
production deployment wants to build once and reload across processes.  A
saved index is a single ``.npz``-style container (a zip of raw numpy arrays,
written with ``numpy.savez``) holding

* a small JSON metadata block — format version, index kind and
  configuration, the full extended :class:`~repro.core.stats.BuildStats`;
* the item probabilities and the stored vectors in CSR form;
* the tombstone (removed-id) set;
* per repetition, the postings store's flat arrays (``path_items``,
  ``path_lengths``, ``posting_ids``, ``posting_lengths``) — the in-memory
  CSR arrays of :class:`~repro.core.inverted_index.InvertedFilterIndex`
  with the offsets delta-encoded as per-row lengths and the integer dtypes
  narrowed, both purely for compression; the folded ``path_keys`` are *not*
  stored (they are high-entropy and deterministic) and are re-derived on
  load with the vectorised :func:`~repro.hashing.pairwise.fold_paths_csr`,
  after which the sorted probe tables of the CSR-native query pipeline are
  rebuilt with a single argsort.

Because the on-disk layout maps 1:1 onto the in-memory store,
:func:`load_index` reconstructs the engine from the saved configuration and
adopts the arrays directly — no placeholder build, no filter regeneration —
and a loaded index answers single and batched queries bit-identically to
the one that was saved.  Slot *order* is an implementation detail the format
deliberately does not constrain: files written since the CSR-native probe
pipeline hold slots in folded-key order (the bulk compaction's output, which
makes the probe tables an identity view), while files written by earlier
releases hold them in first-registration order — both load through the same
path and answer queries identically, so pre-existing v2 files keep working
unchanged.  Arrays are loaded with ``allow_pickle=False``, so files remain
safe to load from untrusted sources, and malformed layouts are rejected
with :class:`ValueError` before they can affect query results.

Format v1 (the original JSON dump of nested posting lists) is still
*readable*: :func:`load_index` detects it and restores it through the same
direct-restore path, and :func:`convert_index_file` rewrites a v1 file as
v2.  New files are always written as v2.
"""

from __future__ import annotations

import json
import zipfile
import zlib
from pathlib import Path
from typing import Any

import numpy as np

from repro.baselines.chosen_path import ChosenPathIndex
from repro.core.config import (
    CorrelatedIndexConfig,
    PersistenceConfig,
    SkewAdaptiveIndexConfig,
)
from repro.core.correlated_index import CorrelatedIndex
from repro.core.inverted_index import InvertedFilterIndex, _segment_gather
from repro.core.skewed_index import SkewAdaptiveIndex
from repro.core.stats import BuildStats
from repro.data.distributions import ItemDistribution

#: Format version written into every file; bumped on incompatible changes.
FORMAT_VERSION = 2

#: The legacy all-JSON format this module can still read (and convert).
LEGACY_JSON_VERSION = 1

AnyIndex = SkewAdaptiveIndex | CorrelatedIndex | ChosenPathIndex

_INDEX_KINDS = ("skew_adaptive", "correlated", "chosen_path")

_ZIP_MAGIC = b"PK\x03\x04"

#: Per-repetition array names as stored on disk (offsets are delta-encoded
#: to lengths there; :data:`repro.core.inverted_index.STATE_ARRAY_NAMES` is
#: the in-memory contract).
_DISK_POSTINGS_NAMES = ("path_items", "path_lengths", "posting_ids", "posting_lengths")


# --------------------------------------------------------------------- #
# Configuration payloads
# --------------------------------------------------------------------- #


def _config_payload(index: AnyIndex) -> dict[str, Any]:
    if isinstance(index, SkewAdaptiveIndex):
        config = index.config
        return {
            "kind": "skew_adaptive",
            "b1": config.b1,
            "repetitions": config.repetitions,
            "max_depth": config.max_depth,
            "max_paths_per_vector": config.max_paths_per_vector,
            "seed": config.seed,
        }
    if isinstance(index, CorrelatedIndex):
        config = index.config
        return {
            "kind": "correlated",
            "alpha": config.alpha,
            "acceptance_divisor": config.acceptance_divisor,
            "boost_delta": config.boost_delta,
            "repetitions": config.repetitions,
            "max_depth": config.max_depth,
            "max_paths_per_vector": config.max_paths_per_vector,
            "seed": config.seed,
        }
    return {
        "kind": "chosen_path",
        "dimension": index.dimension,
        "b1": index.b1,
        "b2": index.b2,
        "repetitions": index._repetitions,  # noqa: SLF001 - friend module
        "max_paths_per_vector": index._max_paths_per_vector,  # noqa: SLF001
        "seed": index._seed,  # noqa: SLF001
    }


def _construct_index(
    config_payload: dict[str, Any], probabilities: np.ndarray | None
) -> AnyIndex:
    if not isinstance(config_payload, dict):
        raise ValueError("malformed configuration block in saved file")
    kind = config_payload.get("kind")
    if kind not in _INDEX_KINDS:
        raise ValueError(f"unknown index kind {kind!r} in saved file")
    try:
        return _construct_index_checked(kind, config_payload, probabilities)
    except KeyError as error:
        raise ValueError(
            f"saved {kind} configuration is missing field {error.args[0]!r}"
        ) from error


def _construct_index_checked(
    kind: str, config_payload: dict[str, Any], probabilities: np.ndarray | None
) -> AnyIndex:
    if kind == "chosen_path":
        return ChosenPathIndex(
            dimension=config_payload["dimension"],
            b1=config_payload["b1"],
            b2=config_payload["b2"],
            repetitions=config_payload["repetitions"],
            max_paths_per_vector=config_payload["max_paths_per_vector"],
            seed=config_payload["seed"],
        )
    if probabilities is None:
        raise ValueError(f"saved {kind} index is missing its item probabilities")
    distribution = ItemDistribution(np.asarray(probabilities, dtype=np.float64))
    if kind == "skew_adaptive":
        config: SkewAdaptiveIndexConfig | CorrelatedIndexConfig = SkewAdaptiveIndexConfig(
            b1=config_payload["b1"],
            repetitions=config_payload["repetitions"],
            max_depth=config_payload["max_depth"],
            max_paths_per_vector=config_payload["max_paths_per_vector"],
            seed=config_payload["seed"],
        )
        return SkewAdaptiveIndex(distribution, config=config)
    config = CorrelatedIndexConfig(
        alpha=config_payload["alpha"],
        acceptance_divisor=config_payload["acceptance_divisor"],
        boost_delta=config_payload["boost_delta"],
        repetitions=config_payload["repetitions"],
        max_depth=config_payload["max_depth"],
        max_paths_per_vector=config_payload["max_paths_per_vector"],
        seed=config_payload["seed"],
    )
    return CorrelatedIndex(distribution, config=config)


def _require_engine(index: AnyIndex):
    engine = index._engine  # noqa: SLF001 - serialization is a trusted friend module
    if engine is None:
        raise ValueError("only a built index can be saved; call build() first")
    return engine


# --------------------------------------------------------------------- #
# Save (format v2)
# --------------------------------------------------------------------- #


def _compact_ints(array: np.ndarray) -> np.ndarray:
    """Narrow a non-negative integer array to the smallest unsigned dtype.

    Item ids, vector ids and per-row lengths are far below ``2^64`` in any
    realistic dataset, so this shrinks the dominant arrays of the file by
    2–8×; loading widens them back to int64.
    """
    peak = int(array.max()) if array.size else 0
    for dtype in (np.uint8, np.uint16, np.uint32):
        if peak < np.iinfo(dtype).max + 1:
            return array.astype(dtype)
    return array


def _lengths_from_offsets(offsets: np.ndarray) -> np.ndarray:
    """Delta-encode a CSR offsets array for storage (lengths compress well)."""
    return _compact_ints(np.diff(offsets))


def _offsets_from_lengths(lengths: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_lengths_from_offsets`, rejecting negative lengths.

    (A negative length would make the reconstructed offsets non-monotone and
    silently scramble the rows; files we write store unsigned lengths, so
    this only fires on corrupted or hand-crafted input.)
    """
    lengths = np.asarray(lengths)
    if lengths.ndim != 1:
        raise ValueError("length arrays must be one-dimensional")
    if lengths.size and int(lengths.min()) < 0:
        raise ValueError("negative row length in saved index; the file is corrupted")
    offsets = np.zeros(lengths.size + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    return offsets


def _locality_order(state: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
    """Reorder a postings state's slots lexicographically by path content.

    The in-memory store keeps slots in folded-*key* order (fast probes), but
    64-bit hashes are a random shuffle of the paths, which costs deflate
    dearly — paths sharing prefixes end up far apart.  The on-disk format
    does not constrain slot order (loading rebuilds the probe tables from
    scratch), so saving reorders slots so that prefix-sharing paths are
    adjacent again; at n=10k this shrinks the compressed container by ~40%.
    Implemented as one ``lexsort`` over a depth-padded item matrix — no
    per-slot Python work.
    """
    path_offsets = state["path_offsets"]
    path_items = state["path_items"]
    num_slots = path_offsets.size - 1
    lengths = np.diff(path_offsets)
    max_depth = int(lengths.max()) if num_slots else 0
    if num_slots <= 1 or max_depth == 0:
        return state
    padded = np.full((num_slots, max_depth), -1, dtype=np.int64)
    for level in range(max_depth):
        rows = np.flatnonzero(lengths > level)
        padded[rows, level] = path_items[path_offsets[rows] + level]
    order = np.lexsort(tuple(padded[:, column] for column in range(max_depth - 1, -1, -1)))

    posting_offsets = state["posting_offsets"]
    posting_ids = state["posting_ids"]
    new_path_offsets = np.zeros(num_slots + 1, dtype=np.int64)
    np.cumsum(lengths[order], out=new_path_offsets[1:])
    posting_lengths = np.diff(posting_offsets)
    new_posting_offsets = np.zeros(num_slots + 1, dtype=np.int64)
    np.cumsum(posting_lengths[order], out=new_posting_offsets[1:])
    return {
        "path_items": _segment_gather(path_items, path_offsets[order], lengths[order]),
        "path_offsets": new_path_offsets,
        "posting_ids": _segment_gather(
            posting_ids, posting_offsets[order], posting_lengths[order]
        ),
        "posting_offsets": new_posting_offsets,
    }


def _vectors_csr(vectors) -> tuple[np.ndarray, np.ndarray]:
    """The stored vectors as (flat sorted items, per-vector lengths)."""
    lengths = np.fromiter(
        (len(vector) for vector in vectors), dtype=np.int64, count=len(vectors)
    )
    items = np.fromiter(
        (item for vector in vectors for item in sorted(vector)),
        dtype=np.int64,
        count=int(lengths.sum()),
    )
    return items, lengths


def save_index(
    index: AnyIndex, path: str | Path, config: PersistenceConfig | None = None
) -> None:
    """Serialise a built index to a binary (format v2) file.

    Parameters
    ----------
    index:
        A built :class:`SkewAdaptiveIndex`, :class:`CorrelatedIndex` or
        :class:`~repro.baselines.chosen_path.ChosenPathIndex`.
    path:
        Destination file path (overwritten if it exists).
    config:
        Optional :class:`~repro.core.config.PersistenceConfig` (compression
        on by default).
    """
    if not isinstance(index, (SkewAdaptiveIndex, CorrelatedIndex, ChosenPathIndex)):
        raise TypeError(f"cannot serialise index of type {type(index).__name__}")
    persistence = config if config is not None else PersistenceConfig()
    engine = _require_engine(index)

    meta = {
        "format_version": FORMAT_VERSION,
        "config": _config_payload(index),
        "num_vectors": len(engine.vectors),
        "num_vectors_hint": engine.num_vectors_hint,
        "repetitions": engine.repetitions,
        "build_stats": engine.build_stats.to_dict(),
    }
    arrays: dict[str, np.ndarray] = {
        "meta": np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8),
    }
    if not isinstance(index, ChosenPathIndex):
        arrays["probabilities"] = np.asarray(
            index.distribution.probabilities, dtype=np.float64
        )
    vector_items, vector_lengths = _vectors_csr(engine.vectors)
    arrays["vector_items"] = _compact_ints(vector_items)
    arrays["vector_lengths"] = _compact_ints(vector_lengths)
    arrays["removed"] = _compact_ints(np.asarray(sorted(engine.removed_ids), dtype=np.int64))
    for repetition, inverted in enumerate(engine.filter_indexes):
        state = _locality_order(inverted.to_state())
        prefix = f"rep{repetition:04d}_"
        arrays[prefix + "path_items"] = _compact_ints(state["path_items"])
        arrays[prefix + "path_lengths"] = _lengths_from_offsets(state["path_offsets"])
        arrays[prefix + "posting_ids"] = _compact_ints(state["posting_ids"])
        arrays[prefix + "posting_lengths"] = _lengths_from_offsets(state["posting_offsets"])

    writer = np.savez_compressed if persistence.compress else np.savez
    # Write through an open handle so numpy cannot append an ``.npz`` suffix
    # behind the caller's back — the file lands exactly at ``path``.
    with open(path, "wb") as handle:
        writer(handle, **arrays)


# --------------------------------------------------------------------- #
# Load (v2 fast path + legacy v1)
# --------------------------------------------------------------------- #


def _restore_engine(
    index: AnyIndex,
    num_vectors_hint: int,
    vectors,
    removed,
    build_stats: BuildStats,
    filter_indexes,
) -> AnyIndex:
    engine = index._create_engine(max(num_vectors_hint, 1))  # noqa: SLF001
    # restore_state rejects a repetition count that disagrees with the
    # engine the saved configuration reconstructs.
    engine.restore_state(vectors, removed, build_stats, filter_indexes)
    index._engine = engine  # noqa: SLF001
    return index


def _load_v2(path: Path, persistence: PersistenceConfig) -> AnyIndex:
    try:
        return _load_v2_container(path, persistence)
    except (zipfile.BadZipFile, zlib.error, EOFError) as error:
        # A file can carry the zip magic yet be truncated or corrupt; keep
        # the documented ValueError contract for every malformed input.
        raise ValueError(f"{path} is not a valid index file: {error}") from error


def _load_v2_container(path: Path, persistence: PersistenceConfig) -> AnyIndex:
    with np.load(path, allow_pickle=False) as container:
        try:
            meta = json.loads(bytes(container["meta"]).decode("utf-8"))
        except (KeyError, ValueError) as error:
            raise ValueError(
                f"{path} is not a valid index file: missing or corrupt metadata"
            ) from error
        if not isinstance(meta, dict):
            raise ValueError(f"{path} is not a valid index file: metadata is not an object")
        version = meta.get("format_version")
        if version != FORMAT_VERSION:
            raise ValueError(
                f"unsupported index file format version {version!r}; "
                f"expected {FORMAT_VERSION}"
            )
        missing_meta = [
            key
            for key in ("config", "build_stats", "num_vectors", "num_vectors_hint", "repetitions")
            if key not in meta
        ]
        missing_arrays = [
            name
            for name in ("vector_items", "vector_lengths", "removed")
            if name not in container
        ]
        if missing_meta or missing_arrays:
            raise ValueError(
                f"{path} is not a valid index file: missing "
                f"{missing_meta + missing_arrays}"
            )
        probabilities = (
            np.asarray(container["probabilities"]) if "probabilities" in container else None
        )
        index = _construct_index(meta["config"], probabilities)
        build_stats = BuildStats.from_dict(meta["build_stats"], strict=True)

        vector_items = container["vector_items"].tolist()
        vector_offsets = _offsets_from_lengths(container["vector_lengths"]).tolist()
        if vector_offsets[-1] != len(vector_items):
            raise ValueError(f"{path} has a malformed stored-vector layout")
        vectors = [
            frozenset(vector_items[start:end])
            for start, end in zip(vector_offsets, vector_offsets[1:])
        ]
        num_vectors = int(meta["num_vectors"])
        if len(vectors) != num_vectors:
            raise ValueError(
                f"{path} declares {num_vectors} vectors but stores {len(vectors)}"
            )
        removed = container["removed"].tolist()

        config_payload = meta["config"]
        if config_payload["kind"] == "chosen_path":
            dimension = int(config_payload["dimension"])
        else:
            assert probabilities is not None
            dimension = int(probabilities.size)

        repetitions = int(meta["repetitions"])
        filter_indexes = []
        for repetition in range(repetitions):
            prefix = f"rep{repetition:04d}_"
            missing = [
                name
                for name in _DISK_POSTINGS_NAMES
                if prefix + name not in container
            ]
            if missing:
                raise ValueError(
                    f"{path} is missing arrays for repetition {repetition}: {missing}"
                )
            state = {
                "path_items": container[prefix + "path_items"],
                "path_offsets": _offsets_from_lengths(container[prefix + "path_lengths"]),
                "posting_ids": container[prefix + "posting_ids"],
                "posting_offsets": _offsets_from_lengths(
                    container[prefix + "posting_lengths"]
                ),
            }
            if persistence.validate_postings:
                ids = state["posting_ids"]
                if ids.size and int(ids.max()) >= num_vectors:
                    raise ValueError(
                        f"{path} repetition {repetition} references vector ids beyond "
                        f"the {num_vectors} stored vectors; the file is corrupted"
                    )
                items = state["path_items"]
                if items.size and int(items.max()) >= dimension:
                    raise ValueError(
                        f"{path} repetition {repetition} references items beyond the "
                        f"universe of size {dimension}; the file is corrupted"
                    )
            filter_indexes.append(InvertedFilterIndex.from_state(state))

    return _restore_engine(
        index,
        int(meta["num_vectors_hint"]),
        vectors,
        removed,
        build_stats,
        filter_indexes,
    )


def _load_v1(path: Path) -> AnyIndex:
    payload = json.loads(path.read_text(encoding="utf-8"))
    version = payload.get("format_version")
    if version != LEGACY_JSON_VERSION:
        raise ValueError(
            f"unsupported index file format version {version!r}; expected "
            f"{FORMAT_VERSION} (or legacy {LEGACY_JSON_VERSION}, convertible with "
            "'repro convert')"
        )
    config_payload = payload["config"]
    probabilities = np.asarray(payload["probabilities"], dtype=np.float64)
    index = _construct_index(config_payload, probabilities)

    engine_payload = payload["engine"]
    vectors = [
        frozenset(int(item) for item in members) for members in engine_payload["vectors"]
    ]
    removed = [int(v) for v in engine_payload["removed"]]
    build_stats = BuildStats.from_dict(engine_payload["build_stats"], strict=True)

    filter_indexes = []
    for repetition_postings in engine_payload["postings"]:
        inverted = InvertedFilterIndex()
        for stored_path, vector_ids in repetition_postings:
            inverted.add_postings(
                tuple(int(item) for item in stored_path), [int(v) for v in vector_ids]
            )
        inverted.compact()
        filter_indexes.append(inverted)

    return _restore_engine(
        index,
        len(vectors),
        vectors,
        removed,
        build_stats,
        filter_indexes,
    )


def load_index(
    path: str | Path, config: PersistenceConfig | None = None
) -> AnyIndex:
    """Load an index previously written by :func:`save_index`.

    The returned index answers single and batched queries identically to the
    saved one: the engine (hash functions, thresholds, stopping rule) is
    reconstructed deterministically from the saved configuration and the
    postings arrays are adopted directly — nothing is rebuilt.

    Both the current binary format (v2) and the legacy v1 JSON format are
    accepted; anything else raises :class:`ValueError` with the offending
    version.
    """
    path = Path(path)
    persistence = config if config is not None else PersistenceConfig()
    with open(path, "rb") as handle:
        head = handle.read(64)
    if head.startswith(_ZIP_MAGIC):
        return _load_v2(path, persistence)
    if head.lstrip().startswith(b"{"):
        return _load_v1(path)
    raise ValueError(
        f"{path} is not a recognised index file (expected a format v{FORMAT_VERSION} "
        f"binary container or a legacy v{LEGACY_JSON_VERSION} JSON document)"
    )


def convert_index_file(
    source: str | Path, destination: str | Path, config: PersistenceConfig | None = None
) -> AnyIndex:
    """Convert a saved index (any readable version) to the current format.

    Loads ``source`` — typically a legacy v1 JSON file — and rewrites it at
    ``destination`` as a format v2 binary container.  Returns the loaded
    index so callers can keep using it.
    """
    index = load_index(source, config=config)
    save_index(index, destination, config=config)
    return index


# --------------------------------------------------------------------- #
# Legacy writer (benchmarks and migration tests only)
# --------------------------------------------------------------------- #


def _save_legacy_v1(index: SkewAdaptiveIndex | CorrelatedIndex, path: str | Path) -> None:
    """Write the legacy v1 JSON format (kept for benchmarks and tests).

    v1 never supported the Chosen Path baseline and stored only four
    ``BuildStats`` fields; this writer reproduces that historical layout so
    the migration path (:func:`convert_index_file`, the serialization
    benchmark) can be exercised against real v1 files.
    """
    if not isinstance(index, (SkewAdaptiveIndex, CorrelatedIndex)):
        raise TypeError(f"format v1 cannot store an index of type {type(index).__name__}")
    engine = _require_engine(index)
    postings_per_repetition = []
    for inverted in engine.filter_indexes:
        state = inverted.to_state()
        offsets = state["path_offsets"].tolist()
        items = state["path_items"].tolist()
        posting_offsets = state["posting_offsets"].tolist()
        posting_ids = state["posting_ids"].tolist()
        postings_per_repetition.append(
            [
                [items[p_start:p_end], posting_ids[v_start:v_end]]
                for p_start, p_end, v_start, v_end in zip(
                    offsets, offsets[1:], posting_offsets, posting_offsets[1:]
                )
            ]
        )
    stats = engine.build_stats
    payload = {
        "format_version": LEGACY_JSON_VERSION,
        "config": _config_payload(index),
        "probabilities": index.distribution.probabilities.tolist(),
        "engine": {
            "vectors": [sorted(vector) for vector in engine.vectors],
            "removed": sorted(engine.removed_ids),
            "postings": postings_per_repetition,
            "build_stats": {
                "num_vectors": stats.num_vectors,
                "total_filters": stats.total_filters,
                "truncated_vectors": stats.truncated_vectors,
                "repetitions": stats.repetitions,
            },
        },
    }
    Path(path).write_text(json.dumps(payload), encoding="utf-8")

"""Recursive path (filter) generation — the heart of the data structure.

Section 3 of the paper defines the mapping from a vector ``x`` to its set of
filters ``F(x)``:

* start from the empty path;
* a path ``v`` of length ``j`` whose item-probability product has dropped to
  ``∏_{i ∈ v} p_i ≤ 1/n`` stops recursing and becomes a filter of ``x``;
* otherwise every set bit ``i`` of ``x`` not already on the path is appended
  with probability ``s(x, j, i)``, decided by the shared hash
  ``h_{j+1}(v ∘ i) < s(x, j, i)``.

The construction guarantees that a path chosen by both ``x`` and ``q`` is the
same object (same item sequence), because the hash value of an extension
depends only on the path content, the item and the level — never on the
vector doing the extending.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.thresholds import BoundThreshold
from repro.hashing.pairwise import PathHasher

Path = tuple[int, ...]


def default_max_depth(num_vectors: int, max_probability: float) -> int:
    """Depth at which the product stopping rule must have fired.

    A path of length ``L`` consisting of items with probability at most
    ``p_max`` has product at most ``p_max^L``, so the stopping rule
    ``∏ p ≤ 1/n`` fires by ``L = ceil(log n / log(1/p_max))``.  Two extra
    levels are added as slack for rounding.
    """
    if num_vectors <= 1:
        return 2
    bounded = min(max(max_probability, 1e-12), 0.9999)
    return int(math.ceil(math.log(num_vectors) / math.log(1.0 / bounded))) + 2


@dataclass
class PathGenerationResult:
    """Outcome of generating the filters of one vector."""

    paths: list[Path]
    truncated: bool
    expansions: int


class PathGenerator:
    """Generates the chosen paths ``F(x)`` of a vector.

    Parameters
    ----------
    probabilities:
        Item-level probabilities ``p_i`` used by the stopping rule.
    hasher:
        The shared per-level path hasher.  Indexes and queries must use the
        *same* hasher instance (or one built from the same seed) for filters
        to collide.
    stop_product:
        A path stops recursing once the product of its item probabilities is
        at most this value (the paper uses ``1/n``).  ``None`` disables the
        product rule (then only ``max_depth`` stops recursion).
    max_depth:
        Hard cap on the path length.
    collect_at_max_depth:
        If True, paths still active when the depth cap is reached are
        returned as filters (Chosen Path baseline behaviour); if False they
        are discarded (the paper's structure, where the cap is only a safety
        net).
    max_paths:
        Optional cap on the number of finished plus active paths per vector;
        when exceeded, generation stops early and the result is flagged as
        truncated.
    probability_floor:
        Items with probability below this floor are treated as having the
        floor value in the stopping product, so a single extremely rare item
        cannot make the product underflow to zero.
    """

    def __init__(
        self,
        probabilities: np.ndarray | Sequence[float],
        hasher: PathHasher,
        stop_product: float | None,
        max_depth: int,
        collect_at_max_depth: bool = False,
        max_paths: int | None = None,
        probability_floor: float = 1e-12,
    ):
        self._probabilities = np.asarray(probabilities, dtype=np.float64)
        if self._probabilities.ndim != 1 or self._probabilities.size == 0:
            raise ValueError("probabilities must be a non-empty 1-d array")
        if stop_product is not None and stop_product <= 0.0:
            raise ValueError(f"stop_product must be positive, got {stop_product}")
        if max_depth <= 0:
            raise ValueError(f"max_depth must be positive, got {max_depth}")
        if max_paths is not None and max_paths <= 0:
            raise ValueError(f"max_paths must be positive, got {max_paths}")
        self._hasher = hasher
        self._stop_product = stop_product
        self._max_depth = int(max_depth)
        self._collect_at_max_depth = bool(collect_at_max_depth)
        self._max_paths = max_paths
        self._probability_floor = float(probability_floor)

    @property
    def max_depth(self) -> int:
        return self._max_depth

    @property
    def stop_product(self) -> float | None:
        return self._stop_product

    def generate(self, items: Sequence[int], threshold: BoundThreshold) -> PathGenerationResult:
        """Generate the filters of the vector whose set bits are ``items``.

        Parameters
        ----------
        items:
            The set-bit indices of the vector.  Order does not matter; the
            generator iterates items in sorted order for determinism.
        threshold:
            The vector-bound threshold policy supplying ``s(x, j, i)``.

        Returns
        -------
        PathGenerationResult
            The finished paths, whether generation was truncated by the
            ``max_paths`` cap, and the number of node expansions performed
            (a proxy for construction work, Lemma 6).
        """
        sorted_items = sorted(int(item) for item in items)
        if not sorted_items:
            return PathGenerationResult(paths=[], truncated=False, expansions=0)
        if sorted_items[0] < 0 or sorted_items[-1] >= self._probabilities.size:
            raise ValueError("vector contains an item outside the universe")

        item_array = np.asarray(sorted_items, dtype=np.int64)
        item_probabilities = np.maximum(
            self._probabilities[item_array], self._probability_floor
        )

        finished: list[Path] = []
        truncated = False
        expansions = 0

        # Each frontier entry: (path tuple, log-product of probabilities,
        # boolean mask of items already used).  Using log-products avoids
        # underflow for long paths of rare items.
        log_stop = math.log(self._stop_product) if self._stop_product is not None else None
        frontier: list[tuple[Path, float, np.ndarray]] = [
            ((), 0.0, np.zeros(len(sorted_items), dtype=bool))
        ]

        for level in range(self._max_depth):
            if not frontier:
                break
            next_frontier: list[tuple[Path, float, np.ndarray]] = []
            for path, log_product, used_mask in frontier:
                available = ~used_mask
                if not np.any(available):
                    continue
                expansions += 1
                candidate_positions = np.flatnonzero(available)
                candidate_items = item_array[candidate_positions]
                probabilities = threshold.sampling_probabilities(level, candidate_items)
                hash_values = self._hasher.extension_values(path, candidate_items, level)
                chosen = hash_values < probabilities
                for position, item, take in zip(
                    candidate_positions, candidate_items, chosen
                ):
                    if not take:
                        continue
                    new_path = path + (int(item),)
                    new_log_product = log_product + math.log(item_probabilities[position])
                    if log_stop is not None and new_log_product <= log_stop:
                        finished.append(new_path)
                    else:
                        new_mask = used_mask.copy()
                        new_mask[position] = True
                        next_frontier.append((new_path, new_log_product, new_mask))
                    if (
                        self._max_paths is not None
                        and len(finished) + len(next_frontier) >= self._max_paths
                    ):
                        truncated = True
                        break
                if truncated:
                    break
            frontier = next_frontier
            if truncated:
                break

        if self._collect_at_max_depth and not truncated:
            finished.extend(path for path, _log_product, _mask in frontier)
        elif self._collect_at_max_depth and truncated:
            finished.extend(path for path, _log_product, _mask in frontier)

        return PathGenerationResult(paths=finished, truncated=truncated, expansions=expansions)

"""Recursive path (filter) generation — the heart of the data structure.

Section 3 of the paper defines the mapping from a vector ``x`` to its set of
filters ``F(x)``:

* start from the empty path;
* a path ``v`` of length ``j`` whose item-probability product has dropped to
  ``∏_{i ∈ v} p_i ≤ 1/n`` stops recursing and becomes a filter of ``x``;
* otherwise every set bit ``i`` of ``x`` not already on the path is appended
  with probability ``s(x, j, i)``, decided by the shared hash
  ``h_{j+1}(v ∘ i) < s(x, j, i)``.

The construction guarantees that a path chosen by both ``x`` and ``q`` is the
same object (same item sequence), because the hash value of an extension
depends only on the path content, the item and the level — never on the
vector doing the extending.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.kernels import KEYS_FOLDED, PATHS_EXTENDED, get_impl, new_counters
from repro.core.thresholds import BoundThreshold
from repro.hashing.pairwise import EMPTY_PATH_KEY, PathHasher, extend_key, fold_path

Path = tuple[int, ...]


def paths_to_csr(paths: Sequence[Sequence[int]]) -> tuple[np.ndarray, np.ndarray]:
    """Flatten a list of paths into CSR form ``(items, offsets)``.

    Path ``k`` occupies ``items[offsets[k]:offsets[k + 1]]``.  This is the
    bridge between the tuple-of-ints world of the generators and the
    array-native probe/merge pipeline: the inverted index consumes the CSR
    view for vectorised path verification and bulk ingestion.
    """
    lengths = np.fromiter((len(path) for path in paths), dtype=np.int64, count=len(paths))
    offsets = np.zeros(len(paths) + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    items = np.fromiter(
        (item for path in paths for item in path),
        dtype=np.int64,
        count=int(offsets[-1]),
    )
    return items, offsets


#: Batches of at most this many vectors take the tuple-frontier path in
#: :meth:`PathGenerator.generate_batch` instead of the CSR kernel pipeline.
#: The pipeline's fixed per-level array-operation cost dominates tiny
#: frontiers (the single-query surfaces generate one vector per repetition),
#: while both paths produce bit-identical results and counter totals.
_SMALL_BATCH_MAX = 8


class _SmallBatchState:
    """Per-vector bookkeeping of the small-batch tuple-frontier path.

    Frontier entries are ``(path, prefix_key, log_product, positions)``
    tuples, where ``positions`` lists the vector's (sorted) item positions
    still available for extension — a child inherits its parent's list minus
    the item just consumed.
    """

    __slots__ = (
        "items",
        "log_probs",
        "bound",
        "frontier",
        "finished_paths",
        "finished_keys",
        "truncated",
        "expansions",
        "active",
    )

    def __init__(
        self,
        items: list[int],
        log_probs: list[float],
        bound: BoundThreshold,
        root_key: int,
    ):
        self.items = items
        self.log_probs = log_probs
        self.bound = bound
        self.frontier: list[tuple[Path, int, float, list[int]]] = (
            [((), root_key, 0.0, list(range(len(items))))] if items else []
        )
        self.finished_paths: list[Path] = []
        self.finished_keys: list[int] = []
        self.truncated = False
        self.expansions = 0
        self.active = bool(items)


def default_max_depth(num_vectors: int, max_probability: float) -> int:
    """Depth at which the product stopping rule must have fired.

    A path of length ``L`` consisting of items with probability at most
    ``p_max`` has product at most ``p_max^L``, so the stopping rule
    ``∏ p ≤ 1/n`` fires by ``L = ceil(log n / log(1/p_max))``.  Two extra
    levels are added as slack for rounding.
    """
    if num_vectors <= 1:
        return 2
    bounded = min(max(max_probability, 1e-12), 0.9999)
    return int(math.ceil(math.log(num_vectors) / math.log(1.0 / bounded))) + 2


@dataclass
class PathGenerationResult:
    """Outcome of generating the filters of one vector.

    ``keys`` carries the folded 64-bit key (:func:`~repro.hashing.pairwise.
    fold_path`) of each path, parallel to ``paths``.  The generators track
    keys incrementally anyway (they are the hash inputs), so exposing them
    lets the inverted index file and probe postings without re-folding every
    path in Python.  The field is required and validated against ``paths``
    because downstream consumers zip the two lists — a silent length
    mismatch would truncate candidate enumeration to nothing.
    """

    paths: list[Path]
    truncated: bool
    expansions: int
    keys: list[int]

    def __post_init__(self) -> None:
        if len(self.keys) != len(self.paths):
            raise ValueError(
                f"got {len(self.keys)} keys for {len(self.paths)} paths; "
                "need exactly one key per path"
            )


class PathGenerator:
    """Generates the chosen paths ``F(x)`` of a vector.

    Parameters
    ----------
    probabilities:
        Item-level probabilities ``p_i`` used by the stopping rule.
    hasher:
        The shared per-level path hasher.  Indexes and queries must use the
        *same* hasher instance (or one built from the same seed) for filters
        to collide.
    stop_product:
        A path stops recursing once the product of its item probabilities is
        at most this value (the paper uses ``1/n``).  ``None`` disables the
        product rule (then only ``max_depth`` stops recursion).
    max_depth:
        Hard cap on the path length.
    collect_at_max_depth:
        If True, paths still active when the depth cap is reached are
        returned as filters (Chosen Path baseline behaviour); if False they
        are discarded (the paper's structure, where the cap is only a safety
        net).
    max_paths:
        Optional cap on the number of finished plus active paths per vector;
        when exceeded, generation stops early and the result is flagged as
        truncated.
    probability_floor:
        Items with probability below this floor are treated as having the
        floor value in the stopping product, so a single extremely rare item
        cannot make the product underflow to zero.
    """

    def __init__(
        self,
        probabilities: np.ndarray | Sequence[float],
        hasher: PathHasher,
        stop_product: float | None,
        max_depth: int,
        collect_at_max_depth: bool = False,
        max_paths: int | None = None,
        probability_floor: float = 1e-12,
    ):
        self._probabilities = np.asarray(probabilities, dtype=np.float64)
        if self._probabilities.ndim != 1 or self._probabilities.size == 0:
            raise ValueError("probabilities must be a non-empty 1-d array")
        if stop_product is not None and stop_product <= 0.0:
            raise ValueError(f"stop_product must be positive, got {stop_product}")
        if max_depth <= 0:
            raise ValueError(f"max_depth must be positive, got {max_depth}")
        if max_paths is not None and max_paths <= 0:
            raise ValueError(f"max_paths must be positive, got {max_paths}")
        self._hasher = hasher
        self._stop_product = stop_product
        self._max_depth = int(max_depth)
        self._collect_at_max_depth = bool(collect_at_max_depth)
        self._max_paths = max_paths
        self._probability_floor = float(probability_floor)

    @property
    def max_depth(self) -> int:
        return self._max_depth

    @property
    def stop_product(self) -> float | None:
        return self._stop_product

    def ensure_hash_levels(self) -> None:
        """Pre-instantiate every hash level this generator can reach.

        The per-level hash functions are created lazily; calling this before
        fanning generation out over worker threads guarantees the shared
        family is only ever read concurrently.
        """
        self._hasher.ensure_levels(self._max_depth)

    def generate(
        self,
        items: Sequence[int],
        threshold: BoundThreshold,
        counters: np.ndarray | None = None,
    ) -> PathGenerationResult:
        """Generate the filters of the vector whose set bits are ``items``.

        This is the serial reference implementation pinned against the
        kernel-backed :meth:`generate_batch` by the equivalence property
        suites; it intentionally stays a plain tuple-walking loop.

        Parameters
        ----------
        items:
            The set-bit indices of the vector.  Order does not matter; the
            generator iterates items in sorted order for determinism.
        threshold:
            The vector-bound threshold policy supplying ``s(x, j, i)``.
        counters:
            Optional kernel counter vector (:func:`repro.core.kernels.
            new_counters`); when given, ``keys_folded`` and
            ``paths_extended`` are accumulated into it.

        Returns
        -------
        PathGenerationResult
            The finished paths, whether generation was truncated by the
            ``max_paths`` cap, and the number of node expansions performed
            (a proxy for construction work, Lemma 6).
        """
        sorted_items = sorted(int(item) for item in items)
        if not sorted_items:
            return PathGenerationResult(paths=[], truncated=False, expansions=0, keys=[])
        if sorted_items[0] < 0 or sorted_items[-1] >= self._probabilities.size:
            raise ValueError("vector contains an item outside the universe")

        item_array = np.asarray(sorted_items, dtype=np.int64)
        item_probabilities = np.maximum(
            self._probabilities[item_array], self._probability_floor
        )

        finished_paths: list[Path] = []
        finished_keys: list[int] = []
        truncated = False
        expansions = 0
        keys_folded = 0
        paths_extended = 0

        # Each frontier entry: (path tuple, folded path key, log-product of
        # probabilities, boolean mask of items already used).  Carrying the
        # key forward avoids re-folding the prefix at every expansion, and
        # log-products avoid underflow for long paths of rare items.
        log_stop = math.log(self._stop_product) if self._stop_product is not None else None
        frontier: list[tuple[Path, int, float, np.ndarray]] = [
            ((), fold_path(()), 0.0, np.zeros(len(sorted_items), dtype=bool))
        ]

        for level in range(self._max_depth):
            if not frontier:
                break
            next_frontier: list[tuple[Path, int, float, np.ndarray]] = []
            for path, path_key, log_product, used_mask in frontier:
                available = ~used_mask
                if not np.any(available):
                    continue
                expansions += 1
                candidate_positions = np.flatnonzero(available)
                candidate_items = item_array[candidate_positions]
                probabilities = threshold.sampling_probabilities(level, candidate_items)
                hash_values = self._hasher.extension_values_from_key(
                    path_key, candidate_items, level
                )
                chosen = hash_values < probabilities
                keys_folded += int(candidate_items.size)
                for position, item, take in zip(
                    candidate_positions, candidate_items, chosen
                ):
                    if not take:
                        continue
                    paths_extended += 1
                    new_path = path + (int(item),)
                    new_key = extend_key(path_key, int(item))
                    new_log_product = log_product + math.log(item_probabilities[position])
                    if log_stop is not None and new_log_product <= log_stop:
                        finished_paths.append(new_path)
                        finished_keys.append(new_key)
                    else:
                        new_mask = used_mask.copy()
                        new_mask[position] = True
                        next_frontier.append((new_path, new_key, new_log_product, new_mask))
                    if (
                        self._max_paths is not None
                        and len(finished_paths) + len(next_frontier) >= self._max_paths
                    ):
                        truncated = True
                        break
                if truncated:
                    break
            frontier = next_frontier
            if truncated:
                break

        if self._collect_at_max_depth:
            for path, path_key, _log_product, _mask in frontier:
                finished_paths.append(path)
                finished_keys.append(path_key)

        if counters is not None:
            counters[KEYS_FOLDED] += keys_folded
            counters[PATHS_EXTENDED] += paths_extended

        return PathGenerationResult(
            paths=finished_paths,
            truncated=truncated,
            expansions=expansions,
            keys=finished_keys,
        )

    def generate_batch(
        self,
        items_per_vector: Sequence[Sequence[int]],
        thresholds: Sequence[BoundThreshold],
        counters: np.ndarray | None = None,
    ) -> list[PathGenerationResult]:
        """Generate the filters of many vectors in one level-synchronous pass.

        Semantically equivalent to ``[generate(items, bound) for items, bound
        in zip(...)]`` — every vector's paths come back in the same order,
        with the same truncation behaviour — but the whole batch frontier is
        carried as flat CSR arrays (extended keys, available-item bitmask
        words, log products) and each level is extended by a single
        ``extend_level`` kernel call (:func:`repro.core.kernels.get_impl`),
        so the per-candidate work runs in compiled or vectorised code instead
        of a Python loop per frontier tuple.  Paths only materialise as
        tuples at the very end, by walking a parent-pointer arena.

        ``counters`` (optional, from :func:`repro.core.kernels.new_counters`)
        accumulates the kernel's per-stage work counts.
        """
        if len(items_per_vector) != len(thresholds):
            raise ValueError("need exactly one threshold per vector")
        num_vectors = len(items_per_vector)
        if num_vectors == 0:
            return []
        if counters is None:
            counters = new_counters()
        if num_vectors <= _SMALL_BATCH_MAX:
            return self._generate_batch_small(items_per_vector, thresholds, counters)
        impl = get_impl()

        # --- per-vector universes: sorted items + clamped log-probabilities ---
        bounds = list(thresholds)
        vec_item_arrays: list[np.ndarray] = []
        item_offsets = np.zeros(num_vectors + 1, dtype=np.int64)
        max_items = 0
        for index, members in enumerate(items_per_vector):
            sorted_items = sorted(int(item) for item in members)
            if sorted_items and (
                sorted_items[0] < 0 or sorted_items[-1] >= self._probabilities.size
            ):
                raise ValueError("vector contains an item outside the universe")
            item_array = np.asarray(sorted_items, dtype=np.int64)
            vec_item_arrays.append(item_array)
            item_offsets[index + 1] = item_offsets[index] + item_array.size
            max_items = max(max_items, item_array.size)
        items_concat = np.concatenate(vec_item_arrays) if max_items else np.zeros(0, dtype=np.int64)
        if items_concat.size:
            clamped = np.maximum(self._probabilities[items_concat], self._probability_floor)
            # math.log per element keeps the values bit-identical to the
            # serial generator's per-item math.log calls.
            logs_concat = np.array(
                [math.log(value) for value in clamped.tolist()], dtype=np.float64
            )
        else:
            logs_concat = np.zeros(0, dtype=np.float64)

        # --- root frontier: one entry per non-empty vector ---------------
        # Frontier entry fields, index-parallel and grouped by vector
        # ascending: owning vector, extended path key, log product, arena
        # node of the last item (-1 for the root), and the available-item
        # bitmask (bit p set = vector item position p still usable).
        f_vec = np.flatnonzero(np.diff(item_offsets)).astype(np.int64)
        word_count = max(1, (max_items + 63) >> 6)
        f_keys = np.full(f_vec.size, np.uint64(EMPTY_PATH_KEY), dtype=np.uint64)
        f_logs = np.zeros(f_vec.size, dtype=np.float64)
        f_nodes = np.full(f_vec.size, -1, dtype=np.int64)
        f_masks = np.zeros((f_vec.size, word_count), dtype=np.uint64)
        for row, vector in enumerate(f_vec.tolist()):
            size = int(item_offsets[vector + 1] - item_offsets[vector])
            full_words, remainder = divmod(size, 64)
            f_masks[row, :full_words] = np.uint64(0xFFFFFFFFFFFFFFFF)
            if remainder:
                f_masks[row, full_words] = np.uint64((1 << remainder) - 1)

        # Parent-pointer arena of every chosen extension; finished paths and
        # surviving frontier entries are materialised from it at the end.
        arena_items: list[np.ndarray] = []
        arena_parents: list[np.ndarray] = []
        arena_size = 0
        finished_vec_parts: list[np.ndarray] = []
        finished_node_parts: list[np.ndarray] = []
        finished_key_parts: list[np.ndarray] = []
        finished_counts = np.zeros(num_vectors, dtype=np.int64)
        expansions = np.zeros(num_vectors, dtype=np.int64)
        truncated = np.zeros(num_vectors, dtype=np.bool_)
        #: Final frontier of vectors stopped by ``max_paths``: children chosen
        #: up to the cutoff, exactly what the serial generator leaves behind.
        parked: dict[int, tuple[np.ndarray, np.ndarray]] = {}

        use_stop = self._stop_product is not None
        log_stop = math.log(self._stop_product) if self._stop_product is not None else 0.0
        max_paths = -1 if self._max_paths is None else int(self._max_paths)

        for level in range(self._max_depth):
            if f_vec.size == 0:
                break
            # Little-endian bit enumeration: word w bit b = item position
            # w * 64 + b.  np.nonzero walks C-order, so candidates come out
            # entry-major with positions ascending — the serial order.
            available = np.unpackbits(f_masks.view(np.uint8), axis=1, bitorder="little")
            entry_index, position = np.nonzero(available)
            if entry_index.size == 0:
                # Serial semantics: entries with no remaining items are
                # dropped, never collected — empty the frontier before
                # leaving the level loop.
                f_vec = f_vec[:0]
                f_keys = f_keys[:0]
                f_logs = f_logs[:0]
                f_nodes = f_nodes[:0]
                f_masks = f_masks[:0]
                break
            counts = np.bincount(entry_index, minlength=f_vec.size)
            used_entries = np.flatnonzero(counts)
            entry_vector = f_vec[used_entries]
            entry_offsets = np.zeros(used_entries.size + 1, dtype=np.int64)
            np.cumsum(counts[used_entries], out=entry_offsets[1:])

            cand_vec = f_vec[entry_index]
            gather = item_offsets[cand_vec] + position
            cand_items = items_concat[gather]

            # Thresholds are elementwise-pure, so evaluating each vector's
            # item universe once per level and gathering per candidate is
            # bit-identical to per-entry evaluation.
            level_probs = np.empty(items_concat.size, dtype=np.float64)
            for vector in np.unique(cand_vec).tolist():
                segment = slice(int(item_offsets[vector]), int(item_offsets[vector + 1]))
                level_probs[segment] = bounds[vector].sampling_probabilities(
                    level, vec_item_arrays[vector]
                )

            coeff_a, coeff_b = self._hasher.level_coefficients(level)
            new_keys, status, new_logs, level_expansions, level_truncated = impl.extend_level(
                f_keys[entry_index],
                cand_items,
                level_probs[gather],
                f_logs[entry_index],
                logs_concat[gather],
                entry_offsets,
                entry_vector,
                num_vectors,
                finished_counts,
                log_stop,
                use_stop,
                max_paths,
                coeff_a,
                coeff_b,
                counters,
            )
            expansions += level_expansions

            kept = np.flatnonzero(status)
            kept_status = status[kept]
            kept_vec = cand_vec[kept]
            kept_keys = new_keys[kept]
            node_ids = arena_size + np.arange(kept.size, dtype=np.int64)
            arena_items.append(cand_items[kept])
            arena_parents.append(f_nodes[entry_index[kept]])
            arena_size += int(kept.size)

            finished_sel = kept_status == 2
            if finished_sel.any():
                finished_vectors = kept_vec[finished_sel]
                finished_vec_parts.append(finished_vectors)
                finished_node_parts.append(node_ids[finished_sel])
                finished_key_parts.append(kept_keys[finished_sel])
                finished_counts += np.bincount(finished_vectors, minlength=num_vectors)

            child_sel = kept_status == 1
            child_cand = kept[child_sel]
            child_vec = kept_vec[child_sel]
            child_keys = kept_keys[child_sel]
            child_nodes = node_ids[child_sel]
            child_logs = new_logs[child_cand]
            child_positions = position[child_cand]
            child_masks = f_masks[entry_index[child_cand]]
            if child_positions.size:
                rows = np.arange(child_positions.size, dtype=np.int64)
                child_masks[rows, child_positions >> 6] &= ~(
                    np.uint64(1) << (child_positions & 63).astype(np.uint64)
                )

            if level_truncated.any():
                truncated |= level_truncated
                parked_sel = level_truncated[child_vec]
                for vector in np.flatnonzero(level_truncated).tolist():
                    vector_children = child_vec == vector
                    parked[int(vector)] = (
                        child_nodes[vector_children],
                        child_keys[vector_children],
                    )
                live = ~parked_sel
                child_vec = child_vec[live]
                child_keys = child_keys[live]
                child_nodes = child_nodes[live]
                child_logs = child_logs[live]
                child_masks = child_masks[live]

            f_vec = child_vec
            f_keys = child_keys
            f_logs = child_logs
            f_nodes = child_nodes
            f_masks = np.ascontiguousarray(child_masks)

        # --- materialisation: walk parent pointers back to path tuples ----
        if arena_size:
            all_node_items = np.concatenate(arena_items)
            all_node_parents = np.concatenate(arena_parents)
        else:
            all_node_items = np.zeros(0, dtype=np.int64)
            all_node_parents = np.zeros(0, dtype=np.int64)

        def materialise(node: int) -> Path:
            reversed_items: list[int] = []
            while node >= 0:
                reversed_items.append(int(all_node_items[node]))
                node = int(all_node_parents[node])
            reversed_items.reverse()
            return tuple(reversed_items)

        if finished_vec_parts:
            finished_vec = np.concatenate(finished_vec_parts)
            finished_nodes = np.concatenate(finished_node_parts)
            finished_keys = np.concatenate(finished_key_parts)
        else:
            finished_vec = np.zeros(0, dtype=np.int64)
            finished_nodes = np.zeros(0, dtype=np.int64)
            finished_keys = np.zeros(0, dtype=np.uint64)
        # Finished records accumulate level-major but grouped by vector
        # within each level; a stable sort by vector therefore recovers each
        # vector's serial generation order.
        finished_order = np.argsort(finished_vec, kind="stable")
        finished_vec = finished_vec[finished_order]
        finished_nodes = finished_nodes[finished_order]
        finished_keys = finished_keys[finished_order]
        vector_range = np.arange(num_vectors, dtype=np.int64)
        finished_starts = np.searchsorted(finished_vec, vector_range, side="left")
        finished_ends = np.searchsorted(finished_vec, vector_range, side="right")
        frontier_starts = np.searchsorted(f_vec, vector_range, side="left")
        frontier_ends = np.searchsorted(f_vec, vector_range, side="right")

        results: list[PathGenerationResult] = []
        for vector in range(num_vectors):
            span = slice(int(finished_starts[vector]), int(finished_ends[vector]))
            paths = [materialise(node) for node in finished_nodes[span].tolist()]
            keys = [int(key) for key in finished_keys[span].tolist()]
            if self._collect_at_max_depth:
                if vector in parked:
                    tail_nodes, tail_keys = parked[vector]
                else:
                    tail = slice(int(frontier_starts[vector]), int(frontier_ends[vector]))
                    tail_nodes = f_nodes[tail]
                    tail_keys = f_keys[tail]
                for node, key in zip(tail_nodes.tolist(), tail_keys.tolist()):
                    paths.append(materialise(node))
                    keys.append(int(key))
            results.append(
                PathGenerationResult(
                    paths=paths,
                    truncated=bool(truncated[vector]),
                    expansions=int(expansions[vector]),
                    keys=keys,
                )
            )
        return results

    def _generate_batch_small(
        self,
        items_per_vector: Sequence[Sequence[int]],
        thresholds: Sequence[BoundThreshold],
        counters: np.ndarray,
    ) -> list[PathGenerationResult]:
        """Tuple-frontier batch generation for very small batches.

        The CSR kernel pipeline pays a fixed number of array operations per
        level, which dominates when the whole frontier is a handful of
        entries — the single-query surfaces call ``generate_batch`` with one
        vector per repetition.  Below ``_SMALL_BATCH_MAX`` vectors this path
        carries the frontier as Python tuples instead, still hashing each
        level's candidates in one flat call, and produces bit-identical
        results and counter totals: ``keys_folded`` counts every hashed
        candidate and ``paths_extended`` every chosen extension up to the
        truncation cutoff, exactly like ``extend_level``.
        """
        log_stop = (
            math.log(self._stop_product) if self._stop_product is not None else None
        )
        root_key = fold_path(())
        states: list[_SmallBatchState] = []
        for members, bound in zip(items_per_vector, thresholds):
            sorted_items = sorted(int(item) for item in members)
            if sorted_items and (
                sorted_items[0] < 0 or sorted_items[-1] >= self._probabilities.size
            ):
                raise ValueError("vector contains an item outside the universe")
            if sorted_items:
                item_array = np.asarray(sorted_items, dtype=np.int64)
                clamped = np.maximum(
                    self._probabilities[item_array], self._probability_floor
                )
                log_probs = [math.log(value) for value in clamped.tolist()]
            else:
                log_probs = []
            states.append(_SmallBatchState(sorted_items, log_probs, bound, root_key))

        for level in range(self._max_depth):
            # -- collection: flatten every candidate extension of the level --
            work: list[tuple[_SmallBatchState, list, int]] = []
            key_parts: list[np.ndarray] = []
            item_parts: list[np.ndarray] = []
            probability_parts: list[np.ndarray] = []
            for state in states:
                if not state.active or not state.frontier:
                    continue
                entries: list = []
                flat_items: list[int] = []
                entry_keys: list[int] = []
                entry_counts: list[int] = []
                items = state.items
                for entry in state.frontier:
                    positions = entry[3]
                    if not positions:
                        continue
                    entries.append((entry, positions))
                    flat_items.extend(items[position] for position in positions)
                    entry_keys.append(entry[1])
                    entry_counts.append(len(positions))
                if not entries:
                    state.frontier = []
                    continue
                item_array = np.asarray(flat_items, dtype=np.int64)
                probability_parts.append(
                    state.bound.sampling_probabilities(level, item_array)
                )
                item_parts.append(item_array)
                key_parts.append(
                    np.repeat(np.asarray(entry_keys, dtype=np.uint64), entry_counts)
                )
                work.append((state, entries, len(flat_items)))
            if not work:
                break

            extended_keys, hash_values = self._hasher.extension_pairs_flat(
                np.concatenate(key_parts), np.concatenate(item_parts), level
            )
            chosen_flat = hash_values < np.concatenate(probability_parts)
            counters[KEYS_FOLDED] += int(chosen_flat.size)

            # -- materialisation: replay the serial order per vector --------
            query_start = 0
            for state, entries, total_candidates in work:
                offset = query_start
                query_start += total_candidates
                next_frontier: list[tuple[Path, int, float, list[int]]] = []
                for entry, positions in entries:
                    if state.truncated:
                        break
                    path, _key, log_product, _positions = entry
                    state.expansions += 1
                    for local_index, position in enumerate(positions):
                        if not chosen_flat[offset + local_index]:
                            continue
                        counters[PATHS_EXTENDED] += 1
                        new_path = path + (state.items[position],)
                        new_log_product = log_product + state.log_probs[position]
                        if log_stop is not None and new_log_product <= log_stop:
                            state.finished_paths.append(new_path)
                            state.finished_keys.append(
                                int(extended_keys[offset + local_index])
                            )
                        else:
                            next_frontier.append(
                                (
                                    new_path,
                                    int(extended_keys[offset + local_index]),
                                    new_log_product,
                                    [other for other in positions if other != position],
                                )
                            )
                        if (
                            self._max_paths is not None
                            and len(state.finished_paths) + len(next_frontier)
                            >= self._max_paths
                        ):
                            state.truncated = True
                            break
                    offset += len(positions)
                state.frontier = next_frontier
                if state.truncated:
                    state.active = False

        results: list[PathGenerationResult] = []
        for state in states:
            if self._collect_at_max_depth:
                for path, key, _log, _positions in state.frontier:
                    state.finished_paths.append(path)
                    state.finished_keys.append(key)
            results.append(
                PathGenerationResult(
                    paths=state.finished_paths,
                    truncated=state.truncated,
                    expansions=state.expansions,
                    keys=state.finished_keys,
                )
            )
        return results

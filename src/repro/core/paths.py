"""Recursive path (filter) generation — the heart of the data structure.

Section 3 of the paper defines the mapping from a vector ``x`` to its set of
filters ``F(x)``:

* start from the empty path;
* a path ``v`` of length ``j`` whose item-probability product has dropped to
  ``∏_{i ∈ v} p_i ≤ 1/n`` stops recursing and becomes a filter of ``x``;
* otherwise every set bit ``i`` of ``x`` not already on the path is appended
  with probability ``s(x, j, i)``, decided by the shared hash
  ``h_{j+1}(v ∘ i) < s(x, j, i)``.

The construction guarantees that a path chosen by both ``x`` and ``q`` is the
same object (same item sequence), because the hash value of an extension
depends only on the path content, the item and the level — never on the
vector doing the extending.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.thresholds import BoundThreshold
from repro.hashing.pairwise import PathHasher, extend_key, fold_path

Path = tuple[int, ...]


def paths_to_csr(paths: Sequence[Sequence[int]]) -> tuple[np.ndarray, np.ndarray]:
    """Flatten a list of paths into CSR form ``(items, offsets)``.

    Path ``k`` occupies ``items[offsets[k]:offsets[k + 1]]``.  This is the
    bridge between the tuple-of-ints world of the generators and the
    array-native probe/merge pipeline: the inverted index consumes the CSR
    view for vectorised path verification and bulk ingestion.
    """
    lengths = np.fromiter((len(path) for path in paths), dtype=np.int64, count=len(paths))
    offsets = np.zeros(len(paths) + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    items = np.fromiter(
        (item for path in paths for item in path),
        dtype=np.int64,
        count=int(offsets[-1]),
    )
    return items, offsets


def default_max_depth(num_vectors: int, max_probability: float) -> int:
    """Depth at which the product stopping rule must have fired.

    A path of length ``L`` consisting of items with probability at most
    ``p_max`` has product at most ``p_max^L``, so the stopping rule
    ``∏ p ≤ 1/n`` fires by ``L = ceil(log n / log(1/p_max))``.  Two extra
    levels are added as slack for rounding.
    """
    if num_vectors <= 1:
        return 2
    bounded = min(max(max_probability, 1e-12), 0.9999)
    return int(math.ceil(math.log(num_vectors) / math.log(1.0 / bounded))) + 2


@dataclass
class PathGenerationResult:
    """Outcome of generating the filters of one vector.

    ``keys`` carries the folded 64-bit key (:func:`~repro.hashing.pairwise.
    fold_path`) of each path, parallel to ``paths``.  The generators track
    keys incrementally anyway (they are the hash inputs), so exposing them
    lets the inverted index file and probe postings without re-folding every
    path in Python.  The field is required and validated against ``paths``
    because downstream consumers zip the two lists — a silent length
    mismatch would truncate candidate enumeration to nothing.
    """

    paths: list[Path]
    truncated: bool
    expansions: int
    keys: list[int]

    def __post_init__(self) -> None:
        if len(self.keys) != len(self.paths):
            raise ValueError(
                f"got {len(self.keys)} keys for {len(self.paths)} paths; "
                "need exactly one key per path"
            )


class _BatchState:
    """Per-vector bookkeeping used by :meth:`PathGenerator.generate_batch`.

    Frontier entries are ``(path, prefix_key, log_product, positions)``
    tuples, where ``positions`` lists the vector's (sorted) item positions
    still available for extension.  Carrying the positions forward — a child
    inherits its parent's list minus the item just consumed — avoids
    re-scanning a used-item bitmask at every level, which is the dominant
    Python cost of the level loop.
    """

    __slots__ = (
        "items",
        "item_array",
        "log_probs",
        "bound",
        "frontier",
        "finished_paths",
        "finished_keys",
        "truncated",
        "expansions",
        "active",
    )

    def __init__(
        self,
        items: list[int],
        item_array: np.ndarray,
        log_probs: list[float],
        bound: BoundThreshold,
        root_key: int,
    ):
        self.items = items
        self.item_array = item_array
        self.log_probs = log_probs
        self.bound = bound
        self.frontier: list[tuple[Path, int, float, list[int]]] = (
            [((), root_key, 0.0, list(range(len(items))))] if items else []
        )
        self.finished_paths: list[Path] = []
        self.finished_keys: list[int] = []
        self.truncated = False
        self.expansions = 0
        self.active = bool(items)


class PathGenerator:
    """Generates the chosen paths ``F(x)`` of a vector.

    Parameters
    ----------
    probabilities:
        Item-level probabilities ``p_i`` used by the stopping rule.
    hasher:
        The shared per-level path hasher.  Indexes and queries must use the
        *same* hasher instance (or one built from the same seed) for filters
        to collide.
    stop_product:
        A path stops recursing once the product of its item probabilities is
        at most this value (the paper uses ``1/n``).  ``None`` disables the
        product rule (then only ``max_depth`` stops recursion).
    max_depth:
        Hard cap on the path length.
    collect_at_max_depth:
        If True, paths still active when the depth cap is reached are
        returned as filters (Chosen Path baseline behaviour); if False they
        are discarded (the paper's structure, where the cap is only a safety
        net).
    max_paths:
        Optional cap on the number of finished plus active paths per vector;
        when exceeded, generation stops early and the result is flagged as
        truncated.
    probability_floor:
        Items with probability below this floor are treated as having the
        floor value in the stopping product, so a single extremely rare item
        cannot make the product underflow to zero.
    """

    def __init__(
        self,
        probabilities: np.ndarray | Sequence[float],
        hasher: PathHasher,
        stop_product: float | None,
        max_depth: int,
        collect_at_max_depth: bool = False,
        max_paths: int | None = None,
        probability_floor: float = 1e-12,
    ):
        self._probabilities = np.asarray(probabilities, dtype=np.float64)
        if self._probabilities.ndim != 1 or self._probabilities.size == 0:
            raise ValueError("probabilities must be a non-empty 1-d array")
        if stop_product is not None and stop_product <= 0.0:
            raise ValueError(f"stop_product must be positive, got {stop_product}")
        if max_depth <= 0:
            raise ValueError(f"max_depth must be positive, got {max_depth}")
        if max_paths is not None and max_paths <= 0:
            raise ValueError(f"max_paths must be positive, got {max_paths}")
        self._hasher = hasher
        self._stop_product = stop_product
        self._max_depth = int(max_depth)
        self._collect_at_max_depth = bool(collect_at_max_depth)
        self._max_paths = max_paths
        self._probability_floor = float(probability_floor)

    @property
    def max_depth(self) -> int:
        return self._max_depth

    @property
    def stop_product(self) -> float | None:
        return self._stop_product

    def ensure_hash_levels(self) -> None:
        """Pre-instantiate every hash level this generator can reach.

        The per-level hash functions are created lazily; calling this before
        fanning generation out over worker threads guarantees the shared
        family is only ever read concurrently.
        """
        self._hasher.ensure_levels(self._max_depth)

    def generate(self, items: Sequence[int], threshold: BoundThreshold) -> PathGenerationResult:
        """Generate the filters of the vector whose set bits are ``items``.

        Parameters
        ----------
        items:
            The set-bit indices of the vector.  Order does not matter; the
            generator iterates items in sorted order for determinism.
        threshold:
            The vector-bound threshold policy supplying ``s(x, j, i)``.

        Returns
        -------
        PathGenerationResult
            The finished paths, whether generation was truncated by the
            ``max_paths`` cap, and the number of node expansions performed
            (a proxy for construction work, Lemma 6).
        """
        sorted_items = sorted(int(item) for item in items)
        if not sorted_items:
            return PathGenerationResult(paths=[], truncated=False, expansions=0, keys=[])
        if sorted_items[0] < 0 or sorted_items[-1] >= self._probabilities.size:
            raise ValueError("vector contains an item outside the universe")

        item_array = np.asarray(sorted_items, dtype=np.int64)
        item_probabilities = np.maximum(
            self._probabilities[item_array], self._probability_floor
        )

        finished_paths: list[Path] = []
        finished_keys: list[int] = []
        truncated = False
        expansions = 0

        # Each frontier entry: (path tuple, folded path key, log-product of
        # probabilities, boolean mask of items already used).  Carrying the
        # key forward avoids re-folding the prefix at every expansion, and
        # log-products avoid underflow for long paths of rare items.
        log_stop = math.log(self._stop_product) if self._stop_product is not None else None
        frontier: list[tuple[Path, int, float, np.ndarray]] = [
            ((), fold_path(()), 0.0, np.zeros(len(sorted_items), dtype=bool))
        ]

        for level in range(self._max_depth):
            if not frontier:
                break
            next_frontier: list[tuple[Path, int, float, np.ndarray]] = []
            for path, path_key, log_product, used_mask in frontier:
                available = ~used_mask
                if not np.any(available):
                    continue
                expansions += 1
                candidate_positions = np.flatnonzero(available)
                candidate_items = item_array[candidate_positions]
                probabilities = threshold.sampling_probabilities(level, candidate_items)
                hash_values = self._hasher.extension_values_from_key(
                    path_key, candidate_items, level
                )
                chosen = hash_values < probabilities
                for position, item, take in zip(
                    candidate_positions, candidate_items, chosen
                ):
                    if not take:
                        continue
                    new_path = path + (int(item),)
                    new_key = extend_key(path_key, int(item))
                    new_log_product = log_product + math.log(item_probabilities[position])
                    if log_stop is not None and new_log_product <= log_stop:
                        finished_paths.append(new_path)
                        finished_keys.append(new_key)
                    else:
                        new_mask = used_mask.copy()
                        new_mask[position] = True
                        next_frontier.append((new_path, new_key, new_log_product, new_mask))
                    if (
                        self._max_paths is not None
                        and len(finished_paths) + len(next_frontier) >= self._max_paths
                    ):
                        truncated = True
                        break
                if truncated:
                    break
            frontier = next_frontier
            if truncated:
                break

        if self._collect_at_max_depth:
            for path, path_key, _log_product, _mask in frontier:
                finished_paths.append(path)
                finished_keys.append(path_key)

        return PathGenerationResult(
            paths=finished_paths,
            truncated=truncated,
            expansions=expansions,
            keys=finished_keys,
        )

    def generate_batch(
        self,
        items_per_vector: Sequence[Sequence[int]],
        thresholds: Sequence[BoundThreshold],
    ) -> list[PathGenerationResult]:
        """Generate the filters of many vectors in one level-synchronous pass.

        Semantically equivalent to ``[generate(items, bound) for items, bound
        in zip(...)]`` — every vector's paths come back in the same order,
        with the same truncation behaviour — but the candidate extensions of
        the *entire batch frontier* are hashed in a single vectorised call
        per level, and each vector's sampling thresholds are evaluated once
        per level instead of once per frontier entry.  This amortisation is
        the core of the batched query subsystem.
        """
        if len(items_per_vector) != len(thresholds):
            raise ValueError("need exactly one threshold per vector")

        root_key = fold_path(())
        states: list[_BatchState] = []
        for members, bound in zip(items_per_vector, thresholds):
            sorted_items = sorted(int(item) for item in members)
            if sorted_items and (
                sorted_items[0] < 0 or sorted_items[-1] >= self._probabilities.size
            ):
                raise ValueError("vector contains an item outside the universe")
            item_array = np.asarray(sorted_items, dtype=np.int64)
            clamped = np.maximum(
                self._probabilities[item_array], self._probability_floor
            ) if sorted_items else np.empty(0, dtype=np.float64)
            log_probs = [math.log(value) for value in clamped.tolist()]
            states.append(_BatchState(sorted_items, item_array, log_probs, bound, root_key))

        log_stop = math.log(self._stop_product) if self._stop_product is not None else None

        for level in range(self._max_depth):
            # -- collection: flatten every candidate extension of the level --
            work: list[tuple[_BatchState, list[tuple[tuple[Path, int, float, list[int]], list[int]]], int]] = []
            key_parts: list[np.ndarray] = []
            item_parts: list[np.ndarray] = []
            probability_parts: list[np.ndarray] = []
            for state in states:
                if not state.active or not state.frontier:
                    continue
                entries: list[tuple[tuple[Path, int, float, list[int]], list[int]]] = []
                flat_items: list[int] = []
                entry_keys: list[int] = []
                entry_counts: list[int] = []
                items = state.items
                for entry in state.frontier:
                    positions = entry[3]
                    if not positions:
                        continue
                    entries.append((entry, positions))
                    flat_items.extend(items[position] for position in positions)
                    entry_keys.append(entry[1])
                    entry_counts.append(len(positions))
                if not entries:
                    state.frontier = []
                    continue
                item_array = np.asarray(flat_items, dtype=np.int64)
                probability_parts.append(state.bound.sampling_probabilities(level, item_array))
                item_parts.append(item_array)
                key_parts.append(
                    np.repeat(np.asarray(entry_keys, dtype=np.uint64), entry_counts)
                )
                work.append((state, entries, len(flat_items)))
            if not work:
                break

            extended_keys, hash_values = self._hasher.extension_pairs_flat(
                np.concatenate(key_parts), np.concatenate(item_parts), level
            )
            chosen_flat = hash_values < np.concatenate(probability_parts)

            # -- materialisation: replay the serial order per vector --
            query_start = 0
            for state, entries, total_candidates in work:
                offset = query_start
                query_start += total_candidates
                next_frontier: list[tuple[Path, int, float, list[int]]] = []
                for entry, positions in entries:
                    if state.truncated:
                        break
                    path, _key, log_product, _positions = entry
                    state.expansions += 1
                    for local_index, position in enumerate(positions):
                        if not chosen_flat[offset + local_index]:
                            continue
                        new_path = path + (state.items[position],)
                        new_log_product = log_product + state.log_probs[position]
                        if log_stop is not None and new_log_product <= log_stop:
                            state.finished_paths.append(new_path)
                            state.finished_keys.append(
                                int(extended_keys[offset + local_index])
                            )
                        else:
                            next_frontier.append(
                                (
                                    new_path,
                                    int(extended_keys[offset + local_index]),
                                    new_log_product,
                                    [other for other in positions if other != position],
                                )
                            )
                        if (
                            self._max_paths is not None
                            and len(state.finished_paths) + len(next_frontier)
                            >= self._max_paths
                        ):
                            state.truncated = True
                            break
                    offset += len(positions)
                state.frontier = next_frontier
                if state.truncated:
                    state.active = False

        results: list[PathGenerationResult] = []
        for state in states:
            if self._collect_at_max_depth:
                for path, key, _log, _mask in state.frontier:
                    state.finished_paths.append(path)
                    state.finished_keys.append(key)
            results.append(
                PathGenerationResult(
                    paths=state.finished_paths,
                    truncated=state.truncated,
                    expansions=state.expansions,
                    keys=state.finished_keys,
                )
            )
        return results

"""Shared helpers for the batched query subsystem.

The filter-engine indexes batch natively (vectorised generation, probe
deduplication, array verification — see
:meth:`repro.core.engine.FilterEngine.query_batch`).  The hash-table style
baselines (MinHash, prefix filtering, brute force) expose the same batch
surface through the loop-based executor here, which still amortises what it
can: exact duplicate queries are answered once, and the whole batch is timed
as a unit so harnesses and benchmarks can treat every index uniformly.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Any, Callable, Iterable, Sequence

from repro.core.stats import BatchQueryStats, QueryStats

SetLike = Iterable[int]


def run_loop_batch(
    query_function: Callable[[frozenset[int]], tuple[object, QueryStats]],
    queries: Sequence[SetLike],
    deduplicate: bool = True,
) -> tuple[list, BatchQueryStats]:
    """Execute a batch through a per-query callable, deduplicating inputs.

    Parameters
    ----------
    query_function:
        Called once per *distinct* query set; must return
        ``(result, QueryStats)``.
    queries:
        The query sets, in answer order.
    deduplicate:
        Answer exact duplicate queries once and copy the result.

    Returns
    -------
    (results, stats):
        Results in input order plus a :class:`BatchQueryStats` whose
        ``per_query`` entries line up with the inputs.  Cache hits carry the
        cached answer's outcome (``found``) but zeroed work counters and
        ``from_cache=True``: the work was done once, by the first
        occurrence, so cloning the original counters verbatim would
        double-count every duplicate when the per-query stats are
        aggregated.
    """
    start = time.perf_counter()
    query_sets = [frozenset(int(item) for item in query) for query in queries]
    stats = BatchQueryStats(num_queries=len(query_sets))
    cache: dict[frozenset[int], tuple[object, QueryStats]] = {}
    results: list[Any] = []
    for query_set in query_sets:
        if deduplicate and query_set in cache:
            value, cached_stats = cache[query_set]
            stats.queries_deduplicated += 1
            results.append(set(value) if isinstance(value, set) else value)
            stats.per_query.append(
                replace(
                    cached_stats,
                    filters_generated=0,
                    candidates_examined=0,
                    unique_candidates=0,
                    similarity_evaluations=0,
                    repetitions_used=0,
                    from_cache=True,
                )
            )
            continue
        value, query_stats = query_function(query_set)
        if deduplicate:
            cache[query_set] = (value, query_stats)
        results.append(set(value) if isinstance(value, set) else value)
        stats.per_query.append(replace(query_stats))
    stats.elapsed_seconds = time.perf_counter() - start
    return results, stats

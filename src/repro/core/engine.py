"""The generic locality-sensitive filtering engine.

Both index variants of the paper (adversarial and correlated) and the Chosen
Path baseline share the same skeleton — generate filters for every dataset
vector, store them in an inverted index, and at query time examine the
vectors colliding with the query's filters.  :class:`FilterEngine`
implements that skeleton once, parameterised by a
:class:`~repro.core.thresholds.ThresholdPolicy` and by the stopping rule.

Multiple independent repetitions are used to boost the per-repetition success
probability of Lemma 5 (roughly ``1/log n``) to a constant; the engine builds
``repetitions`` copies of the filter structure, each with its own hash
functions, and a query probes them in order until it finds an acceptable
vector.
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.core.inverted_index import InvertedFilterIndex
from repro.core.paths import PathGenerator, default_max_depth
from repro.core.stats import BuildStats, QueryStats
from repro.core.thresholds import ThresholdPolicy
from repro.hashing.pairwise import PathHasher
from repro.hashing.random_source import derive_seed
from repro.similarity.measures import braun_blanquet

SetLike = Iterable[int]
SimilarityFunction = Callable[[frozenset[int], frozenset[int]], float]


def default_repetitions(num_vectors: int) -> int:
    """Default number of independent filter structures: ``ceil(log2 n) + 1``.

    Lemma 5 guarantees a per-repetition collision probability of at least
    ``1/log n`` for similar pairs, so a logarithmic number of repetitions
    yields constant success probability (the paper's footnote 2).
    """
    if num_vectors <= 1:
        return 1
    return int(math.ceil(math.log2(num_vectors))) + 1


class FilterEngine:
    """Shared build/query machinery for locality-sensitive filtering indexes.

    Parameters
    ----------
    probabilities:
        Item-level probabilities ``p_i`` (used by the stopping rule and, for
        the correlated policy, by the thresholds).
    threshold_policy:
        The sampling-threshold policy ``s(x, j, i)``.
    acceptance_threshold:
        Braun-Blanquet similarity at which a candidate is reported.
    num_vectors_hint:
        Expected dataset size ``n``; used for the ``1/n`` stopping product
        and the default number of repetitions before :meth:`build` is called.
    repetitions:
        Number of independent filter structures (``None`` = default).
    max_depth:
        Hard recursion-depth cap (``None`` = derive from ``n`` and ``p_max``).
    collect_at_max_depth:
        Baseline behaviour flag forwarded to :class:`PathGenerator`.
    stop_product_enabled:
        If False, the ``1/n`` product stopping rule is disabled (Chosen Path
        baseline uses only the fixed depth).
    max_paths_per_vector:
        Safety cap forwarded to :class:`PathGenerator`.
    similarity:
        Similarity function used for candidate verification (defaults to
        Braun-Blanquet, the paper's measure).
    seed:
        Master seed for all hash functions.
    """

    def __init__(
        self,
        probabilities: np.ndarray | Sequence[float],
        threshold_policy: ThresholdPolicy,
        acceptance_threshold: float,
        num_vectors_hint: int,
        repetitions: int | None = None,
        max_depth: int | None = None,
        collect_at_max_depth: bool = False,
        stop_product_enabled: bool = True,
        max_paths_per_vector: int | None = 50_000,
        similarity: SimilarityFunction | None = None,
        seed: int = 0,
    ):
        self._probabilities = np.asarray(probabilities, dtype=np.float64)
        if self._probabilities.ndim != 1 or self._probabilities.size == 0:
            raise ValueError("probabilities must be a non-empty 1-d array")
        if not 0.0 <= acceptance_threshold <= 1.0:
            raise ValueError(
                f"acceptance_threshold must be in [0, 1], got {acceptance_threshold}"
            )
        if num_vectors_hint <= 0:
            raise ValueError(f"num_vectors_hint must be positive, got {num_vectors_hint}")

        self._threshold_policy = threshold_policy
        self._acceptance_threshold = float(acceptance_threshold)
        self._num_vectors_hint = int(num_vectors_hint)
        self._repetitions = (
            repetitions if repetitions is not None else default_repetitions(num_vectors_hint)
        )
        if self._repetitions <= 0:
            raise ValueError(f"repetitions must be positive, got {self._repetitions}")
        max_probability = float(self._probabilities.max())
        self._max_depth = (
            max_depth
            if max_depth is not None
            else default_max_depth(num_vectors_hint, max_probability)
        )
        self._collect_at_max_depth = bool(collect_at_max_depth)
        self._stop_product = (
            1.0 / float(num_vectors_hint) if stop_product_enabled else None
        )
        self._max_paths_per_vector = max_paths_per_vector
        self._similarity = similarity if similarity is not None else braun_blanquet
        self._seed = int(seed)

        self._generators: list[PathGenerator] = [
            PathGenerator(
                self._probabilities,
                PathHasher(derive_seed(self._seed, "repetition", repetition)),
                stop_product=self._stop_product,
                max_depth=self._max_depth,
                collect_at_max_depth=self._collect_at_max_depth,
                max_paths=self._max_paths_per_vector,
            )
            for repetition in range(self._repetitions)
        ]
        self._indexes: list[InvertedFilterIndex] = [
            InvertedFilterIndex() for _ in range(self._repetitions)
        ]
        self._vectors: list[frozenset[int]] = []
        self._removed: set[int] = set()
        self._build_stats = BuildStats()

    # ------------------------------------------------------------------ #
    # Properties
    # ------------------------------------------------------------------ #

    @property
    def repetitions(self) -> int:
        return self._repetitions

    @property
    def acceptance_threshold(self) -> float:
        return self._acceptance_threshold

    @property
    def threshold_policy(self) -> ThresholdPolicy:
        return self._threshold_policy

    @property
    def vectors(self) -> Sequence[frozenset[int]]:
        """The stored dataset vectors (indexable by the returned ids)."""
        return self._vectors

    @property
    def build_stats(self) -> BuildStats:
        return self._build_stats

    @property
    def total_stored_filters(self) -> int:
        """Total number of (filter, vector) postings across repetitions."""
        return sum(index.total_entries for index in self._indexes)

    # ------------------------------------------------------------------ #
    # Build
    # ------------------------------------------------------------------ #

    def build(self, collection: Iterable[SetLike]) -> BuildStats:
        """Index a dataset.  Replaces any previously indexed data."""
        self._vectors = [frozenset(int(item) for item in members) for members in collection]
        self._indexes = [InvertedFilterIndex() for _ in range(self._repetitions)]
        self._removed = set()
        stats = BuildStats(num_vectors=len(self._vectors), repetitions=self._repetitions)
        for repetition, (generator, index) in enumerate(zip(self._generators, self._indexes)):
            for vector_id, members in enumerate(self._vectors):
                if not members:
                    continue
                bound = self._threshold_policy.bind(sorted(members))
                result = generator.generate(sorted(members), bound)
                index.add(vector_id, result.paths)
                stats.total_filters += len(result.paths)
                if result.truncated:
                    stats.truncated_vectors += 1
            del repetition
        self._build_stats = stats
        return stats

    # ------------------------------------------------------------------ #
    # Dynamic updates
    # ------------------------------------------------------------------ #

    def insert(self, members: SetLike) -> int:
        """Insert one vector into the already-built index and return its id.

        The structure's parameters (stopping product, repetitions, depth) were
        derived from the dataset size at build time; inserting a moderate
        number of additional vectors keeps the guarantees intact, but growing
        the dataset by large factors warrants a rebuild with an updated size
        hint.
        """
        vector = frozenset(int(item) for item in members)
        vector_id = len(self._vectors)
        self._vectors.append(vector)
        self._build_stats.num_vectors += 1
        if not vector:
            return vector_id
        for generator, index in zip(self._generators, self._indexes):
            bound = self._threshold_policy.bind(sorted(vector))
            result = generator.generate(sorted(vector), bound)
            index.add(vector_id, result.paths)
            self._build_stats.total_filters += len(result.paths)
            if result.truncated:
                self._build_stats.truncated_vectors += 1
        return vector_id

    def remove(self, vector_id: int) -> None:
        """Remove a stored vector by id (tombstone; postings are not compacted).

        Removed ids are skipped by queries and joins; the space they occupy in
        posting lists is reclaimed on the next :meth:`build`.
        """
        if not 0 <= vector_id < len(self._vectors):
            raise IndexError(f"vector id {vector_id} is out of range")
        self._removed.add(vector_id)

    @property
    def num_removed(self) -> int:
        """Number of vectors currently tombstoned."""
        return len(self._removed)

    def is_removed(self, vector_id: int) -> bool:
        """Whether the given id has been removed."""
        return vector_id in self._removed

    # ------------------------------------------------------------------ #
    # Query
    # ------------------------------------------------------------------ #

    def query_filters(self, query: SetLike, repetition: int) -> list[tuple[int, ...]]:
        """The filters ``F(q)`` of a query in one repetition (mainly for tests)."""
        members = sorted(int(item) for item in query)
        if not members:
            return []
        bound = self._threshold_policy.bind(members)
        return self._generators[repetition].generate(members, bound).paths

    def query(
        self,
        query: SetLike,
        mode: str = "first",
    ) -> tuple[int | None, QueryStats]:
        """Search for a stored vector similar to ``query``.

        Parameters
        ----------
        query:
            The query set.
        mode:
            ``"first"`` (default) returns the first candidate meeting the
            acceptance threshold, probing repetitions in order and stopping
            early — this matches the paper's query procedure.  ``"best"``
            examines all repetitions and returns the most similar candidate
            meeting the threshold (higher recall, more work).

        Returns
        -------
        (vector_id, stats):
            ``vector_id`` is the index of the reported vector in the built
            dataset, or ``None`` when no candidate met the threshold.
        """
        if mode not in ("first", "best"):
            raise ValueError(f"mode must be 'first' or 'best', got {mode!r}")
        query_set = frozenset(int(item) for item in query)
        stats = QueryStats()
        if not query_set or not self._vectors:
            return None, stats

        best_id: int | None = None
        best_similarity = -1.0
        evaluated: set[int] = set()

        for repetition in range(self._repetitions):
            members = sorted(query_set)
            bound = self._threshold_policy.bind(members)
            generation = self._generators[repetition].generate(members, bound)
            stats.filters_generated += len(generation.paths)
            stats.repetitions_used += 1

            for candidate_id in self._indexes[repetition].candidates(generation.paths):
                stats.candidates_examined += 1
                if candidate_id in evaluated or candidate_id in self._removed:
                    continue
                evaluated.add(candidate_id)
                stats.unique_candidates += 1
                similarity = self._similarity(self._vectors[candidate_id], query_set)
                stats.similarity_evaluations += 1
                if similarity >= self._acceptance_threshold:
                    if mode == "first":
                        stats.found = True
                        return candidate_id, stats
                    if similarity > best_similarity:
                        best_similarity = similarity
                        best_id = candidate_id

            if mode == "first" and best_id is not None:
                break

        stats.found = best_id is not None
        return best_id, stats

    def query_candidates(self, query: SetLike) -> tuple[set[int], QueryStats]:
        """All distinct candidate ids colliding with the query, plus stats.

        This is the primitive used by the similarity join: the caller decides
        which candidates to verify and against which predicate.
        """
        query_set = frozenset(int(item) for item in query)
        stats = QueryStats()
        candidates: set[int] = set()
        if not query_set or not self._vectors:
            return candidates, stats
        members = sorted(query_set)
        for repetition in range(self._repetitions):
            bound = self._threshold_policy.bind(members)
            generation = self._generators[repetition].generate(members, bound)
            stats.filters_generated += len(generation.paths)
            stats.repetitions_used += 1
            for candidate_id in self._indexes[repetition].candidates(generation.paths):
                stats.candidates_examined += 1
                if candidate_id in self._removed:
                    continue
                candidates.add(candidate_id)
        stats.unique_candidates = len(candidates)
        return candidates, stats

"""The generic locality-sensitive filtering engine.

Both index variants of the paper (adversarial and correlated) and the Chosen
Path baseline share the same skeleton — generate filters for every dataset
vector, store them in an inverted index, and at query time examine the
vectors colliding with the query's filters.  :class:`FilterEngine`
implements that skeleton once, parameterised by a
:class:`~repro.core.thresholds.ThresholdPolicy` and by the stopping rule.

Multiple independent repetitions are used to boost the per-repetition success
probability of Lemma 5 (roughly ``1/log n``) to a constant; the engine builds
``repetitions`` copies of the filter structure, each with its own hash
functions, and a query probes them in order until it finds an acceptable
vector.

Query execution is CSR-native: from probe-key lookup to the final candidate
set, data stays in flat numpy arrays.  Every query surface resolves its
folded path keys through :meth:`~repro.core.inverted_index.
InvertedFilterIndex.probe_batch` (one ``searchsorted`` over the sorted key
table per repetition), the gathered posting segments are merged with
sort/unique array passes, tombstones are filtered as a vectorised mask, and
verification consumes the merged id arrays directly.  (The pre-refactor
set-based execution that survived one release behind ``use_csr_merge=False``
has been removed; the equivalence property suite now pins RAM-mode against
mmap-mode execution instead.)

The engine is storage-agnostic: the per-repetition postings stores may be
in-memory :class:`~repro.core.inverted_index.InvertedFilterIndex` instances
(built or RAM-loaded) or memory-mapped
:class:`~repro.core.mmap_store.ShardedInvertedFilterIndex` views of a
format v3 file set — both serve the same ``probe_batch`` contract, so every
query surface answers bit-identically in either mode.  For sharded stores,
``shard_workers`` (an engine-level default, overridable per batched call)
fans each probe's shard gathers out over a thread pool.
"""

from __future__ import annotations

import math
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace
from typing import Any, Callable, Iterable, Sequence

import numpy as np

try:  # pragma: no cover - resource is POSIX-only
    import resource
except ImportError:  # pragma: no cover
    resource = None  # type: ignore[assignment]

from repro.core.config import DEFAULT_BATCH_SIZE
from repro.core.inverted_index import InvertedFilterIndex, _segment_gather
from repro.core.kernels import get_impl, new_counters
from repro.core.mmap_store import LazyVectorStore
from repro.core.paths import PathGenerationResult, PathGenerator, default_max_depth
from repro.core.stats import BatchQueryStats, BuildStats, KernelStats, QueryStats
from repro.core.thresholds import ThresholdPolicy
from repro.hashing.pairwise import PathHasher
from repro.hashing.random_source import derive_seed
from repro.similarity.measures import braun_blanquet

SetLike = Iterable[int]
SimilarityFunction = Callable[[frozenset[int], frozenset[int]], float]


class DeadlineExceededError(TimeoutError):
    """A query's deadline expired before execution finished.

    Deadlines are absolute wall-clock epochs (``time.time()`` scale) so
    they survive process and host boundaries: the serving layer stamps one
    from ``X-Repro-Deadline-Ms``, the engine checks it between execution
    chunks, and the shard router forwards it inside each probe frame so
    workers stop working — not just stop being waited on — once the budget
    is spent.  The serving layer maps this to ``504 Gateway Timeout``.
    """

#: Vectors per generation chunk during :meth:`FilterEngine.build`.
_BUILD_GENERATION_BATCH = 512

_EMPTY_IDS = np.empty(0, dtype=np.int64)


def default_repetitions(num_vectors: int) -> int:
    """Default number of independent filter structures: ``ceil(log2 n) + 1``.

    Lemma 5 guarantees a per-repetition collision probability of at least
    ``1/log n`` for similar pairs, so a logarithmic number of repetitions
    yields constant success probability (the paper's footnote 2).
    """
    if num_vectors <= 1:
        return 1
    return int(math.ceil(math.log2(num_vectors))) + 1


def _route_shards(route: np.ndarray) -> int:
    """Distinct probe-table shards a probe's routing vector touches."""
    if not route.size:
        return 0
    return int(np.unique(route).size)


class FilterEngine:
    """Shared build/query machinery for locality-sensitive filtering indexes.

    Parameters
    ----------
    probabilities:
        Item-level probabilities ``p_i`` (used by the stopping rule and, for
        the correlated policy, by the thresholds).
    threshold_policy:
        The sampling-threshold policy ``s(x, j, i)``.
    acceptance_threshold:
        Braun-Blanquet similarity at which a candidate is reported.
    num_vectors_hint:
        Expected dataset size ``n``; used for the ``1/n`` stopping product
        and the default number of repetitions before :meth:`build` is called.
    repetitions:
        Number of independent filter structures (``None`` = default).
    max_depth:
        Hard recursion-depth cap (``None`` = derive from ``n`` and ``p_max``).
    collect_at_max_depth:
        Baseline behaviour flag forwarded to :class:`PathGenerator`.
    stop_product_enabled:
        If False, the ``1/n`` product stopping rule is disabled (Chosen Path
        baseline uses only the fixed depth).
    max_paths_per_vector:
        Safety cap forwarded to :class:`PathGenerator`.
    similarity:
        Similarity function used for candidate verification (defaults to
        Braun-Blanquet, the paper's measure).
    seed:
        Master seed for all hash functions.
    """

    def __init__(
        self,
        probabilities: np.ndarray | Sequence[float],
        threshold_policy: ThresholdPolicy,
        acceptance_threshold: float,
        num_vectors_hint: int,
        repetitions: int | None = None,
        max_depth: int | None = None,
        collect_at_max_depth: bool = False,
        stop_product_enabled: bool = True,
        max_paths_per_vector: int | None = 50_000,
        similarity: SimilarityFunction | None = None,
        seed: int = 0,
    ):
        self._probabilities = np.asarray(probabilities, dtype=np.float64)
        if self._probabilities.ndim != 1 or self._probabilities.size == 0:
            raise ValueError("probabilities must be a non-empty 1-d array")
        if not 0.0 <= acceptance_threshold <= 1.0:
            raise ValueError(
                f"acceptance_threshold must be in [0, 1], got {acceptance_threshold}"
            )
        if num_vectors_hint <= 0:
            raise ValueError(f"num_vectors_hint must be positive, got {num_vectors_hint}")

        self._threshold_policy = threshold_policy
        self._acceptance_threshold = float(acceptance_threshold)
        self._num_vectors_hint = int(num_vectors_hint)
        self._repetitions = (
            repetitions if repetitions is not None else default_repetitions(num_vectors_hint)
        )
        if self._repetitions <= 0:
            raise ValueError(f"repetitions must be positive, got {self._repetitions}")
        max_probability = float(self._probabilities.max())
        self._max_depth = (
            max_depth
            if max_depth is not None
            else default_max_depth(num_vectors_hint, max_probability)
        )
        self._collect_at_max_depth = bool(collect_at_max_depth)
        self._stop_product = (
            1.0 / float(num_vectors_hint) if stop_product_enabled else None
        )
        self._max_paths_per_vector = max_paths_per_vector
        self._similarity = similarity if similarity is not None else braun_blanquet
        self._seed = int(seed)
        # Default per-probe shard fan-out for sharded (mmap) stores; batched
        # surfaces can override per call.
        self._shard_workers: int | None = None
        # Shard router behind a router-backed (multi-process) index; set by
        # repro.dist.load_routed_index.  Typed loosely to keep core free of
        # a dist dependency — the engine only drains its fan-out stats.
        self._shard_router: Any | None = None

        self._generators: list[PathGenerator] = [
            PathGenerator(
                self._probabilities,
                PathHasher(derive_seed(self._seed, "repetition", repetition)),
                stop_product=self._stop_product,
                max_depth=self._max_depth,
                collect_at_max_depth=self._collect_at_max_depth,
                max_paths=self._max_paths_per_vector,
            )
            for repetition in range(self._repetitions)
        ]
        self._indexes: list[InvertedFilterIndex] = [
            InvertedFilterIndex() for _ in range(self._repetitions)
        ]
        self._vectors: list[frozenset[int]] = []
        self._removed: set[int] = set()
        self._build_stats = BuildStats()
        # CSR view of the stored vectors, built lazily for vectorised
        # candidate verification; invalidated by build()/insert().
        self._store_flat_items: np.ndarray | None = None
        self._store_offsets: np.ndarray | None = None
        self._store_sizes: np.ndarray | None = None
        # Tombstones as a boolean mask over vector ids, built lazily for the
        # vectorised filtering step; invalidated whenever the removed set or
        # the vector count changes.
        self._removed_mask: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    # Properties
    # ------------------------------------------------------------------ #

    @property
    def repetitions(self) -> int:
        return self._repetitions

    @property
    def num_vectors_hint(self) -> int:
        """The dataset-size hint the engine's parameters were derived from.

        The stopping product, default repetition count, default depth and
        (for the correlated policy) the sampling thresholds all depend on
        this value, so persistence must reconstruct the engine with the
        *original* hint — not the current vector count, which drifts as
        vectors are inserted after the build.
        """
        return self._num_vectors_hint

    @property
    def acceptance_threshold(self) -> float:
        return self._acceptance_threshold

    @property
    def threshold_policy(self) -> ThresholdPolicy:
        return self._threshold_policy

    @property
    def vectors(self) -> Sequence[frozenset[int]]:
        """The stored dataset vectors (indexable by the returned ids)."""
        return self._vectors

    @property
    def build_stats(self) -> BuildStats:
        return self._build_stats

    @property
    def total_stored_filters(self) -> int:
        """Total number of (filter, vector) postings across repetitions."""
        return sum(index.total_entries for index in self._indexes)

    @property
    def filter_indexes(self) -> Sequence[InvertedFilterIndex]:
        """The per-repetition postings stores (read-only view)."""
        return tuple(self._indexes)

    @property
    def removed_ids(self) -> frozenset[int]:
        """The currently tombstoned vector ids."""
        return frozenset(self._removed)

    @property
    def shard_workers(self) -> int | None:
        """Default per-probe shard fan-out for sharded (mmap-loaded) stores.

        ``None`` resolves shards serially.  Purely an execution-strategy
        knob — results are identical either way — so it is safe to change
        on a live engine; it has no effect on unsharded stores.
        """
        return self._shard_workers

    @shard_workers.setter
    def shard_workers(self, workers: int | None) -> None:
        if workers is not None and workers <= 0:
            raise ValueError(f"shard_workers must be positive, got {workers}")
        self._shard_workers = workers

    @property
    def shard_router(self) -> Any | None:
        """The shard router fanning this engine's probes across workers.

        ``None`` in every single-process mode.  Set by
        :func:`repro.dist.load_routed_index`; the engine itself only drains
        the router's per-batch fan-out accounting into
        ``BatchQueryStats.fanout`` — probe routing happens inside the
        router-backed per-repetition stores.
        """
        return self._shard_router

    @shard_router.setter
    def shard_router(self, router: Any | None) -> None:
        if router is not None and not hasattr(router, "take_fanout_stats"):
            raise ValueError(
                "shard_router must expose take_fanout_stats() "
                f"(got {type(router).__name__})"
            )
        self._shard_router = router

    # ------------------------------------------------------------------ #
    # State restoration (persistence)
    # ------------------------------------------------------------------ #

    def restore_state(
        self,
        vectors: Sequence[frozenset[int]],
        removed: Iterable[int],
        build_stats: BuildStats,
        filter_indexes: Sequence[InvertedFilterIndex],
    ) -> None:
        """Adopt a previously built engine state (used by ``load_index``).

        Replaces the stored vectors, tombstones, build statistics and
        per-repetition postings stores wholesale — no filters are generated.
        The engine must have been constructed with the same configuration
        (seed, thresholds, repetitions) as the one that produced the state,
        otherwise queries will not line up with the stored postings.
        """
        if len(filter_indexes) != self._repetitions:
            raise ValueError(
                f"state has {len(filter_indexes)} repetitions, "
                f"engine expects {self._repetitions}"
            )
        if isinstance(vectors, LazyVectorStore):
            # mmap mode: adopt the mapped view as-is — materialising it here
            # would page the whole vector store in and defeat lazy loading.
            pass
        else:
            vectors = [
                members
                if type(members) is frozenset
                else frozenset(int(item) for item in members)
                for members in vectors
            ]
        removed_set = {int(vector_id) for vector_id in removed}
        out_of_range = [v for v in removed_set if not 0 <= v < len(vectors)]
        if out_of_range:
            raise ValueError(f"removed ids out of range: {sorted(out_of_range)}")
        self._vectors = vectors
        self._removed = removed_set
        self._build_stats = build_stats
        self._indexes = list(filter_indexes)
        self._invalidate_candidate_store()
        self._removed_mask = None
        if isinstance(vectors, LazyVectorStore):
            # Vectorised verification reads the mapped CSR arrays directly;
            # only the small per-vector offset/size arrays are materialised.
            flat_items, starts, sizes = vectors.csr_view()
            self._store_flat_items = flat_items
            self._store_offsets = starts
            self._store_sizes = sizes

    # ------------------------------------------------------------------ #
    # Build
    # ------------------------------------------------------------------ #

    def build(self, collection: Iterable[SetLike]) -> BuildStats:
        """Index a dataset.  Replaces any previously indexed data.

        Filter generation runs through the batched path generator: the
        vectors are processed in chunks whose candidate extensions are
        hashed in one vectorised call per recursion level, which is
        substantially faster than per-vector generation while producing
        exactly the same filters.  The generated postings land in the
        stores' append-only buffers and are folded into the CSR arrays by
        one vectorised bulk compaction per repetition at the end.
        """
        build_start = time.perf_counter()
        self._vectors = [frozenset(int(item) for item in members) for members in collection]
        self._indexes = [InvertedFilterIndex() for _ in range(self._repetitions)]
        self._removed = set()
        self._invalidate_candidate_store()
        self._removed_mask = None
        stats = BuildStats(num_vectors=len(self._vectors), repetitions=self._repetitions)
        counters = new_counters()
        non_empty = [
            (vector_id, sorted(members))
            for vector_id, members in enumerate(self._vectors)
            if members
        ]
        for generator, index in zip(self._generators, self._indexes):
            for start in range(0, len(non_empty), _BUILD_GENERATION_BATCH):
                chunk = non_empty[start : start + _BUILD_GENERATION_BATCH]
                bounds = [self._threshold_policy.bind(members) for _, members in chunk]
                results = generator.generate_batch(
                    [members for _, members in chunk], bounds, counters=counters
                )
                for (vector_id, _members), result in zip(chunk, results):
                    index.add(vector_id, result.paths, keys=result.keys)
                    stats.total_filters += len(result.paths)
                    if result.truncated:
                        stats.truncated_vectors += 1
                stats.generation_batches += 1
        for index in self._indexes:
            index.compact()
            # Fresh stores: their lifetime counters are exactly this build's
            # compaction work (forced-collision chain resolution).
            stats.kernel.add_counters(index.kernel_counters)
        stats.kernel.add_counters(counters)
        stats.build_seconds = time.perf_counter() - build_start
        self._build_stats = stats
        return stats

    # ------------------------------------------------------------------ #
    # Dynamic updates
    # ------------------------------------------------------------------ #

    def insert(self, members: SetLike) -> int:
        """Insert one vector into the already-built index and return its id.

        The structure's parameters (stopping product, repetitions, depth) were
        derived from the dataset size at build time; inserting a moderate
        number of additional vectors keeps the guarantees intact, but growing
        the dataset by large factors warrants a rebuild with an updated size
        hint.
        """
        vector = frozenset(int(item) for item in members)
        vector_id = len(self._vectors)
        self._vectors.append(vector)
        self._invalidate_candidate_store()
        self._removed_mask = None
        self._build_stats.num_vectors += 1
        if not vector:
            return vector_id
        counters = new_counters()
        for generator, index in zip(self._generators, self._indexes):
            bound = self._threshold_policy.bind(sorted(vector))
            result = generator.generate(sorted(vector), bound, counters=counters)
            index.add(vector_id, result.paths, keys=result.keys)
            self._build_stats.total_filters += len(result.paths)
            if result.truncated:
                self._build_stats.truncated_vectors += 1
        self._build_stats.kernel.add_counters(counters)
        return vector_id

    def remove(self, vector_id: int) -> None:
        """Remove a stored vector by id (tombstone; postings are not compacted).

        Removed ids are skipped by queries and joins; the space they occupy in
        posting lists is reclaimed on the next :meth:`build`.
        """
        if not 0 <= vector_id < len(self._vectors):
            raise IndexError(f"vector id {vector_id} is out of range")
        self._removed.add(vector_id)
        self._removed_mask = None

    @property
    def num_removed(self) -> int:
        """Number of vectors currently tombstoned."""
        return len(self._removed)

    def is_removed(self, vector_id: int) -> bool:
        """Whether the given id has been removed."""
        return vector_id in self._removed

    def _removed_lookup(self) -> np.ndarray | None:
        """Tombstones as a boolean mask over vector ids (``None`` if empty)."""
        if not self._removed:
            return None
        if self._removed_mask is None:
            mask = np.zeros(len(self._vectors), dtype=bool)
            mask[
                np.fromiter(self._removed, dtype=np.int64, count=len(self._removed))
            ] = True
            self._removed_mask = mask
        return self._removed_mask

    # ------------------------------------------------------------------ #
    # Query
    # ------------------------------------------------------------------ #

    def query_filters(self, query: SetLike, repetition: int) -> list[tuple[int, ...]]:
        """The filters ``F(q)`` of a query in one repetition (mainly for tests)."""
        members = sorted(int(item) for item in query)
        if not members:
            return []
        bound = self._threshold_policy.bind(members)
        return self._generators[repetition].generate(members, bound).paths

    def query(
        self,
        query: SetLike,
        mode: str = "first",
    ) -> tuple[int | None, QueryStats]:
        """Search for a stored vector similar to ``query``.

        Parameters
        ----------
        query:
            The query set.
        mode:
            ``"first"`` (default) returns the first candidate meeting the
            acceptance threshold, probing repetitions in order and stopping
            early — this matches the paper's query procedure.  ``"best"``
            examines all repetitions and returns the most similar candidate
            meeting the threshold (higher recall, more work).

        Returns
        -------
        (vector_id, stats):
            ``vector_id`` is the index of the reported vector in the built
            dataset, or ``None`` when no candidate met the threshold.
        """
        if mode not in ("first", "best"):
            raise ValueError(f"mode must be 'first' or 'best', got {mode!r}")
        query_set = frozenset(int(item) for item in query)
        stats = QueryStats()
        if not query_set or not len(self._vectors):
            return None, stats
        return self._query_csr(query_set, mode, stats)

    def _query_csr(
        self, query_set: frozenset[int], mode: str, stats: QueryStats
    ) -> tuple[int | None, QueryStats]:
        """CSR-native single query: batch-probe each repetition's filters,
        dedupe the gathered postings in first-appearance order, and verify
        the merged candidate array in one vectorised pass per repetition.

        Work counters are execution-strategy independent: in ``"first"``
        mode they are rolled back to the point where a per-candidate loop
        would have stopped (the hit's first position in the collision
        stream), because ``candidates_examined`` is the paper's work measure
        — RAM-mode and mmap-mode execution therefore report identical work
        (only ``shards_probed`` reflects the storage layout).
        """
        members = sorted(query_set)
        bound = self._threshold_policy.bind(members)
        evaluated = np.zeros(len(self._vectors), dtype=bool)
        removed = self._removed_lookup()
        membership = np.zeros(self._probabilities.size, dtype=bool)
        best_id: int | None = None
        best_similarity = -1.0
        impl = get_impl()
        counters = new_counters()

        for repetition in range(self._repetitions):
            # Even for one query the level-synchronous generator wins: it
            # hashes a whole frontier level per call instead of one call per
            # frontier entry, and produces bit-identical paths.
            generation = self._generators[repetition].generate_batch(
                [members], [bound], counters=counters
            )[0]
            stats.filters_generated += len(generation.paths)
            stats.repetitions_used += 1
            inverted = self._indexes[repetition]
            # The routed probe reports which shard each key resolved to, so
            # shard accounting no longer routes the same keys a second time.
            ids, _offsets, route = inverted.probe_batch_routed(
                generation.paths, generation.keys, shard_workers=self._shard_workers
            )
            stats.shards_probed += _route_shards(route)
            if not ids.size:
                continue
            # First-appearance dedupe: candidates must be evaluated in the
            # order the probes surfaced them for the "first acceptable
            # candidate" semantics to match the reference loop.
            ordered, ordered_first = impl.ordered_unique(ids, counters)
            fresh = ~evaluated[ordered]
            if removed is not None:
                fresh &= ~removed[ordered]
            ordered_new = ordered[fresh]
            if not ordered_new.size:
                stats.candidates_examined += int(ids.size)
                continue
            evaluated[ordered_new] = True
            similarities = self._batch_similarities(query_set, ordered_new, membership)
            if mode == "first":
                hits = np.flatnonzero(similarities >= self._acceptance_threshold)
                if hits.size:
                    # The reference loop stops at the hit's first appearance
                    # in the collision stream; account only the work up to
                    # that point.
                    hit = int(hits[0])
                    stats.candidates_examined += int(ordered_first[fresh][hit]) + 1
                    stats.unique_candidates += hit + 1
                    stats.similarity_evaluations += hit + 1
                    stats.found = True
                    stats.kernel.add_counters(counters)
                    return int(ordered_new[hit]), stats
            else:
                top_position = int(np.argmax(similarities))
                top_similarity = float(similarities[top_position])
                if (
                    top_similarity >= self._acceptance_threshold
                    and top_similarity > best_similarity
                ):
                    best_similarity = top_similarity
                    best_id = int(ordered_new[top_position])
            stats.candidates_examined += int(ids.size)
            stats.unique_candidates += int(ordered_new.size)
            stats.similarity_evaluations += int(ordered_new.size)

        stats.found = best_id is not None
        stats.kernel.add_counters(counters)
        return best_id, stats

    def query_candidates(self, query: SetLike) -> tuple[set[int], QueryStats]:
        """All distinct candidate ids colliding with the query, plus stats.

        This is the primitive used by the similarity join: the caller decides
        which candidates to verify and against which predicate.
        """
        query_set = frozenset(int(item) for item in query)
        stats = QueryStats()
        if not query_set or not len(self._vectors):
            return set(), stats
        merged = self._query_candidates_csr(query_set, stats)
        candidates = set(merged.tolist())
        stats.unique_candidates = len(candidates)
        return candidates, stats

    def _query_candidates_csr(
        self, query_set: frozenset[int], stats: QueryStats
    ) -> np.ndarray:
        """CSR-native candidate enumeration: one probe gather per repetition,
        then a single sort/unique merge with a vectorised tombstone mask.
        Returns the sorted array of distinct live candidate ids."""
        members = sorted(query_set)
        bound = self._threshold_policy.bind(members)
        parts: list[np.ndarray] = []
        impl = get_impl()
        counters = new_counters()
        for repetition in range(self._repetitions):
            generation = self._generators[repetition].generate_batch(
                [members], [bound], counters=counters
            )[0]
            stats.filters_generated += len(generation.paths)
            stats.repetitions_used += 1
            inverted = self._indexes[repetition]
            ids, _offsets, route = inverted.probe_batch_routed(
                generation.paths, generation.keys, shard_workers=self._shard_workers
            )
            stats.shards_probed += _route_shards(route)
            stats.candidates_examined += int(ids.size)
            if ids.size:
                parts.append(ids)
        if not parts:
            stats.kernel.add_counters(counters)
            return _EMPTY_IDS
        merged = impl.sorted_unique(np.concatenate(parts), counters)
        removed = self._removed_lookup()
        if removed is not None:
            merged = merged[~removed[merged]]
        stats.kernel.add_counters(counters)
        return merged

    # ------------------------------------------------------------------ #
    # Batched queries
    # ------------------------------------------------------------------ #

    def query_batch(
        self,
        queries: Sequence[SetLike],
        mode: str = "first",
        batch_size: int | None = None,
        max_workers: int | None = None,
        deduplicate: bool = True,
        shard_workers: int | None = None,
        allow_partial: bool = False,
        deadline: float | None = None,
    ) -> tuple[list[int | None], BatchQueryStats]:
        """Answer many queries at once, amortising work across the batch.

        Returns exactly the ids ``[query(q, mode)[0] for q in queries]``
        would return, but executes the batch through the vectorised
        subsystem: filter generation is level-synchronous across the whole
        batch (one hash call per level per repetition), the batch's folded
        path keys are deduplicated and resolved in one array probe per
        repetition, candidate merging and verification run as array
        operations over CSR views, and exact duplicate queries are answered
        once.

        Parameters
        ----------
        queries:
            The query sets, in answer order.
        mode:
            ``"first"`` or ``"best"``; see :meth:`query`.
        batch_size:
            Queries per vectorised execution chunk
            (default :data:`~repro.core.config.DEFAULT_BATCH_SIZE`).
        max_workers:
            When set, independent chunks run on a ``concurrent.futures``
            thread pool of this size.
        deduplicate:
            Answer exact duplicate queries once (default True).
        shard_workers:
            Per-probe shard fan-out for sharded (mmap-loaded) postings
            stores: each chunk-repetition probe resolves its touched shards
            concurrently on a thread pool of this size.  ``None`` uses the
            engine default (:attr:`shard_workers`); no effect on unsharded
            stores.
        allow_partial:
            Router-backed mode only: serve from the live shard workers when
            a worker's circuit breaker is open instead of failing the whole
            batch.  The returned ``BatchQueryStats.fanout`` then reports
            ``completeness < 1`` and the skipped ``shards_missing``;
            results are exactly the full results restricted to the live
            shards.  No effect (complete results) in single-process modes.
        deadline:
            Absolute wall-clock epoch (``time.time()`` scale) after which
            execution stops with :class:`DeadlineExceededError`; checked
            between execution chunks and propagated into shard-worker probe
            frames in router-backed mode.
        """
        if mode not in ("first", "best"):
            raise ValueError(f"mode must be 'first' or 'best', got {mode!r}")
        effective_shard_workers = (
            shard_workers if shard_workers is not None else self._shard_workers
        )
        return self._execute_batched(
            queries,
            lambda chunk: self._query_batch_chunk(chunk, mode, effective_shard_workers),
            batch_size=batch_size,
            max_workers=max_workers,
            deduplicate=deduplicate,
            allow_partial=allow_partial,
            deadline=deadline,
        )

    def query_candidates_batch(
        self,
        queries: Sequence[SetLike],
        batch_size: int | None = None,
        max_workers: int | None = None,
        deduplicate: bool = True,
        shard_workers: int | None = None,
        allow_partial: bool = False,
        deadline: float | None = None,
    ) -> tuple[list[set[int]], BatchQueryStats]:
        """Batched :meth:`query_candidates`: one candidate set per query.

        Results are exactly ``[query_candidates(q)[0] for q in queries]``.
        Consumers that can work on arrays directly (the similarity join)
        should prefer :meth:`query_candidates_arrays_batch`, which skips the
        final set materialisation.  ``shard_workers`` is the per-probe shard
        fan-out on sharded stores, ``allow_partial``/``deadline`` the
        degraded-results and budget knobs (see :meth:`query_batch`).
        """
        effective_shard_workers = (
            shard_workers if shard_workers is not None else self._shard_workers
        )
        return self._execute_batched(
            queries,
            lambda chunk: self._query_candidates_chunk(chunk, effective_shard_workers),
            batch_size=batch_size,
            max_workers=max_workers,
            deduplicate=deduplicate,
            allow_partial=allow_partial,
            deadline=deadline,
        )

    def query_candidates_arrays_batch(
        self,
        queries: Sequence[SetLike],
        batch_size: int | None = None,
        max_workers: int | None = None,
        deduplicate: bool = True,
        shard_workers: int | None = None,
        allow_partial: bool = False,
        deadline: float | None = None,
    ) -> tuple[list[np.ndarray], BatchQueryStats]:
        """Batched candidate enumeration returning sorted id arrays.

        Per query, the sorted ``int64`` array of distinct live candidate ids
        — the CSR merge's native output, handed over without building a
        Python set.  Treat the arrays as read-only (duplicate queries share
        one array).  Results are elementwise equal to
        ``sorted(query_candidates(q)[0])``.  ``shard_workers`` is the
        per-probe shard fan-out on sharded stores, ``allow_partial``/
        ``deadline`` the degraded-results and budget knobs (see
        :meth:`query_batch`).
        """
        effective_shard_workers = (
            shard_workers if shard_workers is not None else self._shard_workers
        )
        return self._execute_batched(
            queries,
            lambda chunk: self._candidate_arrays_chunk(chunk, effective_shard_workers),
            batch_size=batch_size,
            max_workers=max_workers,
            deduplicate=deduplicate,
            allow_partial=allow_partial,
            deadline=deadline,
        )

    def _execute_batched(
        self,
        queries: Sequence[SetLike],
        chunk_runner: Callable[[list[frozenset[int]]], tuple[list[Any], BatchQueryStats]],
        batch_size: int | None,
        max_workers: int | None,
        deduplicate: bool,
        allow_partial: bool = False,
        deadline: float | None = None,
    ) -> tuple[list[Any], BatchQueryStats]:
        """Shared orchestration: dedupe, chunk, (optionally) fan out, merge."""
        start = time.perf_counter()
        usage_before = resource.getrusage(resource.RUSAGE_SELF) if resource else None
        query_sets = [frozenset(int(item) for item in query) for query in queries]
        chunk_size = int(batch_size) if batch_size is not None else DEFAULT_BATCH_SIZE
        if chunk_size <= 0:
            raise ValueError(f"batch_size must be positive, got {chunk_size}")
        if max_workers is not None and max_workers <= 0:
            raise ValueError(f"max_workers must be positive, got {max_workers}")
        if deadline is not None and time.time() >= deadline:
            raise DeadlineExceededError(
                f"deadline expired {time.time() - deadline:.3f}s before the "
                "batch started executing"
            )
        if deadline is not None:
            # Check the budget at every chunk boundary — coarse-grained on
            # purpose: a chunk is the unit of vectorised work, and stopping
            # between chunks never leaves partially merged state behind.
            inner_runner = chunk_runner

            def chunk_runner(  # noqa: E306 - guarded rebind, same contract
                chunk: list[frozenset[int]],
            ) -> tuple[list[Any], BatchQueryStats]:
                if deadline is not None and time.time() >= deadline:
                    raise DeadlineExceededError(
                        "deadline expired between execution chunks"
                    )
                return inner_runner(chunk)

        if deduplicate:
            position_of: dict[frozenset[int], int] = {}
            unique_sets: list[frozenset[int]] = []
            source: list[int] = []
            for query_set in query_sets:
                position = position_of.get(query_set)
                if position is None:
                    position = len(unique_sets)
                    position_of[query_set] = position
                    unique_sets.append(query_set)
                source.append(position)
        else:
            unique_sets = query_sets
            source = list(range(len(query_sets)))

        chunks = [
            unique_sets[index : index + chunk_size]
            for index in range(0, len(unique_sets), chunk_size)
        ]
        # Router-backed execution reads the request scope (degraded-results
        # opt-in + deadline) from the router instance: the scope must be
        # visible to the chunk threads of this batch, which an engine-side
        # thread-local could not provide.
        scoped_router = (
            self._shard_router
            if self._shard_router is not None
            and hasattr(self._shard_router, "set_request_scope")
            and (allow_partial or deadline is not None)
            else None
        )
        if scoped_router is not None:
            scoped_router.set_request_scope(allow_partial=allow_partial, deadline=deadline)
        try:
            if max_workers and len(chunks) > 1 and self._vectors:
                # Pre-instantiate lazily-created shared state (hash levels,
                # the candidate store, compacted postings, the tombstone
                # mask) so worker threads only ever read it.
                for generator in self._generators:
                    generator.ensure_hash_levels()
                for inverted in self._indexes:
                    inverted.compact()
                self._ensure_candidate_store()
                self._removed_lookup()
                with ThreadPoolExecutor(max_workers=max_workers) as pool:
                    outputs = list(pool.map(chunk_runner, chunks))
            else:
                outputs = [chunk_runner(chunk) for chunk in chunks]
        finally:
            if scoped_router is not None:
                scoped_router.clear_request_scope()

        merged = BatchQueryStats(num_queries=len(query_sets))
        unique_results: list[Any] = []
        unique_stats: list[QueryStats] = []
        for results, chunk_stats in outputs:
            unique_results.extend(results)
            unique_stats.extend(chunk_stats.per_query)
            merged.distinct_filter_probes += chunk_stats.distinct_filter_probes
            merged.duplicate_filter_probes += chunk_stats.duplicate_filter_probes
            merged.generation_seconds += chunk_stats.generation_seconds
            merged.verification_seconds += chunk_stats.verification_seconds
            merged.merge_seconds += chunk_stats.merge_seconds
            merged.shards_probed += chunk_stats.shards_probed
            merged.kernel.add(chunk_stats.kernel)

        final_results: list[Any] = []
        answered: set[int] = set()
        for position in source:
            value = unique_results[position]
            final_results.append(set(value) if isinstance(value, set) else value)
            if position in answered:
                # A duplicate query answered from the batch cache: keep the
                # answer's outcome but zero the work counters so per-query
                # aggregation does not double-count the original execution.
                merged.per_query.append(
                    replace(
                        unique_stats[position],
                        filters_generated=0,
                        candidates_examined=0,
                        unique_candidates=0,
                        similarity_evaluations=0,
                        repetitions_used=0,
                        shards_probed=0,
                        from_cache=True,
                        # replace() copies field references — a cached entry
                        # must not share the original's mutable KernelStats.
                        kernel=KernelStats(),
                    )
                )
            else:
                answered.add(position)
                merged.per_query.append(
                    replace(unique_stats[position], kernel=replace(unique_stats[position].kernel))
                )
        merged.queries_deduplicated = len(query_sets) - len(unique_sets)
        if self._shard_router is not None:
            # Drain the router's per-worker accounting accrued by this
            # batch's probes (requests, rows, latency, failures) into the
            # batch record; lifetime totals stay with the router.
            merged.fanout.add(self._shard_router.take_fanout_stats())
        merged.elapsed_seconds = time.perf_counter() - start
        if usage_before is not None:
            usage_after = resource.getrusage(resource.RUSAGE_SELF)
            merged.minor_page_faults = usage_after.ru_minflt - usage_before.ru_minflt
            merged.major_page_faults = usage_after.ru_majflt - usage_before.ru_majflt
        return final_results, merged

    # ------------------------------------------------------------------ #
    # Batched chunk execution (CSR-native)
    # ------------------------------------------------------------------ #

    def _probe_chunk_repetition(
        self,
        inverted: InvertedFilterIndex,
        generations: Sequence[PathGenerationResult],
        shard_workers: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray, int, int, int, np.ndarray] | None:
        """Resolve one repetition's probes for a whole chunk in one gather.

        The generations' filters are concatenated and deduplicated *by path*
        (two queries sharing a filter probe it once; deduplicating by folded
        key alone would let a 64-bit collision hand one path's postings to
        another — the chunk dedupe must stay as collision-free as
        :meth:`InvertedFilterIndex.probe_batch` itself), resolved in one
        array probe (fanned out per shard when the store is sharded and
        ``shard_workers`` is set), and the posting segments are re-expanded
        to per-query collision streams.

        Returns ``(occurrence_ids, query_offsets, distinct, duplicate,
        shards, query_shards)`` where query ``k`` of the chunk owns the
        collision stream ``occurrence_ids[query_offsets[k]:query_offsets[k +
        1]]`` in path order, ``shards`` counts the distinct probe-table
        shards the deduplicated probe set touched, and ``query_shards[k]``
        counts the distinct shards query ``k``'s own filters routed to —
        both derived from the single routed probe, so the keys are routed
        exactly once per chunk-repetition.  Returns ``None`` when no query
        generated any filter.
        """
        position_by_path: dict[tuple[int, ...], int] = {}
        unique_paths: list[tuple[int, ...]] = []
        unique_keys: list[int] = []
        inverse_list: list[int] = []
        path_counts = np.empty(len(generations), dtype=np.int64)
        for position, generation in enumerate(generations):
            path_counts[position] = len(generation.paths)
            for path, key in zip(generation.paths, generation.keys):
                probe = position_by_path.setdefault(path, len(unique_paths))
                if probe == len(unique_paths):
                    unique_paths.append(path)
                    unique_keys.append(key)
                inverse_list.append(probe)
        if not inverse_list:
            return None
        inverse = np.asarray(inverse_list, dtype=np.int64)
        keys_arr = np.asarray(unique_keys, dtype=np.uint64)
        ids, offsets, route = inverted.probe_batch_routed(
            unique_paths, keys_arr, shard_workers=shard_workers
        )
        shards = _route_shards(route)
        per_path = np.diff(offsets)[inverse]
        occurrence_ids = _segment_gather(ids, offsets[:-1][inverse], per_path)
        # Per-query boundaries of the expanded collision stream.
        path_bounds = np.zeros(len(generations) + 1, dtype=np.int64)
        np.cumsum(path_counts, out=path_bounds[1:])
        occurrence_bounds = np.zeros(per_path.size + 1, dtype=np.int64)
        np.cumsum(per_path, out=occurrence_bounds[1:])
        query_offsets = occurrence_bounds[path_bounds]
        # Per-query shard fan-out from the same routing vector (duplicate
        # keys within a query route identically, so the dedupe is harmless).
        occurrence_route = route[inverse]
        query_shards = np.fromiter(
            (
                np.unique(occurrence_route[path_bounds[k] : path_bounds[k + 1]]).size
                for k in range(len(generations))
            ),
            dtype=np.int64,
            count=len(generations),
        )
        distinct = len(unique_paths)
        return (
            occurrence_ids,
            query_offsets,
            distinct,
            int(inverse.size) - distinct,
            shards,
            query_shards,
        )

    def _query_batch_chunk(
        self,
        chunk: Sequence[frozenset[int]],
        mode: str,
        shard_workers: int | None = None,
    ) -> tuple[list[int | None], BatchQueryStats]:
        """Answer one chunk of (already normalised, deduplicated) queries."""
        chunk_stats = BatchQueryStats(
            num_queries=len(chunk), per_query=[QueryStats() for _ in chunk]
        )
        results: list[int | None] = [None] * len(chunk)
        if not len(self._vectors):
            return results, chunk_stats
        active = [index for index, query_set in enumerate(chunk) if query_set]
        if not active:
            return results, chunk_stats
        members = {index: sorted(chunk[index]) for index in active}
        bounds = {
            index: self._threshold_policy.bind(members[index]) for index in active
        }
        evaluated: dict[int, np.ndarray] = {index: _EMPTY_IDS for index in active}
        best: dict[int, tuple[int | None, float]] = {index: (None, -1.0) for index in active}
        membership = np.zeros(self._probabilities.size, dtype=bool)
        removed = self._removed_lookup()
        impl = get_impl()
        counters = new_counters()

        for repetition in range(self._repetitions):
            if not active:
                break
            generation_start = time.perf_counter()
            generations = self._generators[repetition].generate_batch(
                [members[index] for index in active],
                [bounds[index] for index in active],
                counters=counters,
            )
            chunk_stats.generation_seconds += time.perf_counter() - generation_start
            inverted = self._indexes[repetition]
            for index, generation in zip(active, generations):
                query_stats = chunk_stats.per_query[index]
                query_stats.filters_generated += len(generation.paths)
                query_stats.repetitions_used += 1
            merge_start = time.perf_counter()
            probe = self._probe_chunk_repetition(inverted, generations, shard_workers)
            chunk_stats.merge_seconds += time.perf_counter() - merge_start
            if probe is None:
                continue
            occurrence_ids, query_offsets, distinct, duplicate, shards, query_shards = probe
            chunk_stats.distinct_filter_probes += distinct
            chunk_stats.duplicate_filter_probes += duplicate
            chunk_stats.shards_probed += shards

            surviving: list[int] = []
            for position, index in enumerate(active):
                query_stats = chunk_stats.per_query[index]
                query_stats.shards_probed += int(query_shards[position])
                merge_start = time.perf_counter()
                flat = occurrence_ids[query_offsets[position] : query_offsets[position + 1]]
                query_stats.candidates_examined += int(flat.size)
                ordered_new = _EMPTY_IDS
                if flat.size:
                    ordered, _first_positions = impl.ordered_unique(flat, counters)
                    fresh = ~np.isin(ordered, evaluated[index], assume_unique=True)
                    if removed is not None:
                        fresh &= ~removed[ordered]
                    ordered_new = ordered[fresh]
                    if ordered_new.size:
                        evaluated[index] = np.union1d(evaluated[index], ordered_new)
                chunk_stats.merge_seconds += time.perf_counter() - merge_start
                resolved = False
                if ordered_new.size:
                    query_stats.unique_candidates += int(ordered_new.size)
                    verification_start = time.perf_counter()
                    similarities = self._batch_similarities(
                        chunk[index], ordered_new, membership
                    )
                    query_stats.similarity_evaluations += int(ordered_new.size)
                    chunk_stats.verification_seconds += (
                        time.perf_counter() - verification_start
                    )
                    if mode == "first":
                        hits = np.flatnonzero(similarities >= self._acceptance_threshold)
                        if hits.size:
                            results[index] = int(ordered_new[int(hits[0])])
                            query_stats.found = True
                            resolved = True
                    else:
                        top_position = int(np.argmax(similarities))
                        top_similarity = float(similarities[top_position])
                        if (
                            top_similarity >= self._acceptance_threshold
                            and top_similarity > best[index][1]
                        ):
                            best[index] = (int(ordered_new[top_position]), top_similarity)
                if not resolved:
                    surviving.append(index)
            active = surviving

        if mode == "best":
            for index, (best_id, _best_similarity) in best.items():
                if best_id is not None:
                    results[index] = best_id
                    chunk_stats.per_query[index].found = True
        chunk_stats.kernel.add_counters(counters)
        return results, chunk_stats

    def _candidate_arrays_chunk(
        self, chunk: Sequence[frozenset[int]], shard_workers: int | None = None
    ) -> tuple[list[np.ndarray], BatchQueryStats]:
        """Batched candidate enumeration for one chunk, as sorted id arrays.

        The CSR merge proper: every repetition contributes one labelled
        collision stream, the streams are merged with a single lexsort over
        ``(query, id)``, duplicates collapse on the boundary mask, and the
        tombstone filter is one boolean gather.
        """
        chunk_stats = BatchQueryStats(
            num_queries=len(chunk), per_query=[QueryStats() for _ in chunk]
        )
        results: list[np.ndarray] = [_EMPTY_IDS] * len(chunk)
        if not len(self._vectors):
            return results, chunk_stats
        active = [index for index, query_set in enumerate(chunk) if query_set]
        if not active:
            return results, chunk_stats
        members = [sorted(chunk[index]) for index in active]
        bounds = [self._threshold_policy.bind(items) for items in members]
        id_parts: list[np.ndarray] = []
        label_parts: list[np.ndarray] = []
        impl = get_impl()
        counters = new_counters()

        for repetition in range(self._repetitions):
            generation_start = time.perf_counter()
            generations = self._generators[repetition].generate_batch(
                members, bounds, counters=counters
            )
            chunk_stats.generation_seconds += time.perf_counter() - generation_start
            inverted = self._indexes[repetition]
            for index, generation in zip(active, generations):
                query_stats = chunk_stats.per_query[index]
                query_stats.filters_generated += len(generation.paths)
                query_stats.repetitions_used += 1
            merge_start = time.perf_counter()
            probe = self._probe_chunk_repetition(inverted, generations, shard_workers)
            if probe is not None:
                occurrence_ids, query_offsets, distinct, duplicate, shards, query_shards = (
                    probe
                )
                chunk_stats.distinct_filter_probes += distinct
                chunk_stats.duplicate_filter_probes += duplicate
                chunk_stats.shards_probed += shards
                counts = np.diff(query_offsets)
                for position, index in enumerate(active):
                    query_stats = chunk_stats.per_query[index]
                    query_stats.candidates_examined += int(counts[position])
                    query_stats.shards_probed += int(query_shards[position])
                id_parts.append(occurrence_ids)
                label_parts.append(
                    np.repeat(np.arange(len(active), dtype=np.int64), counts)
                )
            chunk_stats.merge_seconds += time.perf_counter() - merge_start

        merge_start = time.perf_counter()
        if id_parts:
            all_ids = np.concatenate(id_parts)
            all_labels = np.concatenate(label_parts)
            if all_ids.size:
                labels_unique, ids_unique = impl.merge_labeled(
                    all_labels, all_ids, counters
                )
                removed = self._removed_lookup()
                if removed is not None:
                    alive = ~removed[ids_unique]
                    ids_unique = ids_unique[alive]
                    labels_unique = labels_unique[alive]
                boundaries = np.searchsorted(
                    labels_unique, np.arange(len(active) + 1, dtype=np.int64)
                )
                for position, index in enumerate(active):
                    segment = ids_unique[boundaries[position] : boundaries[position + 1]]
                    results[index] = segment
                    chunk_stats.per_query[index].unique_candidates = int(segment.size)
        chunk_stats.merge_seconds += time.perf_counter() - merge_start
        chunk_stats.kernel.add_counters(counters)
        return results, chunk_stats

    def _query_candidates_chunk(
        self, chunk: Sequence[frozenset[int]], shard_workers: int | None = None
    ) -> tuple[list[set[int]], BatchQueryStats]:
        """Batched candidate enumeration for one chunk of queries (as sets)."""
        arrays, chunk_stats = self._candidate_arrays_chunk(chunk, shard_workers)
        return [set(candidates.tolist()) for candidates in arrays], chunk_stats

    # ------------------------------------------------------------------ #
    # Vectorised candidate verification
    # ------------------------------------------------------------------ #

    def _invalidate_candidate_store(self) -> None:
        self._store_flat_items = None
        self._store_offsets = None
        self._store_sizes = None

    def _ensure_candidate_store(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """CSR view (flat items, start offsets, sizes) of the stored vectors."""
        if self._store_flat_items is None:
            sizes = np.fromiter(
                (len(vector) for vector in self._vectors),
                dtype=np.int64,
                count=len(self._vectors),
            )
            offsets = np.zeros(len(self._vectors), dtype=np.int64)
            if sizes.size:
                offsets[1:] = np.cumsum(sizes)[:-1]
            flat_items = np.fromiter(
                (item for vector in self._vectors for item in vector),
                dtype=np.int64,
                count=int(sizes.sum()),
            )
            self._store_sizes = sizes
            self._store_offsets = offsets
            self._store_flat_items = flat_items
        assert self._store_offsets is not None and self._store_sizes is not None
        return self._store_flat_items, self._store_offsets, self._store_sizes

    def _batch_similarities(
        self,
        query_set: frozenset[int],
        candidate_ids: Sequence[int] | np.ndarray,
        membership: np.ndarray,
    ) -> np.ndarray:
        """Similarities of many candidates against one query, vectorised.

        Braun-Blanquet (the default) is computed with array operations: the
        candidates' item lists are gathered from the CSR store and their
        intersection sizes with the query's membership mask are obtained via
        a single segmented reduction.  Custom similarity functions fall back
        to per-pair evaluation.
        """
        if self._similarity is not braun_blanquet:
            return np.asarray(
                [
                    self._similarity(self._vectors[candidate_id], query_set)
                    for candidate_id in candidate_ids
                ],
                dtype=np.float64,
            )
        flat_items, offsets, sizes = self._ensure_candidate_store()
        candidates = np.asarray(candidate_ids, dtype=np.int64)
        lengths = sizes[candidates]
        if lengths.size == 0 or int(lengths.min()) == 0:
            # Degenerate (empty) stored vectors cannot use the segmented
            # reduction; they should never be candidates, but stay exact.
            return np.asarray(
                [
                    braun_blanquet(self._vectors[candidate_id], query_set)
                    for candidate_id in candidate_ids
                ],
                dtype=np.float64,
            )
        query_items = np.fromiter(query_set, dtype=np.int64, count=len(query_set))
        membership[query_items] = True
        starts = offsets[candidates]
        segment_ends = np.cumsum(lengths)
        total = int(segment_ends[-1])
        gather = (
            np.arange(total, dtype=np.int64)
            - np.repeat(segment_ends - lengths, lengths)
            + np.repeat(starts, lengths)
        )
        hits = membership[flat_items[gather]].astype(np.int64)
        boundaries = np.concatenate(([0], segment_ends[:-1]))
        counts = np.add.reduceat(hits, boundaries)
        membership[query_items] = False
        denominators = np.maximum(lengths, len(query_set))
        return counts / denominators

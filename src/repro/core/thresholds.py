"""Threshold (sampling probability) policies for the path construction.

Section 3 of the paper parameterises the recursive path construction by a
function ``s(x, j, i)`` giving the probability with which set bit ``i`` of
vector ``x`` is appended to a path of length ``j``.  The three policies
implemented here correspond to:

* :class:`AdversarialThreshold` — Section 5: ``s(x, j, i) = 1/(b1 |x| − j)``;
  the threshold ignores the item identity and only depends on the vector
  size and the current depth.
* :class:`CorrelatedThreshold` — Section 6:
  ``s(x, j, i) = (1 + δ)/(p̂_i m − j)`` with ``p̂_i = p_i (1 − α) + α``,
  ``m = Σ_i p_i`` (the paper's ``C log n``) and ``δ = 3/sqrt(α C)``;
  rare items (small ``p̂_i``) are sampled aggressively.
* :class:`ConstantThreshold` — the original Chosen Path policy
  ``s(x, j, i) = 1/(b1 |x|)``, used by the baseline and by ablations.

All policies clamp the returned probabilities to ``[0, 1]``: the paper's
analysis assumes the denominators stay positive (large ``C``); an
implementation must behave sensibly outside that regime too.
"""

from __future__ import annotations

import abc
import math
from typing import Sequence

import numpy as np


class BoundThreshold(abc.ABC):
    """A threshold policy specialised to one concrete vector."""

    @abc.abstractmethod
    def sampling_probabilities(self, level: int, items: np.ndarray) -> np.ndarray:
        """Sampling probability for appending each of ``items`` at depth ``level``."""


class ThresholdPolicy(abc.ABC):
    """Factory of per-vector :class:`BoundThreshold` objects."""

    @abc.abstractmethod
    def bind(self, items: Sequence[int]) -> BoundThreshold:
        """Specialise the policy to the vector with the given set bits."""

    def describe(self) -> str:
        """Human-readable one-line description (used in reports)."""
        return type(self).__name__


class _UniformBound(BoundThreshold):
    """Bound threshold whose probability depends only on the depth."""

    def __init__(self, denominator_base: float, subtract_level: bool):
        self._denominator_base = denominator_base
        self._subtract_level = subtract_level

    def sampling_probabilities(self, level: int, items: np.ndarray) -> np.ndarray:
        denominator = self._denominator_base - (level if self._subtract_level else 0.0)
        if denominator <= 0.0:
            probability = 1.0
        else:
            probability = min(1.0, 1.0 / denominator)
        return np.full(len(items), probability, dtype=np.float64)


class AdversarialThreshold(ThresholdPolicy):
    """The Theorem 2 policy ``s(x, j, i) = 1/(b1 |x| − j)``.

    Parameters
    ----------
    b1:
        Braun-Blanquet similarity threshold of the search problem.
    """

    def __init__(self, b1: float):
        if not 0.0 < b1 <= 1.0:
            raise ValueError(f"b1 must be in (0, 1], got {b1}")
        self._b1 = float(b1)

    @property
    def b1(self) -> float:
        return self._b1

    def bind(self, items: Sequence[int]) -> BoundThreshold:
        return _UniformBound(self._b1 * len(items), subtract_level=True)

    def describe(self) -> str:
        return f"adversarial(b1={self._b1:g})"


class ConstantThreshold(ThresholdPolicy):
    """The original Chosen Path policy ``s(x, j, i) = 1/(b1 |x|)``.

    The level is *not* subtracted: this is the constant-per-vector threshold
    the paper contrasts against (footnote 7).  Used by the baseline index and
    by the threshold ablation bench.
    """

    def __init__(self, b1: float):
        if not 0.0 < b1 <= 1.0:
            raise ValueError(f"b1 must be in (0, 1], got {b1}")
        self._b1 = float(b1)

    @property
    def b1(self) -> float:
        return self._b1

    def bind(self, items: Sequence[int]) -> BoundThreshold:
        return _UniformBound(self._b1 * len(items), subtract_level=False)

    def describe(self) -> str:
        return f"constant(b1={self._b1:g})"


class _CorrelatedBound(BoundThreshold):
    """Bound threshold for the correlated policy: per-item denominators."""

    def __init__(self, denominators: np.ndarray, numerator: float, item_position: dict[int, int]):
        self._denominators = denominators
        self._numerator = numerator
        self._item_position = item_position

    def sampling_probabilities(self, level: int, items: np.ndarray) -> np.ndarray:
        positions = np.fromiter(
            (self._item_position[int(item)] for item in items), dtype=np.int64, count=len(items)
        )
        denominators = self._denominators[positions] - float(level)
        probabilities = np.where(
            denominators <= 0.0, 1.0, self._numerator / np.maximum(denominators, 1e-300)
        )
        return np.clip(probabilities, 0.0, 1.0)


class CorrelatedThreshold(ThresholdPolicy):
    """The Theorem 1 policy ``s(x, j, i) = (1 + δ)/(p̂_i · m − j)``.

    Parameters
    ----------
    probabilities:
        The item-level probabilities ``p_i`` of the data distribution.
    alpha:
        Correlation level of the queries.
    num_vectors:
        Dataset size ``n`` (used to derive ``C = m / ln n`` for the default
        ``δ``).
    boost_delta:
        Explicit ``δ``; ``None`` uses the paper's ``3 / sqrt(α C)``.
    """

    def __init__(
        self,
        probabilities: np.ndarray | Sequence[float],
        alpha: float,
        num_vectors: int,
        boost_delta: float | None = None,
    ):
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if num_vectors <= 0:
            raise ValueError(f"num_vectors must be positive, got {num_vectors}")
        self._probabilities = np.asarray(probabilities, dtype=np.float64)
        if self._probabilities.ndim != 1 or self._probabilities.size == 0:
            raise ValueError("probabilities must be a non-empty 1-d array")
        if np.any(self._probabilities < 0.0) or np.any(self._probabilities > 1.0):
            raise ValueError("probabilities must lie in [0, 1]")
        self._alpha = float(alpha)
        self._num_vectors = int(num_vectors)
        self._expected_size = float(self._probabilities.sum())
        if boost_delta is None:
            boost_delta = self.default_boost_delta(
                self._alpha, self._expected_size, self._num_vectors
            )
        self._boost_delta = float(boost_delta)
        self._conditional = self._probabilities * (1.0 - self._alpha) + self._alpha

    @staticmethod
    def default_boost_delta(alpha: float, expected_size: float, num_vectors: int) -> float:
        """The paper's ``δ = 3 / sqrt(α C)`` with ``C = m / ln n``.

        Falls back to 0 when the expected size is too small for the formula
        to be meaningful (``C <= 0``).
        """
        log_n = math.log(max(num_vectors, 2))
        capital_c = expected_size / log_n if log_n > 0 else 0.0
        if capital_c <= 0.0 or alpha <= 0.0:
            return 0.0
        return 3.0 / math.sqrt(alpha * capital_c)

    @property
    def alpha(self) -> float:
        return self._alpha

    @property
    def boost_delta(self) -> float:
        return self._boost_delta

    @property
    def expected_size(self) -> float:
        """The paper's ``C log n = Σ_i p_i``."""
        return self._expected_size

    @property
    def conditional_probabilities(self) -> np.ndarray:
        """``p̂_i = p_i (1 − α) + α`` for every item of the universe."""
        return self._conditional

    def bind(self, items: Sequence[int]) -> BoundThreshold:
        item_list = [int(item) for item in items]
        if item_list and (min(item_list) < 0 or max(item_list) >= self._probabilities.size):
            raise ValueError("vector contains an item outside the universe")
        denominators = self._conditional[np.asarray(item_list, dtype=np.int64)] * (
            self._expected_size
        ) if item_list else np.empty(0, dtype=np.float64)
        item_position = {item: position for position, item in enumerate(item_list)}
        return _CorrelatedBound(denominators, 1.0 + self._boost_delta, item_position)

    def describe(self) -> str:
        return (
            f"correlated(alpha={self._alpha:g}, delta={self._boost_delta:.3f}, "
            f"m={self._expected_size:.1f})"
        )

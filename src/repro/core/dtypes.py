"""The declared dtype registry for the core engine.

Every array in the engine and the on-disk formats obeys one of these
contracts; ``repro lint`` rule RPL003 enforces them statically:

* :data:`KEY_DTYPE` — folded path keys and shard fences are ``uint64``:
  the hash domain is the full 64-bit space and the v3 format stores keys
  raw, so a narrower or signed type would corrupt probe order.
* :data:`ID_DTYPE` — vector ids are ``int64``: signed so sentinel values
  and searchsorted/diff arithmetic cannot wrap.
* :data:`OFFSET_DTYPE` — CSR offsets are ``int64`` for the same reason;
  ``np.diff`` on unsigned offsets silently wraps on any bug.

(On-disk containers may *narrow* ids/lengths for compression —
``serialization._compact_ints`` — but loading always widens back to the
registry types before anything probes the arrays.)
"""

from __future__ import annotations

import numpy as np

#: Folded path keys, shard fences: the uint64 hash domain.
KEY_DTYPE = np.uint64

#: Vector ids (postings, candidate arrays, tombstones).
ID_DTYPE = np.int64

#: CSR offset arrays (path_offsets, posting_offsets, vector_offsets).
OFFSET_DTYPE = np.int64

#: Path item ids (universe indexes); shares the id contract.
ITEM_DTYPE = np.int64

__all__ = ["KEY_DTYPE", "ID_DTYPE", "OFFSET_DTYPE", "ITEM_DTYPE"]

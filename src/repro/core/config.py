"""Configuration dataclasses for the skew-adaptive indexes.

The dataclasses bundle the parameters that the paper treats as inputs to the
data structure (similarity threshold ``b1``, correlation ``α``, the number of
repetitions used to boost success probability) together with implementation
knobs (depth and path-count safety caps) that a pure asymptotic analysis does
not need but a production implementation does.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Default number of queries processed per vectorised execution chunk by
#: ``query_batch``.  Large enough to amortise per-level hashing across many
#: frontiers, small enough to keep per-chunk memory modest.
DEFAULT_BATCH_SIZE = 256


@dataclass(frozen=True)
class BatchQueryConfig:
    """Execution parameters for the batched query subsystem.

    Attributes
    ----------
    batch_size:
        Number of queries per vectorised execution chunk.  Filter hashing,
        probe deduplication and candidate verification are amortised within
        a chunk.
    max_workers:
        When set, independent chunks are fanned out over a
        ``concurrent.futures`` thread pool of this size.  ``None`` (default)
        runs chunks serially.
    deduplicate_queries:
        Answer exact duplicate queries in a batch once and copy the result.
    shard_workers:
        Per-probe shard fan-out for sharded (mmap-loaded) postings stores:
        each chunk-repetition probe resolves its touched key-range shards
        concurrently on a thread pool of this size.  ``None`` (default)
        resolves shards serially; the knob has no effect on unsharded
        (RAM-mode) stores.
    shard_transport / shard_procs:
        Router-backed execution mode (``repro.dist``): when
        ``shard_transport`` is set, loaders open the index through a
        :class:`~repro.dist.router.ShardRouter` using that transport
        (``"inproc"``, ``"spawn"``, or ``"socket"``) with ``shard_procs``
        workers.  These are *load-time* knobs consumed by
        :func:`repro.dist.load_routed_index` and the serving layer — they
        are not per-call arguments, so :meth:`as_kwargs` excludes them.
    allow_partial:
        Router-backed execution only: serve degraded answers from the
        live shards when a worker's circuit breaker is open, instead of
        failing the batch.  Degraded batches mark the missing shards in
        ``BatchQueryStats.fanout`` (``completeness`` / ``shards_missing``)
        so callers can tell a full answer from a partial one.  No effect
        on single-process modes, which have no workers to lose.
    """

    batch_size: int = DEFAULT_BATCH_SIZE
    max_workers: int | None = None
    deduplicate_queries: bool = True
    shard_workers: int | None = None
    shard_transport: str | None = None
    shard_procs: int | None = None
    allow_partial: bool = False

    def __post_init__(self) -> None:
        if self.batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {self.batch_size}")
        if self.max_workers is not None and self.max_workers <= 0:
            raise ValueError(f"max_workers must be positive, got {self.max_workers}")
        if self.shard_workers is not None and self.shard_workers <= 0:
            raise ValueError(f"shard_workers must be positive, got {self.shard_workers}")
        if self.shard_transport is not None and self.shard_transport not in (
            "inproc",
            "spawn",
            "socket",
        ):
            raise ValueError(
                "shard_transport must be 'inproc', 'spawn', or 'socket', "
                f"got {self.shard_transport!r}"
            )
        if self.shard_procs is not None and self.shard_procs <= 0:
            raise ValueError(f"shard_procs must be positive, got {self.shard_procs}")

    def as_kwargs(self) -> dict[str, object]:
        """Keyword arguments accepted by the ``query_batch`` methods."""
        kwargs: dict[str, object] = {
            "batch_size": self.batch_size,
            "max_workers": self.max_workers,
            "deduplicate": self.deduplicate_queries,
            "shard_workers": self.shard_workers,
        }
        # Only forwarded when set: non-engine implementations (baselines)
        # accept the four standard knobs but not the degraded-mode flag.
        if self.allow_partial:
            kwargs["allow_partial"] = True
        return kwargs


@dataclass(frozen=True)
class PersistenceConfig:
    """Knobs of the index persistence layer (formats v2 and v3).

    Attributes
    ----------
    format_version:
        On-disk format ``save_index`` writes: 3 (default) is the sharded,
        mmap-native directory layout; 2 is the legacy single-file compressed
        ``.npz`` container, kept as the downgrade target for deployments
        that have not migrated.  Loading auto-detects the format regardless.
    shards:
        Number of folded-key-range shards a v3 save splits each postings
        store into.  More shards mean more parallel save/load/probe lanes
        and finer-grained lazy paging; 8 is a good default for typical
        multi-core hosts.  Ignored by v2.
    io_workers:
        Thread-pool width for writing (``save_index``) and reading
        (``load_index(mode="ram")``) v3 shard files concurrently.  ``None``
        (default) picks ``min(shards, cpu_count)``.  Ignored by v2.
    compress:
        Write the v2 array container deflate-compressed (default).  v3 is
        deliberately uncompressed — raw little-endian arrays at page-aligned
        offsets are what ``np.memmap`` can serve zero-copy.
    validate_postings:
        Verify on (RAM) load that every repetition's postings reference only
        stored vectors and in-universe items (vectorised cross-checks over
        the whole store).  Catches corrupted or hand-edited files before
        they can produce wrong query results; the cost is a few array
        passes, so leaving it on is recommended.  mmap-mode loads validate
        manifest consistency and file sizes instead — paging every shard in
        just to cross-check it would defeat lazy loading.
    """

    format_version: int = 3
    shards: int = 8
    io_workers: int | None = None
    compress: bool = True
    validate_postings: bool = True

    def __post_init__(self) -> None:
        if self.format_version not in (2, 3):
            raise ValueError(
                f"format_version must be 2 or 3, got {self.format_version}"
            )
        if self.shards <= 0:
            raise ValueError(f"shards must be positive, got {self.shards}")
        if self.io_workers is not None and self.io_workers <= 0:
            raise ValueError(f"io_workers must be positive, got {self.io_workers}")


@dataclass(frozen=True)
class SkewAdaptiveIndexConfig:
    """Parameters of the adversarial-query index (Theorem 2).

    Attributes
    ----------
    b1:
        The Braun-Blanquet similarity threshold a reported vector must meet.
    repetitions:
        Number of independent copies of the filter structure.  Each copy
        succeeds with probability at least ``1/log n`` per Lemma 5 and
        ``Θ(log n)`` copies give constant success probability; more
        repetitions boost it further (footnote 2 of the paper).  When
        ``None``, the index picks ``ceil(log2 n) + 1`` at build time.
    max_depth:
        Hard cap on the recursion depth (safety net for degenerate
        probability inputs; the product stopping rule normally fires first).
        ``None`` means "derive from n and the probabilities".
    max_paths_per_vector:
        Safety cap on the number of filters generated for any single vector
        in a single repetition.  ``None`` disables the cap.  When the cap
        triggers, the affected vector simply has fewer filters: recall can
        suffer but correctness of returned results is unaffected.
    seed:
        Seed for the hash functions.
    """

    b1: float = 0.5
    repetitions: int | None = None
    max_depth: int | None = None
    max_paths_per_vector: int | None = 50_000
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.b1 <= 1.0:
            raise ValueError(f"b1 must be in (0, 1], got {self.b1}")
        if self.repetitions is not None and self.repetitions <= 0:
            raise ValueError(f"repetitions must be positive, got {self.repetitions}")
        if self.max_depth is not None and self.max_depth <= 0:
            raise ValueError(f"max_depth must be positive, got {self.max_depth}")
        if self.max_paths_per_vector is not None and self.max_paths_per_vector <= 0:
            raise ValueError(
                f"max_paths_per_vector must be positive, got {self.max_paths_per_vector}"
            )


@dataclass(frozen=True)
class CorrelatedIndexConfig:
    """Parameters of the correlated-query index (Theorem 1).

    Attributes
    ----------
    alpha:
        The correlation level the queries are assumed to have with their
        planted partner.
    acceptance_divisor:
        A candidate is reported when its Braun-Blanquet similarity is at
        least ``alpha / acceptance_divisor``; the paper uses 1.3 (Section 6)
        so that correlated pairs pass (Lemma 10) while uncorrelated pairs,
        whose similarity concentrates below ``alpha / 1.5``, do not.
    boost_delta:
        The ``δ`` in the sampling threshold ``(1 + δ)/(p̂_i C log n − j)``.
        ``None`` means "use the paper's ``3 / sqrt(α C)``"; the paper notes a
        smaller constant is likely sufficient in practice.
    repetitions, max_depth, max_paths_per_vector, seed:
        As in :class:`SkewAdaptiveIndexConfig`.
    """

    alpha: float = 0.5
    acceptance_divisor: float = 1.3
    boost_delta: float | None = None
    repetitions: int | None = None
    max_depth: int | None = None
    max_paths_per_vector: int | None = 50_000
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {self.alpha}")
        if self.acceptance_divisor < 1.0:
            raise ValueError(
                f"acceptance_divisor must be at least 1, got {self.acceptance_divisor}"
            )
        if self.boost_delta is not None and self.boost_delta < 0.0:
            raise ValueError(f"boost_delta must be non-negative, got {self.boost_delta}")
        if self.repetitions is not None and self.repetitions <= 0:
            raise ValueError(f"repetitions must be positive, got {self.repetitions}")
        if self.max_depth is not None and self.max_depth <= 0:
            raise ValueError(f"max_depth must be positive, got {self.max_depth}")
        if self.max_paths_per_vector is not None and self.max_paths_per_vector <= 0:
            raise ValueError(
                f"max_paths_per_vector must be positive, got {self.max_paths_per_vector}"
            )

    @property
    def acceptance_threshold(self) -> float:
        """The Braun-Blanquet similarity at which candidates are reported."""
        return self.alpha / self.acceptance_divisor

"""Work accounting for index construction and queries.

The paper's evaluation is expressed in units of work (`n^ρ` filters and
candidates), not seconds.  These dataclasses record exactly those quantities
so that the benchmark harness can compare the measured work against the
analytic predictions of :mod:`repro.theory`.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Mapping


def _known_fields(cls: type, payload: Mapping[str, Any], strict: bool) -> dict[str, Any]:
    """Filter a payload down to the dataclass's fields.

    With ``strict=True`` unknown keys raise :class:`ValueError` instead of
    being dropped — persistence uses this so a file written by a newer (or
    corrupted) version fails loudly rather than silently losing fields.
    """
    known = set(cls.__dataclass_fields__)  # type: ignore[attr-defined]
    if strict:
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(
                f"unknown {cls.__name__} fields {unknown}; "
                f"expected a subset of {sorted(known)}"
            )
    return {key: value for key, value in payload.items() if key in known}


@dataclass
class KernelStats:
    """Per-stage work counts reported by the hot-path kernels.

    Each field mirrors one slot of the kernel counter vector (see
    :mod:`repro.core.kernels._contract`); the totals are bit-identical
    across the numba and numpy backends, so they double as an equivalence
    observable in the cross-backend test suites.

    Attributes
    ----------
    paths_extended:
        Candidate extensions the path-extension kernel accepted (hash below
        the sampling probability), before any truncation zeroing.
    keys_folded:
        Candidate keys submitted to the SplitMix64 fold, accepted or not.
    chain_probes:
        Pairwise path comparisons the forced-collision chain resolver
        performed while bucketing same-key entries during ``compact``.
    merge_rows:
        Rows fed through the sort/unique merge kernels (CSR posting-segment
        merges and candidate dedupe).
    dedupe_hits:
        Rows the merge kernels dropped as duplicates.
    """

    paths_extended: int = 0
    keys_folded: int = 0
    chain_probes: int = 0
    merge_rows: int = 0
    dedupe_hits: int = 0

    def add(self, other: "KernelStats") -> None:
        """Accumulate another kernel-stats record into this one (in place)."""
        self.paths_extended += other.paths_extended
        self.keys_folded += other.keys_folded
        self.chain_probes += other.chain_probes
        self.merge_rows += other.merge_rows
        self.dedupe_hits += other.dedupe_hits

    def add_counters(self, counters: Any) -> None:
        """Fold a kernel counter vector (``int64[NUM_COUNTERS]``) in place.

        The argument is the caller-owned numpy array the kernels accumulate
        into; field order matches ``repro.core.kernels.COUNTER_NAMES``.
        """
        self.paths_extended += int(counters[0])
        self.keys_folded += int(counters[1])
        self.chain_probes += int(counters[2])
        self.merge_rows += int(counters[3])
        self.dedupe_hits += int(counters[4])

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (JSON-serialisable)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any], strict: bool = False) -> "KernelStats":
        """Inverse of :meth:`to_dict`.

        Unknown keys are ignored by default; with ``strict=True`` they raise
        :class:`ValueError` (used by the persistence layer).
        """
        return cls(**_known_fields(cls, payload, strict))


def _kernel_from_payload(payload: Any, strict: bool) -> KernelStats:
    """Coerce a ``kernel`` payload entry back into :class:`KernelStats`."""
    if isinstance(payload, KernelStats):
        return payload
    if payload is None:
        return KernelStats()
    return KernelStats.from_dict(payload, strict=strict)


@dataclass
class ShardFanoutStats:
    """Cross-shard execution accounting of the router-backed query mode.

    One slot per shard *worker* (a process or remote server owning a
    contiguous shard range), parallel lists so the record stays a flat,
    JSON-friendly dataclass.  A non-routed execution leaves every list
    empty — ``workers == 0`` means "no fan-out happened", not "one worker".

    Attributes
    ----------
    workers:
        Fan-out width (number of shard workers the router owns).
    requests:
        Probe round-trips sent to each worker.
    rows:
        Posting rows each worker returned (CSR ``ids`` lengths summed).
    seconds:
        Wall-clock seconds spent waiting on each worker, summed over
        requests (includes transport + worker-side resolution time).
    failures:
        Transport failures observed per worker (timeouts, dead processes,
        dropped connections) — counted even when recovery succeeded.
    respawns:
        Successful automatic recoveries per worker (process respawns for
        the spawn transport, reconnects for sockets).
    aborts:
        Requests per worker that were abandoned because the query's
        deadline expired (router-side pre-send checks plus worker-side
        mid-probe aborts) — budget outcomes, not worker faults.
    completeness:
        Fraction of shards that contributed to the answer: ``1.0`` for a
        full answer, lower when ``allow_partial`` served around open
        circuit breakers.  Accumulating records keeps the minimum (the
        worst batch's guarantee is the honest one to report).
    shards_missing:
        Sorted shard ids whose postings are absent from a degraded
        answer (empty for full answers); accumulating unions them.
    """

    workers: int = 0
    requests: list[int] = field(default_factory=list)
    rows: list[int] = field(default_factory=list)
    seconds: list[float] = field(default_factory=list)
    failures: list[int] = field(default_factory=list)
    respawns: list[int] = field(default_factory=list)
    aborts: list[int] = field(default_factory=list)
    completeness: float = 1.0
    shards_missing: list[int] = field(default_factory=list)

    @classmethod
    def sized(cls, workers: int) -> "ShardFanoutStats":
        """A zeroed record with one slot per worker."""
        return cls(
            workers=workers,
            requests=[0] * workers,
            rows=[0] * workers,
            seconds=[0.0] * workers,
            failures=[0] * workers,
            respawns=[0] * workers,
            aborts=[0] * workers,
        )

    def _resize(self, workers: int) -> None:
        if workers <= self.workers:
            return
        grow = workers - len(self.requests)
        self.requests.extend([0] * grow)
        self.rows.extend([0] * grow)
        self.seconds.extend([0.0] * grow)
        self.failures.extend([0] * grow)
        self.respawns.extend([0] * grow)
        self.aborts.extend([0] * max(0, workers - len(self.aborts)))
        self.workers = workers

    def add(self, other: "ShardFanoutStats") -> None:
        """Accumulate another fan-out record into this one (in place).

        Worker slots are matched by position; the record grows to the wider
        of the two, so folding a routed batch into a fresh accumulator just
        adopts its shape.  Degradation markers accumulate pessimistically:
        ``completeness`` keeps the minimum and ``shards_missing`` the
        union, so a merged record never overstates what was answered.
        """
        self._resize(other.workers)
        if len(self.aborts) < self.workers:
            self.aborts.extend([0] * (self.workers - len(self.aborts)))
        for worker in range(other.workers):
            self.requests[worker] += other.requests[worker]
            self.rows[worker] += other.rows[worker]
            self.seconds[worker] += other.seconds[worker]
            self.failures[worker] += other.failures[worker]
            self.respawns[worker] += other.respawns[worker]
            if worker < len(other.aborts):
                self.aborts[worker] += other.aborts[worker]
        self.completeness = min(self.completeness, other.completeness)
        if other.shards_missing:
            self.shards_missing = sorted(
                set(self.shards_missing) | set(other.shards_missing)
            )

    @property
    def total_requests(self) -> int:
        """Probe round-trips summed over all workers."""
        return sum(self.requests)

    @property
    def total_rows(self) -> int:
        """Posting rows returned, summed over all workers."""
        return sum(self.rows)

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (JSON-serialisable)."""
        return asdict(self)

    @classmethod
    def from_dict(
        cls, payload: Mapping[str, Any], strict: bool = False
    ) -> "ShardFanoutStats":
        """Inverse of :meth:`to_dict`.

        Unknown keys are ignored by default; with ``strict=True`` they raise
        :class:`ValueError` (used by the persistence layer).  The parallel
        lists must agree with ``workers`` — a payload whose lists drifted
        apart is corrupt, not merely stale.
        """
        fields = _known_fields(cls, payload, strict)
        workers = int(fields.get("workers", 0))
        record = cls(
            workers=workers,
            requests=[int(v) for v in fields.get("requests", [])],
            rows=[int(v) for v in fields.get("rows", [])],
            seconds=[float(v) for v in fields.get("seconds", [])],
            failures=[int(v) for v in fields.get("failures", [])],
            respawns=[int(v) for v in fields.get("respawns", [])],
            # Absent in records written before degraded-mode support:
            # default to "no aborts, full answer" rather than rejecting.
            aborts=[int(v) for v in fields.get("aborts", [0] * workers)],
            completeness=float(fields.get("completeness", 1.0)),
            shards_missing=sorted(int(v) for v in fields.get("shards_missing", [])),
        )
        for name in ("requests", "rows", "seconds", "failures", "respawns", "aborts"):
            values = getattr(record, name)
            if len(values) != record.workers:
                raise ValueError(
                    f"ShardFanoutStats payload is inconsistent: {name} has "
                    f"{len(values)} entries for {record.workers} workers"
                )
        if not 0.0 <= record.completeness <= 1.0:
            raise ValueError(
                f"ShardFanoutStats payload is inconsistent: completeness "
                f"{record.completeness} is outside [0, 1]"
            )
        return record


def _fanout_from_payload(payload: Any, strict: bool) -> ShardFanoutStats:
    """Coerce a ``fanout`` payload entry back into :class:`ShardFanoutStats`."""
    if isinstance(payload, ShardFanoutStats):
        return payload
    if payload is None:
        return ShardFanoutStats()
    return ShardFanoutStats.from_dict(payload, strict=strict)


@dataclass
class BuildStats:
    """Statistics collected while building an index.

    ``build_seconds`` records the wall-clock time of the build;
    ``generation_batches`` counts the vectorised generation batches the
    build was executed in (0 for non-batched builders); ``kernel`` carries
    the per-stage kernel work counters accumulated across path generation
    and index compaction.
    """

    num_vectors: int = 0
    total_filters: int = 0
    truncated_vectors: int = 0
    repetitions: int = 0
    build_seconds: float = 0.0
    generation_batches: int = 0
    kernel: KernelStats = field(default_factory=KernelStats)

    @property
    def filters_per_vector(self) -> float:
        """Average number of filters stored per vector (all repetitions)."""
        if self.num_vectors == 0:
            return 0.0
        return self.total_filters / self.num_vectors

    def merge(self, other: "BuildStats") -> "BuildStats":
        """Combine statistics from two builds (e.g. per-repetition builds)."""
        merged_kernel = KernelStats()
        merged_kernel.add(self.kernel)
        merged_kernel.add(other.kernel)
        return BuildStats(
            num_vectors=max(self.num_vectors, other.num_vectors),
            total_filters=self.total_filters + other.total_filters,
            truncated_vectors=self.truncated_vectors + other.truncated_vectors,
            repetitions=self.repetitions + other.repetitions,
            build_seconds=self.build_seconds + other.build_seconds,
            generation_batches=self.generation_batches + other.generation_batches,
            kernel=merged_kernel,
        )

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (JSON-serialisable)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any], strict: bool = False) -> "BuildStats":
        """Inverse of :meth:`to_dict`.

        Unknown keys are ignored by default; with ``strict=True`` they raise
        :class:`ValueError` (used by the persistence layer).
        """
        fields = _known_fields(cls, payload, strict)
        fields["kernel"] = _kernel_from_payload(fields.get("kernel"), strict)
        return cls(**fields)


@dataclass
class QueryStats:
    """Statistics collected while answering one query.

    Attributes
    ----------
    filters_generated:
        ``|F(q)|`` summed over repetitions — the number of paths the query
        chose.
    candidates_examined:
        Number of (filter, stored vector) collisions inspected, i.e.
        ``Σ_x |F(q) ∩ F(x)|`` in the paper's notation.  This is the
        dominating term of the query cost in Lemma 7.
    unique_candidates:
        Number of distinct dataset vectors whose similarity was evaluated.
    similarity_evaluations:
        Number of exact similarity computations performed (equals
        ``unique_candidates`` unless early termination skipped some).
    found:
        Whether a vector satisfying the acceptance predicate was returned.
    repetitions_used:
        Number of repetitions inspected before the query terminated.
    shards_probed:
        Number of (repetition, shard) probe tables the query's filters
        routed to.  An in-memory (RAM-mode) store counts as one shard per
        repetition probed; a sharded mmap store counts the distinct
        key-range shards actually touched — this is an execution-strategy
        observable, not part of the paper's work measure, so it is the one
        counter allowed to differ between RAM and mmap mode.
    from_cache:
        True when this entry describes a query answered from a batch's
        duplicate-query cache: the result is the cached answer and the work
        counters are zeroed, so aggregating ``per_query`` work never counts
        the original execution twice.
    kernel:
        Per-stage work counts reported by the hot-path kernels this query
        drove (path extension, CSR merges); see :class:`KernelStats`.
    """

    filters_generated: int = 0
    candidates_examined: int = 0
    unique_candidates: int = 0
    similarity_evaluations: int = 0
    found: bool = False
    repetitions_used: int = 0
    shards_probed: int = 0
    from_cache: bool = False
    kernel: KernelStats = field(default_factory=KernelStats)

    def add(self, other: "QueryStats") -> None:
        """Accumulate another query's statistics into this one (in place)."""
        self.filters_generated += other.filters_generated
        self.candidates_examined += other.candidates_examined
        self.unique_candidates += other.unique_candidates
        self.similarity_evaluations += other.similarity_evaluations
        self.found = self.found or other.found
        self.repetitions_used += other.repetitions_used
        self.shards_probed += other.shards_probed
        self.kernel.add(other.kernel)

    @property
    def total_work(self) -> int:
        """A single work figure: filters generated plus candidates examined."""
        return self.filters_generated + self.candidates_examined

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (JSON-serialisable)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any], strict: bool = False) -> "QueryStats":
        """Inverse of :meth:`to_dict`.

        Unknown keys are ignored by default; with ``strict=True`` they raise
        :class:`ValueError` (used by the persistence layer).
        """
        fields = _known_fields(cls, payload, strict)
        fields["kernel"] = _kernel_from_payload(fields.get("kernel"), strict)
        return cls(**fields)


@dataclass
class BatchQueryStats:
    """Statistics for one ``query_batch`` / ``query_candidates_batch`` call.

    The per-query entries reflect the work the *batched* execution actually
    performed for each query: results are identical to running the queries
    one by one, but some counters (e.g. ``similarity_evaluations``) can
    differ from the serial execution because verification is vectorised over
    whole candidate lists and filter generation is amortised.

    Attributes
    ----------
    num_queries:
        Number of queries in the batch (including deduplicated ones).
    per_query:
        One :class:`QueryStats` per input query, in input order.
    distinct_filter_probes:
        Number of distinct (repetition, filter) inverted-index lookups the
        batch performed.
    duplicate_filter_probes:
        Lookups answered from the batch probe cache because another query in
        the batch (or an earlier repetition pass) already probed the same
        filter — the "dedupe hits".
    queries_deduplicated:
        Queries that were exact duplicates of an earlier query in the batch
        and were answered without re-executing.
    elapsed_seconds:
        Wall-clock time of the whole batch call.
    generation_seconds / verification_seconds:
        Time spent in batched filter generation and in candidate
        verification (0 for loop-based fallbacks that do not split phases).
    merge_seconds:
        Time spent in the CSR probe/merge phase — resolving the batch's
        folded path keys against the postings store and merging the gathered
        posting segments into per-query candidate sets.
    shards_probed:
        Number of (chunk, repetition, shard) probe-table visits the batch's
        deduplicated probe sets performed.  A RAM-mode store is one shard,
        so this counts probed repetitions per chunk; a sharded mmap store
        counts the distinct key-range shards each chunk-repetition probe
        actually touched (the fan-out width the per-shard thread pool can
        exploit).
    minor_page_faults / major_page_faults:
        Process-wide page-fault deltas (``getrusage``) across the batch
        call.  Chiefly interesting in mmap mode, where major faults are the
        cost of paging cold shards in from disk; 0 on platforms without
        ``resource``.  Advisory — concurrent activity in the process is
        included.
    kernel:
        Batch-wide kernel work counts (path extension, chain resolution,
        CSR merges) summed across every chunk and repetition; see
        :class:`KernelStats`.
    fanout:
        Cross-shard execution accounting when the batch ran through a
        :class:`~repro.dist.router.ShardRouter` (per-worker requests, rows,
        latency, failures); an empty record (``workers == 0``) in every
        single-process mode.  See :class:`ShardFanoutStats`.
    """

    num_queries: int = 0
    per_query: list[QueryStats] = field(default_factory=list)
    distinct_filter_probes: int = 0
    duplicate_filter_probes: int = 0
    queries_deduplicated: int = 0
    elapsed_seconds: float = 0.0
    generation_seconds: float = 0.0
    verification_seconds: float = 0.0
    merge_seconds: float = 0.0
    shards_probed: int = 0
    minor_page_faults: int = 0
    major_page_faults: int = 0
    kernel: KernelStats = field(default_factory=KernelStats)
    fanout: ShardFanoutStats = field(default_factory=ShardFanoutStats)

    @property
    def dedupe_hit_rate(self) -> float:
        """Fraction of filter probes answered from the batch probe cache."""
        total = self.distinct_filter_probes + self.duplicate_filter_probes
        if total == 0:
            return 0.0
        return self.duplicate_filter_probes / total

    @property
    def num_found(self) -> int:
        """Number of queries that found an acceptable vector."""
        return sum(1 for stats in self.per_query if stats.found)

    @property
    def queries_per_second(self) -> float:
        """Throughput of the batch call (0 when no time was recorded)."""
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return self.num_queries / self.elapsed_seconds

    @property
    def total_work(self) -> int:
        """Total filters generated plus candidates examined over the batch."""
        return sum(stats.total_work for stats in self.per_query)

    def accumulate(self, other: "BatchQueryStats", per_query: bool = False) -> None:
        """Fold another batch's counters into this one, in place.

        The in-place counterpart of :meth:`merge` for long-running
        aggregation (the serving layer folds every coalesced engine call
        into one accumulator for ``/stats``): all scalar counters and phase
        timings are added, while the ``per_query`` list is **not** extended
        unless explicitly requested — an accumulator that lives for the
        process lifetime must stay bounded.
        """
        self.num_queries += other.num_queries
        self.distinct_filter_probes += other.distinct_filter_probes
        self.duplicate_filter_probes += other.duplicate_filter_probes
        self.queries_deduplicated += other.queries_deduplicated
        self.elapsed_seconds += other.elapsed_seconds
        self.generation_seconds += other.generation_seconds
        self.verification_seconds += other.verification_seconds
        self.merge_seconds += other.merge_seconds
        self.shards_probed += other.shards_probed
        self.minor_page_faults += other.minor_page_faults
        self.major_page_faults += other.major_page_faults
        self.kernel.add(other.kernel)
        self.fanout.add(other.fanout)
        if per_query:
            self.per_query.extend(other.per_query)

    def summary(self) -> dict[str, Any]:
        """Compact scalar view (no per-query entries), JSON-serialisable.

        The serving layer exposes this on ``/stats``: everything
        :meth:`to_dict` reports except the unbounded ``per_query`` list,
        plus the derived ``dedupe_hit_rate`` and ``queries_per_second``.
        """
        payload = asdict(self)
        del payload["per_query"]
        payload["dedupe_hit_rate"] = self.dedupe_hit_rate
        payload["queries_per_second"] = self.queries_per_second
        return payload

    def merge(self, other: "BatchQueryStats") -> "BatchQueryStats":
        """Combine two batch results (e.g. chunks of a larger batch)."""
        merged_kernel = KernelStats()
        merged_kernel.add(self.kernel)
        merged_kernel.add(other.kernel)
        merged_fanout = ShardFanoutStats()
        merged_fanout.add(self.fanout)
        merged_fanout.add(other.fanout)
        return BatchQueryStats(
            num_queries=self.num_queries + other.num_queries,
            per_query=self.per_query + other.per_query,
            distinct_filter_probes=self.distinct_filter_probes + other.distinct_filter_probes,
            duplicate_filter_probes=self.duplicate_filter_probes
            + other.duplicate_filter_probes,
            queries_deduplicated=self.queries_deduplicated + other.queries_deduplicated,
            elapsed_seconds=self.elapsed_seconds + other.elapsed_seconds,
            generation_seconds=self.generation_seconds + other.generation_seconds,
            verification_seconds=self.verification_seconds + other.verification_seconds,
            merge_seconds=self.merge_seconds + other.merge_seconds,
            shards_probed=self.shards_probed + other.shards_probed,
            minor_page_faults=self.minor_page_faults + other.minor_page_faults,
            major_page_faults=self.major_page_faults + other.major_page_faults,
            kernel=merged_kernel,
            fanout=merged_fanout,
        )

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (JSON-serialisable, nested per-query stats)."""
        payload = asdict(self)
        payload["per_query"] = [stats.to_dict() for stats in self.per_query]
        return payload

    @classmethod
    def from_dict(
        cls, payload: Mapping[str, Any], strict: bool = False
    ) -> "BatchQueryStats":
        """Inverse of :meth:`to_dict`.

        Unknown keys are ignored by default; with ``strict=True`` they raise
        :class:`ValueError` (used by the persistence layer).
        """
        fields = _known_fields(cls, payload, strict)
        fields["per_query"] = [
            QueryStats.from_dict(entry, strict=strict)
            for entry in fields.get("per_query", [])
        ]
        fields["kernel"] = _kernel_from_payload(fields.get("kernel"), strict)
        fields["fanout"] = _fanout_from_payload(fields.get("fanout"), strict)
        return cls(**fields)


@dataclass
class AggregatedQueryStats:
    """Aggregate of many :class:`QueryStats`, as produced by the harness."""

    num_queries: int = 0
    total_filters_generated: int = 0
    total_candidates_examined: int = 0
    total_unique_candidates: int = 0
    total_similarity_evaluations: int = 0
    num_found: int = 0
    per_query: list[QueryStats] = field(default_factory=list)

    def record(self, stats: QueryStats) -> None:
        """Add one query's statistics to the aggregate."""
        self.num_queries += 1
        self.total_filters_generated += stats.filters_generated
        self.total_candidates_examined += stats.candidates_examined
        self.total_unique_candidates += stats.unique_candidates
        self.total_similarity_evaluations += stats.similarity_evaluations
        self.num_found += 1 if stats.found else 0
        self.per_query.append(stats)

    @property
    def mean_candidates(self) -> float:
        """Average candidates examined per query."""
        if self.num_queries == 0:
            return 0.0
        return self.total_candidates_examined / self.num_queries

    @property
    def mean_filters(self) -> float:
        """Average filters generated per query."""
        if self.num_queries == 0:
            return 0.0
        return self.total_filters_generated / self.num_queries

    @property
    def mean_work(self) -> float:
        """Average total work (filters + candidates) per query."""
        if self.num_queries == 0:
            return 0.0
        return (
            self.total_filters_generated + self.total_candidates_examined
        ) / self.num_queries

    @property
    def success_rate(self) -> float:
        """Fraction of queries that found an acceptable vector."""
        if self.num_queries == 0:
            return 0.0
        return self.num_found / self.num_queries

"""Work accounting for index construction and queries.

The paper's evaluation is expressed in units of work (`n^ρ` filters and
candidates), not seconds.  These dataclasses record exactly those quantities
so that the benchmark harness can compare the measured work against the
analytic predictions of :mod:`repro.theory`.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class BuildStats:
    """Statistics collected while building an index."""

    num_vectors: int = 0
    total_filters: int = 0
    truncated_vectors: int = 0
    repetitions: int = 0

    @property
    def filters_per_vector(self) -> float:
        """Average number of filters stored per vector (all repetitions)."""
        if self.num_vectors == 0:
            return 0.0
        return self.total_filters / self.num_vectors

    def merge(self, other: "BuildStats") -> "BuildStats":
        """Combine statistics from two builds (e.g. per-repetition builds)."""
        return BuildStats(
            num_vectors=max(self.num_vectors, other.num_vectors),
            total_filters=self.total_filters + other.total_filters,
            truncated_vectors=self.truncated_vectors + other.truncated_vectors,
            repetitions=self.repetitions + other.repetitions,
        )


@dataclass
class QueryStats:
    """Statistics collected while answering one query.

    Attributes
    ----------
    filters_generated:
        ``|F(q)|`` summed over repetitions — the number of paths the query
        chose.
    candidates_examined:
        Number of (filter, stored vector) collisions inspected, i.e.
        ``Σ_x |F(q) ∩ F(x)|`` in the paper's notation.  This is the
        dominating term of the query cost in Lemma 7.
    unique_candidates:
        Number of distinct dataset vectors whose similarity was evaluated.
    similarity_evaluations:
        Number of exact similarity computations performed (equals
        ``unique_candidates`` unless early termination skipped some).
    found:
        Whether a vector satisfying the acceptance predicate was returned.
    repetitions_used:
        Number of repetitions inspected before the query terminated.
    """

    filters_generated: int = 0
    candidates_examined: int = 0
    unique_candidates: int = 0
    similarity_evaluations: int = 0
    found: bool = False
    repetitions_used: int = 0

    def add(self, other: "QueryStats") -> None:
        """Accumulate another query's statistics into this one (in place)."""
        self.filters_generated += other.filters_generated
        self.candidates_examined += other.candidates_examined
        self.unique_candidates += other.unique_candidates
        self.similarity_evaluations += other.similarity_evaluations
        self.found = self.found or other.found
        self.repetitions_used += other.repetitions_used

    @property
    def total_work(self) -> int:
        """A single work figure: filters generated plus candidates examined."""
        return self.filters_generated + self.candidates_examined


@dataclass
class AggregatedQueryStats:
    """Aggregate of many :class:`QueryStats`, as produced by the harness."""

    num_queries: int = 0
    total_filters_generated: int = 0
    total_candidates_examined: int = 0
    total_unique_candidates: int = 0
    total_similarity_evaluations: int = 0
    num_found: int = 0
    per_query: list[QueryStats] = field(default_factory=list)

    def record(self, stats: QueryStats) -> None:
        """Add one query's statistics to the aggregate."""
        self.num_queries += 1
        self.total_filters_generated += stats.filters_generated
        self.total_candidates_examined += stats.candidates_examined
        self.total_unique_candidates += stats.unique_candidates
        self.total_similarity_evaluations += stats.similarity_evaluations
        self.num_found += 1 if stats.found else 0
        self.per_query.append(stats)

    @property
    def mean_candidates(self) -> float:
        """Average candidates examined per query."""
        if self.num_queries == 0:
            return 0.0
        return self.total_candidates_examined / self.num_queries

    @property
    def mean_filters(self) -> float:
        """Average filters generated per query."""
        if self.num_queries == 0:
            return 0.0
        return self.total_filters_generated / self.num_queries

    @property
    def mean_work(self) -> float:
        """Average total work (filters + candidates) per query."""
        if self.num_queries == 0:
            return 0.0
        return (
            self.total_filters_generated + self.total_candidates_examined
        ) / self.num_queries

    @property
    def success_rate(self) -> float:
        """Fraction of queries that found an acceptable vector."""
        if self.num_queries == 0:
            return 0.0
        return self.num_found / self.num_queries

"""Set similarity join built on the batched query subsystem.

Section 1.1 of the paper observes that the indexing results transfer to the
similarity join problem: preprocess ``S`` into the search structure and probe
it once per element of ``R``, giving time ``O(d |R| |S|^ρ)`` when the output
is small.  :func:`similarity_join` implements that strategy as a *batched
consumer*: the probe collection is streamed through the index's batched
candidate enumeration in chunks, so filter hashing, probe deduplication and
candidate merging are amortised across probes instead of repeating an
isolated single-query loop ``|R|`` times.  Indexes exposing
``query_candidates_arrays_batch`` (the filter-engine family) hand the CSR
merge's sorted id arrays straight to verification — no per-probe Python set
is ever materialised; others fall back to ``query_candidates_batch`` and
finally to per-probe queries.  Candidates are always verified exactly
against the requested similarity predicate, so the reported pairs are never
false positives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Protocol, Sequence

import numpy as np

from repro.core.config import DEFAULT_BATCH_SIZE
from repro.core.stats import QueryStats, ShardFanoutStats
from repro.similarity.predicates import SimilarityPredicate

SetLike = Iterable[int]


class _CandidateIndex(Protocol):
    """Anything that can enumerate join candidates for a probe set."""

    def query_candidates(self, query: SetLike) -> tuple[set[int], QueryStats]:
        ...

    def get_vector(self, vector_id: int) -> frozenset[int]:
        ...


@dataclass
class JoinResult:
    """Outcome of a similarity join.

    Attributes
    ----------
    pairs:
        List of ``(r_index, s_index, similarity)`` triples meeting the
        predicate.  ``r_index`` indexes the probe collection ``R`` and
        ``s_index`` the indexed collection ``S``.
    candidates_examined:
        Total (filter, vector) collisions across all probes.
    similarity_evaluations:
        Number of exact similarity evaluations performed.
    num_probes:
        Number of probe sets processed.
    fanout:
        Accumulated shard fan-out telemetry across all probe batches.  On a
        degraded router-backed join (``allow_partial=True`` with an open
        circuit breaker) ``fanout.completeness`` drops below 1 and
        ``fanout.shards_missing`` lists the skipped shards; everywhere else
        it stays at the pristine default.
    """

    pairs: list[tuple[int, int, float]] = field(default_factory=list)
    candidates_examined: int = 0
    similarity_evaluations: int = 0
    num_probes: int = 0
    fanout: ShardFanoutStats = field(default_factory=ShardFanoutStats)

    @property
    def num_pairs(self) -> int:
        return len(self.pairs)

    def pair_set(self) -> set[tuple[int, int]]:
        """The reported (r_index, s_index) pairs as a set, ignoring scores."""
        return {(r_index, s_index) for r_index, s_index, _similarity in self.pairs}


def similarity_join(
    index: _CandidateIndex,
    probes: Sequence[SetLike],
    predicate: SimilarityPredicate,
    batch_size: int | None = None,
    shard_workers: int | None = None,
    allow_partial: bool = False,
    deadline: float | None = None,
) -> JoinResult:
    """Join a probe collection ``R`` against an already-built index over ``S``.

    Parameters
    ----------
    index:
        A built index over ``S`` (e.g. :class:`~repro.core.SkewAdaptiveIndex`).
    probes:
        The collection ``R``; each element is probed once.  When the index
        exposes ``query_candidates_batch`` the probes are streamed through
        it in chunks of ``batch_size``, amortising filter generation and
        deduplicating shared probes across the batch.
    predicate:
        The similarity predicate the reported pairs must satisfy; candidates
        are verified exactly, so precision is 1 by construction (recall
        depends on the index's filters).
    batch_size:
        Probes per batch (default
        :data:`~repro.core.config.DEFAULT_BATCH_SIZE`).
    shard_workers:
        Per-probe shard fan-out forwarded to the index's batched candidate
        enumeration — on an mmap-loaded (sharded) index each batch probe
        resolves its touched key-range shards concurrently on a thread pool
        of this size.  ``None`` (default) resolves shards serially and is
        also what indexes without sharded storage expect.
    allow_partial:
        Router-backed indexes only: serve the join from live shards when a
        worker's circuit breaker is open instead of failing (degraded
        pairs are a subset of the full join).  Forwarded only when set, so
        baseline indexes without the flag keep working.
    deadline:
        Absolute ``time.time()`` epoch after which the join must stop;
        forwarded to the batched candidate enumeration (engine-family
        indexes raise ``DeadlineExceededError`` past it).
    """
    result = JoinResult()
    probe_sets = [frozenset(int(item) for item in probe) for probe in probes]
    result.num_probes = len(probe_sets)

    def verify(
        probe_index: int, probe_set: frozenset[int], candidates: Iterable[int]
    ) -> None:
        # ``candidates`` is either a sorted id array (the CSR merge's native
        # output, consumed as-is) or a set from a fallback path; both are
        # verified in ascending id order, so results are identical.
        ordered = candidates if isinstance(candidates, np.ndarray) else sorted(candidates)
        for candidate_id in ordered:
            candidate_id = int(candidate_id)
            stored = index.get_vector(candidate_id)
            similarity = predicate.similarity(stored, probe_set)
            result.similarity_evaluations += 1
            if similarity >= predicate.threshold:
                result.pairs.append((probe_index, candidate_id, similarity))

    batch_method = getattr(index, "query_candidates_arrays_batch", None)
    if batch_method is None:
        batch_method = getattr(index, "query_candidates_batch", None)
    if batch_method is not None:
        chunk_size = batch_size if batch_size is not None else DEFAULT_BATCH_SIZE
        if chunk_size <= 0:
            raise ValueError(f"batch_size must be positive, got {chunk_size}")
        batch_kwargs: dict[str, Any] = {"batch_size": chunk_size}
        if shard_workers is not None:
            batch_kwargs["shard_workers"] = shard_workers
        if allow_partial:
            batch_kwargs["allow_partial"] = True
        if deadline is not None:
            batch_kwargs["deadline"] = deadline
        for start in range(0, len(probe_sets), chunk_size):
            block = probe_sets[start : start + chunk_size]
            candidate_lists, batch_stats = batch_method(block, **batch_kwargs)
            result.candidates_examined += sum(
                stats.candidates_examined for stats in batch_stats.per_query
            )
            result.fanout.add(batch_stats.fanout)
            for offset, (probe_set, candidates) in enumerate(zip(block, candidate_lists)):
                if not probe_set:
                    continue
                verify(start + offset, probe_set, candidates)
        return result

    for probe_index, probe_set in enumerate(probe_sets):
        if not probe_set:
            continue
        candidates, stats = index.query_candidates(probe_set)
        result.candidates_examined += stats.candidates_examined
        verify(probe_index, probe_set, candidates)
    return result


def similarity_self_join(
    index: _CandidateIndex,
    collection: Sequence[SetLike],
    predicate: SimilarityPredicate,
    include_self_pairs: bool = False,
    batch_size: int | None = None,
    shard_workers: int | None = None,
) -> JoinResult:
    """Self-join: find all similar pairs inside one collection.

    The index must have been built over ``collection`` with ids matching the
    positions in the sequence.  Each unordered pair is reported once, as
    ``(i, j)`` with ``i < j``.

    Parameters
    ----------
    index:
        A built index over ``collection``.
    collection:
        The collection itself (used as the probes).
    predicate:
        Similarity predicate for reported pairs.
    include_self_pairs:
        Report the trivial ``(i, i)`` pairs as well (disabled by default).
    batch_size / shard_workers:
        Forwarded to :func:`similarity_join`.
    """
    raw = similarity_join(
        index, collection, predicate, batch_size=batch_size, shard_workers=shard_workers
    )
    seen: set[tuple[int, int]] = set()
    deduplicated: list[tuple[int, int, float]] = []
    for probe_index, candidate_id, similarity in raw.pairs:
        if probe_index == candidate_id:
            if include_self_pairs:
                key = (probe_index, candidate_id)
                if key not in seen:
                    seen.add(key)
                    deduplicated.append((probe_index, candidate_id, similarity))
            continue
        low, high = sorted((probe_index, candidate_id))
        key = (low, high)
        if key not in seen:
            seen.add(key)
            deduplicated.append((low, high, similarity))
    return JoinResult(
        pairs=deduplicated,
        candidates_examined=raw.candidates_examined,
        similarity_evaluations=raw.similarity_evaluations,
        num_probes=raw.num_probes,
        fanout=raw.fanout,
    )

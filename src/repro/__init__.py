"""repro — skew-adaptive set similarity search.

A from-scratch reproduction of *Set Similarity Search for Skewed Data*
(McCauley, Mikkelsen, Pagh — PODS 2018).  The library implements the paper's
recursive, distribution-aware locality-sensitive filtering data structure for
both query models analysed in the paper, the baselines it compares against,
the random data model, and the full analytic and empirical evaluation.

Quickstart
----------
>>> import numpy as np
>>> from repro import ItemDistribution, CorrelatedIndex
>>> rng_probabilities = np.concatenate([np.full(50, 0.25), np.full(1000, 0.01)])
>>> distribution = ItemDistribution(rng_probabilities)
>>> dataset = distribution.sample_many(500, np.random.default_rng(0))
>>> index = CorrelatedIndex(distribution, alpha=0.7, seed=1)
>>> _ = index.build(dataset)
>>> query = distribution.sample_correlated(dataset[3], 0.7, np.random.default_rng(2))
>>> match, stats = index.query(query)

See ``examples/`` for runnable scripts and ``docs/`` for the reference
documentation (serving guide, on-disk index formats, CLI, benchmarks).
"""

from repro.baselines import (
    BruteForceIndex,
    ChosenPathIndex,
    MinHashIndex,
    PrefixFilterIndex,
)
from repro.core import (
    BatchQueryConfig,
    BatchQueryStats,
    CorrelatedIndex,
    CorrelatedIndexConfig,
    JoinResult,
    PersistenceConfig,
    SkewAdaptiveIndex,
    SkewAdaptiveIndexConfig,
    convert_index_file,
    describe_index_file,
    load_index,
    save_index,
    similarity_join,
    similarity_self_join,
)
from repro.data import (
    ItemDistribution,
    SetCollection,
    generate_benchmark_like,
    harmonic_probabilities,
    piecewise_zipfian_probabilities,
    two_block_probabilities,
    uniform_probabilities,
    zipfian_probabilities,
)
from repro.similarity import SimilarityPredicate, braun_blanquet, jaccard
from repro.theory import (
    chosen_path_rho,
    solve_adversarial_rho,
    solve_correlated_rho,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # Core indexes and joins
    "SkewAdaptiveIndex",
    "SkewAdaptiveIndexConfig",
    "CorrelatedIndex",
    "CorrelatedIndexConfig",
    "BatchQueryConfig",
    "BatchQueryStats",
    "similarity_join",
    "similarity_self_join",
    "JoinResult",
    # Persistence
    "PersistenceConfig",
    "save_index",
    "load_index",
    "convert_index_file",
    "describe_index_file",
    # Baselines
    "BruteForceIndex",
    "ChosenPathIndex",
    "MinHashIndex",
    "PrefixFilterIndex",
    # Data model
    "ItemDistribution",
    "SetCollection",
    "generate_benchmark_like",
    "harmonic_probabilities",
    "piecewise_zipfian_probabilities",
    "two_block_probabilities",
    "uniform_probabilities",
    "zipfian_probabilities",
    # Similarity
    "SimilarityPredicate",
    "braun_blanquet",
    "jaccard",
    # Theory
    "chosen_path_rho",
    "solve_adversarial_rho",
    "solve_correlated_rho",
]

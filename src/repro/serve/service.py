"""The query service: named indexes, coalesced execution, stats, reload.

:class:`QueryService` is the transport-independent core of the serving
layer: it owns one or more indexes loaded via
:func:`~repro.core.serialization.load_index` (mmap mode by default — open,
don't load), routes query traffic through one
:class:`~repro.serve.batcher.MicroBatcher` per index, and answers the
observability and lifecycle requests (``/healthz``, ``/stats``,
``/reload``).  The HTTP layer in :mod:`repro.serve.http` is a thin JSON
adapter over these methods, so tests and embedding applications can drive
the service without a socket.

Request execution guarantees:

* results are **bit-identical** to un-coalesced single queries — the
  micro-batcher hands whole batches to ``query_batch``, whose contract is
  exactly ``[query(q, mode)[0] for q in queries]``;
* a request shed with 429 never executed — there are no partial results;
* a reload swaps the index atomically between engine calls: in-flight
  batches finish on the old index, later batches see the new one, and
  ``/healthz`` reports the index as reloading (503) for the duration.
"""

from __future__ import annotations

import asyncio
import math
import time
from typing import Any, Mapping, Sequence

from repro.core.engine import DeadlineExceededError
from repro.core.join import similarity_join
from repro.core.stats import BatchQueryStats
from repro.dist.transport import ShardUnavailableError
from repro.serve.batcher import MicroBatcher, Overloaded
from repro.serve.config import IndexSpec, ServeConfig
from repro.serve.metrics import ServiceMetrics
from repro.similarity.predicates import SimilarityPredicate

#: Index name used when a request omits the ``"index"`` field.
DEFAULT_INDEX_NAME = "default"


class ApiError(Exception):
    """A request failure with an HTTP status and optional extra headers."""

    def __init__(self, status: int, message: str, headers: Mapping[str, str] | None = None):
        super().__init__(message)
        self.status = status
        self.headers = dict(headers or {})


def _router_of(index: Any) -> Any:
    """The ShardRouter behind a routed index instance (None otherwise)."""
    if index is None:
        return None
    from repro.dist import shard_router_of

    return shard_router_of(index)


def _close_router_of(index: Any) -> None:
    """Stop the shard workers behind a routed index instance (if any)."""
    router = _router_of(index)
    if router is not None:
        router.close()


class _ServedIndex:
    """One index the service owns: spec, loaded instance, batcher, status."""

    def __init__(self, spec: IndexSpec, config: ServeConfig):
        self.spec = spec
        self.config = config
        # The concrete index class varies by file (skewed / correlated /
        # chosen-path); the service only relies on the shared query surface.
        self.index: Any = None
        self.status = "loading"
        self.load_seconds = 0.0
        self.loaded_at: float | None = None
        self.reloads = 0
        self.batcher = MicroBatcher(
            self._run_batch,
            window_seconds=config.batch_window_seconds,
            max_batch_queries=config.max_batch_queries,
            max_pending_queries=config.max_pending_queries,
        )

    def _run_batch(
        self,
        queries: Sequence[frozenset[int]],
        mode: str,
        allow_partial: bool = False,
        deadline: float | None = None,
    ) -> tuple[list[Any], BatchQueryStats]:
        """The engine call the batcher runs on its worker thread.

        Reads ``self.index`` at call time, so a reload's swap takes effect
        for every batch dispatched after it.  ``allow_partial`` and
        ``deadline`` come from the coalesced jobs (the batcher groups by
        the flag and takes the loosest member deadline).
        """
        return self.index.query_batch(
            queries,
            mode=mode,
            batch_size=self.config.max_batch_queries,
            shard_workers=self.spec.shard_workers,
            allow_partial=allow_partial,
            deadline=deadline,
        )

    def load_sync(self) -> Any:
        """Open the index as specced (runs on an executor thread)."""
        start = time.perf_counter()
        if self.spec.routed:
            from repro.dist import load_routed_index

            index = load_routed_index(
                self.spec.path,
                transport="socket" if self.spec.shard_addrs else "spawn",
                shard_procs=self.spec.shard_procs,
                shard_addrs=self.spec.shard_addrs,
                fault_spec=self.spec.fault_spec,
            )
        else:
            from repro.core.serialization import load_index

            index = load_index(
                self.spec.path,
                mode=self.spec.load_mode,
                shard_workers=self.spec.shard_workers,
            )
        self.load_seconds = time.perf_counter() - start
        return index

    def describe(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "path": self.spec.path,
            "load_mode": self.spec.load_mode,
            "shard_workers": self.spec.shard_workers,
            "status": self.status,
            "load_seconds": self.load_seconds,
            "reloads": self.reloads,
        }
        if self.spec.routed:
            payload["shard_procs"] = self.spec.shard_procs
            payload["shard_addrs"] = (
                list(self.spec.shard_addrs) if self.spec.shard_addrs else None
            )
            payload["fault_spec"] = self.spec.fault_spec
        if self.index is not None:
            build = self.index.build_stats
            payload["num_vectors"] = build.num_vectors
            payload["repetitions"] = build.repetitions
        return payload


class QueryService:
    """Serve one or more saved indexes with server-side micro-batching."""

    def __init__(self, specs: Sequence[IndexSpec], config: ServeConfig | None = None):
        if not specs:
            raise ValueError("the service needs at least one IndexSpec")
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate index names: {sorted(names)}")
        self.config = config if config is not None else ServeConfig()
        self._indexes = {
            spec.name: _ServedIndex(spec, self.config) for spec in specs
        }
        self.metrics = ServiceMetrics(self.config.latency_window)
        self._started_at = time.monotonic()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    async def start(self) -> None:
        """Load every index (concurrently, off the event loop)."""
        loop = asyncio.get_running_loop()

        async def load_one(served: _ServedIndex) -> None:
            served.index = await loop.run_in_executor(None, served.load_sync)
            served.status = "ok"

        await asyncio.gather(*(load_one(s) for s in self._indexes.values()))

    async def drain(self, timeout: float | None = None) -> bool:
        """Wait for every in-flight batch to finish; ``False`` on timeout."""
        results = await asyncio.gather(
            *(served.batcher.drain(timeout) for served in self._indexes.values())
        )
        return all(results)

    async def close(self) -> None:
        for served in self._indexes.values():
            await served.batcher.close()
        for served in self._indexes.values():
            _close_router_of(served.index)

    @property
    def index_names(self) -> list[str]:
        return list(self._indexes)

    @property
    def specs(self) -> list[IndexSpec]:
        """The (current) spec of every served index."""
        return [served.spec for served in self._indexes.values()]

    def _resolve(self, payload: Mapping[str, Any]) -> _ServedIndex:
        name = payload.get("index", DEFAULT_INDEX_NAME)
        if not isinstance(name, str):
            raise ApiError(400, f"'index' must be a string, got {type(name).__name__}")
        if name == DEFAULT_INDEX_NAME and name not in self._indexes and len(self._indexes) == 1:
            # A single-index service answers index-less requests regardless
            # of what the one index is called.
            return next(iter(self._indexes.values()))
        served = self._indexes.get(name)
        if served is None:
            raise ApiError(
                404, f"unknown index {name!r}; serving {sorted(self._indexes)}"
            )
        if served.status != "ok":
            raise ApiError(
                503,
                f"index {name!r} is {served.status}; retry shortly",
                headers={"Retry-After": "1"},
            )
        return served

    # ------------------------------------------------------------------ #
    # Request payload validation
    # ------------------------------------------------------------------ #

    @staticmethod
    def _parse_query(value: Any, what: str = "query") -> frozenset[int]:
        if not isinstance(value, (list, tuple)) or not value:
            raise ApiError(400, f"'{what}' must be a non-empty list of item ids")
        try:
            return frozenset(int(item) for item in value)
        except (TypeError, ValueError):
            raise ApiError(400, f"'{what}' must contain only integers") from None

    @staticmethod
    def _parse_mode(payload: Mapping[str, Any]) -> str:
        mode = payload.get("mode", "first")
        if mode not in ("first", "best"):
            raise ApiError(400, f"'mode' must be 'first' or 'best', got {mode!r}")
        return mode

    def _shed(self, error: Overloaded) -> ApiError:
        retry_after = (
            self.config.retry_after_seconds
            if self.config.retry_after_seconds is not None
            else error.retry_after_seconds
        )
        return ApiError(
            429,
            str(error),
            headers={"Retry-After": str(max(1, math.ceil(retry_after)))},
        )

    @staticmethod
    def _shard_unavailable(name: str, error: ShardUnavailableError) -> ApiError:
        """503 for an unavailable shard worker, with an honest retry hint.

        When the router attached its circuit breaker's backoff the hint is
        that backoff (rounded up to whole seconds, the ``Retry-After``
        granularity); the fixed 1 s only remains for errors raised below
        the breaker layer.
        """
        retry_after = "1"
        if error.retry_after is not None:
            retry_after = str(max(1, math.ceil(error.retry_after)))
        return ApiError(
            503,
            f"index {name!r}: {error}",
            headers={"Retry-After": retry_after},
        )

    @staticmethod
    def _parse_allow_partial(payload: Mapping[str, Any]) -> bool:
        flag = payload.get("allow_partial", False)
        if not isinstance(flag, bool):
            raise ApiError(400, f"'allow_partial' must be a boolean, got {flag!r}")
        return flag

    def _deadline_from(self, headers: Mapping[str, str] | None) -> float | None:
        """The request's absolute deadline (``time.time()`` epoch), or None.

        ``X-Repro-Deadline-Ms`` (a per-request millisecond budget) wins;
        without the header the configured ``default_deadline_ms`` applies.
        """
        raw = (headers or {}).get("x-repro-deadline-ms")
        if raw is None:
            budget_ms = self.config.default_deadline_ms
        else:
            try:
                budget_ms = float(raw)
            except ValueError:
                raise ApiError(
                    400,
                    f"X-Repro-Deadline-Ms must be a number of milliseconds, got {raw!r}",
                ) from None
            if budget_ms <= 0:
                raise ApiError(
                    400, f"X-Repro-Deadline-Ms must be positive, got {raw!r}"
                )
        if budget_ms is None:
            return None
        return time.time() + budget_ms / 1000.0

    def _deadline_expired(self, served: _ServedIndex) -> ApiError:
        """504 for an expired deadline, with a backlog-derived retry hint."""
        retry_after = max(1, math.ceil(served.batcher.estimate_retry_after()))
        return ApiError(
            504,
            f"index {served.spec.name!r}: request deadline expired before the "
            "result was ready",
            headers={"Retry-After": str(retry_after)},
        )

    async def _await_result(
        self, served: _ServedIndex, future: asyncio.Future[Any], deadline: float | None
    ) -> Any:
        """Await a request's future, mapping failures to API errors.

        ``asyncio.wait_for`` is the backstop for a worker hanging past the
        propagated deadline: this request is released with 504 (its future
        cancelled — the batcher tolerates that) even though the engine call
        has not yet noticed the expiry.  Peers coalesced into the same batch
        are untouched; only this request's slice is abandoned.
        """
        try:
            if deadline is None:
                return await future
            remaining = deadline - time.time()
            if remaining <= 0:
                future.cancel()
                raise self._deadline_expired(served)
            return await asyncio.wait_for(future, timeout=remaining)
        except (DeadlineExceededError, asyncio.TimeoutError):
            raise self._deadline_expired(served) from None
        except ShardUnavailableError as error:
            raise self._shard_unavailable(served.spec.name, error) from None

    # ------------------------------------------------------------------ #
    # Endpoints
    # ------------------------------------------------------------------ #

    async def query(
        self, payload: Mapping[str, Any], headers: Mapping[str, str] | None = None
    ) -> dict[str, Any]:
        """``POST /query`` — one query through the micro-batcher."""
        served = self._resolve(payload)
        query = self._parse_query(payload.get("query"))
        mode = self._parse_mode(payload)
        deadline = self._deadline_from(headers)
        try:
            future = served.batcher.submit([query], mode, deadline=deadline)
        except Overloaded as error:
            raise self._shed(error) from None
        results, per_query, _fanout = await self._await_result(served, future, deadline)
        stats = per_query[0]
        return {
            "index": served.spec.name,
            "match": results[0],
            "found": stats.found,
            "stats": stats.to_dict(),
        }

    async def query_batch(
        self, payload: Mapping[str, Any], headers: Mapping[str, str] | None = None
    ) -> dict[str, Any]:
        """``POST /query-batch`` — many queries as one atomic job."""
        served = self._resolve(payload)
        raw = payload.get("queries")
        if not isinstance(raw, (list, tuple)) or not raw:
            raise ApiError(400, "'queries' must be a non-empty list of query sets")
        queries = [self._parse_query(entry, what=f"queries[{i}]") for i, entry in enumerate(raw)]
        mode = self._parse_mode(payload)
        allow_partial = self._parse_allow_partial(payload)
        deadline = self._deadline_from(headers)
        try:
            future = served.batcher.submit(
                queries, mode, allow_partial=allow_partial, deadline=deadline
            )
        except Overloaded as error:
            raise self._shed(error) from None
        results, per_query, fanout = await self._await_result(served, future, deadline)
        response: dict[str, Any] = {
            "index": served.spec.name,
            "results": results,
            "num_found": sum(1 for stats in per_query if stats.found),
            "stats": {"per_query": [stats.to_dict() for stats in per_query]},
        }
        if allow_partial:
            response["completeness"] = fanout.completeness
            response["shards_missing"] = list(fanout.shards_missing)
        return response

    async def similarity_join_endpoint(
        self, payload: Mapping[str, Any], headers: Mapping[str, str] | None = None
    ) -> dict[str, Any]:
        """``POST /similarity-join`` — join a probe collection against an index.

        The join is already a batched consumer of the engine, so it bypasses
        the admission window but runs on the same single engine lane as the
        coalesced batches (its executor), keeping the CPU story honest.
        """
        served = self._resolve(payload)
        raw = payload.get("probes")
        if not isinstance(raw, (list, tuple)) or not raw:
            raise ApiError(400, "'probes' must be a non-empty list of probe sets")
        probes = [self._parse_query(entry, what=f"probes[{i}]") for i, entry in enumerate(raw)]
        if served.batcher.inflight_queries + len(probes) > self.config.max_pending_queries:
            raise self._shed(
                Overloaded(
                    f"{served.batcher.inflight_queries} queries in flight; a join of "
                    f"{len(probes)} probes would exceed max_pending_queries="
                    f"{self.config.max_pending_queries}",
                    retry_after_seconds=served.batcher.estimate_retry_after(),
                )
            )
        measure = payload.get("measure", "braun_blanquet")
        threshold = payload.get("threshold", 0.5)
        try:
            predicate = SimilarityPredicate(measure=str(measure), threshold=float(threshold))
        except (KeyError, TypeError, ValueError) as error:
            raise ApiError(400, f"invalid join predicate: {error}") from None
        allow_partial = self._parse_allow_partial(payload)
        deadline = self._deadline_from(headers)
        loop = asyncio.get_running_loop()
        future = loop.run_in_executor(
            served.batcher._executor,  # noqa: SLF001 - same engine lane by design
            lambda: similarity_join(
                served.index,
                probes,
                predicate,
                batch_size=self.config.max_batch_queries,
                shard_workers=served.spec.shard_workers,
                allow_partial=allow_partial,
                deadline=deadline,
            ),
        )
        result = await self._await_result(served, future, deadline)
        response: dict[str, Any] = {
            "index": served.spec.name,
            "pairs": [[r, s, sim] for r, s, sim in result.pairs],
            "num_pairs": result.num_pairs,
            "num_probes": result.num_probes,
            "candidates_examined": result.candidates_examined,
            "similarity_evaluations": result.similarity_evaluations,
        }
        if allow_partial:
            response["completeness"] = result.fanout.completeness
            response["shards_missing"] = list(result.fanout.shards_missing)
        return response

    def healthz(self) -> tuple[int, dict[str, Any]]:
        """``GET /healthz`` — 200 when every index is serving, 503 otherwise."""
        statuses = {name: served.status for name, served in self._indexes.items()}
        healthy = all(status == "ok" for status in statuses.values())
        return (
            200 if healthy else 503,
            {"status": "ok" if healthy else "unavailable", "indexes": statuses},
        )

    def stats(self) -> dict[str, Any]:
        """``GET /stats`` — counters, latency percentiles, engine aggregates."""
        indexes: dict[str, Any] = {}
        for name, served in self._indexes.items():
            entry = served.describe()
            entry["queue_depth"] = served.batcher.queue_depth
            entry["inflight_queries"] = served.batcher.inflight_queries
            entry.update(served.batcher.stats.snapshot())
            router = _router_of(served.index)
            if router is not None:
                entry["shards"] = router.snapshot()
            indexes[name] = entry
        return {
            "uptime_seconds": time.monotonic() - self._started_at,
            "config": {
                "batch_window_ms": self.config.batch_window_ms,
                "max_batch_queries": self.config.max_batch_queries,
                "max_pending_queries": self.config.max_pending_queries,
            },
            "endpoints": self.metrics.snapshot(),
            "indexes": indexes,
        }

    def metrics_text(self) -> str:
        """``GET /metrics`` — the whole service in Prometheus text format."""
        from repro.core.kernels import COUNTER_NAMES
        from repro.serve.metrics import MetricFamily

        up: list[tuple[Mapping[str, str], float]] = []
        queue_depth: list[tuple[Mapping[str, str], float]] = []
        inflight: list[tuple[Mapping[str, str], float]] = []
        reloads: list[tuple[Mapping[str, str], float]] = []
        engine_calls: list[tuple[Mapping[str, str], float]] = []
        coalesced: list[tuple[Mapping[str, str], float]] = []
        executed: list[tuple[Mapping[str, str], float]] = []
        found: list[tuple[Mapping[str, str], float]] = []
        shed_jobs: list[tuple[Mapping[str, str], float]] = []
        engine_seconds: list[tuple[Mapping[str, str], float]] = []
        kernel_ops: list[tuple[Mapping[str, str], float]] = []
        shard_up: list[tuple[Mapping[str, str], float]] = []
        shard_requests: list[tuple[Mapping[str, str], float]] = []
        shard_rows: list[tuple[Mapping[str, str], float]] = []
        shard_latency: list[tuple[Mapping[str, str], float]] = []
        shard_failures: list[tuple[Mapping[str, str], float]] = []
        shard_respawns: list[tuple[Mapping[str, str], float]] = []
        shard_retries: list[tuple[Mapping[str, str], float]] = []
        shard_breaker: list[tuple[Mapping[str, str], float]] = []
        for name, served in self._indexes.items():
            label = {"index": name}
            stats = served.batcher.stats
            up.append((label, 1.0 if served.status == "ok" else 0.0))
            queue_depth.append((label, served.batcher.queue_depth))
            inflight.append((label, served.batcher.inflight_queries))
            reloads.append((label, served.reloads))
            engine_calls.append((label, stats.engine_calls))
            coalesced.append((label, stats.coalesced_calls))
            executed.append((label, stats.queries_executed))
            found.append((label, stats.queries_found))
            shed_jobs.append((label, stats.jobs_shed))
            engine_seconds.append((label, stats.engine_seconds))
            kernel = stats.engine_stats.kernel
            for counter_name in COUNTER_NAMES:
                kernel_ops.append(
                    (
                        {"index": name, "stage": counter_name},
                        float(getattr(kernel, counter_name)),
                    )
                )
            router = _router_of(served.index)
            if router is not None:
                for worker_entry in router.snapshot()["per_worker"]:
                    shard_label = {"index": name, "shard": str(worker_entry["worker"])}
                    shard_up.append(
                        (shard_label, 1.0 if worker_entry.get("alive") else 0.0)
                    )
                    shard_requests.append((shard_label, float(worker_entry["requests"])))
                    shard_rows.append((shard_label, float(worker_entry["rows"])))
                    shard_latency.append((shard_label, float(worker_entry["seconds"])))
                    shard_failures.append((shard_label, float(worker_entry["failures"])))
                    shard_respawns.append((shard_label, float(worker_entry["respawns"])))
                    shard_retries.append((shard_label, float(worker_entry["retries"])))
                    shard_breaker.append(
                        (shard_label, float(worker_entry["breaker"]["state_code"]))
                    )
        extra: list[MetricFamily] = [
            (
                "repro_uptime_seconds",
                "gauge",
                "Seconds since the service started.",
                [({}, time.monotonic() - self._started_at)],
            ),
            ("repro_index_up", "gauge", "1 when the index is serving queries.", up),
            (
                "repro_index_queue_depth",
                "gauge",
                "Jobs waiting for batch admission.",
                queue_depth,
            ),
            (
                "repro_index_inflight_queries",
                "gauge",
                "Queries queued plus executing.",
                inflight,
            ),
            (
                "repro_index_reloads_total",
                "counter",
                "Completed index reloads.",
                reloads,
            ),
            (
                "repro_engine_calls_total",
                "counter",
                "Batched engine calls dispatched.",
                engine_calls,
            ),
            (
                "repro_engine_coalesced_calls_total",
                "counter",
                "Engine calls that coalesced more than one query.",
                coalesced,
            ),
            (
                "repro_engine_queries_total",
                "counter",
                "Queries executed by the engine.",
                executed,
            ),
            (
                "repro_engine_queries_found_total",
                "counter",
                "Executed queries that found a match.",
                found,
            ),
            (
                "repro_engine_jobs_shed_total",
                "counter",
                "Jobs refused by admission control.",
                shed_jobs,
            ),
            (
                "repro_engine_seconds_total",
                "counter",
                "Seconds spent inside engine calls.",
                engine_seconds,
            ),
            (
                "repro_kernel_ops_total",
                "counter",
                "Per-stage hot-path kernel work counts (label 'stage' is the "
                "kernel counter name).",
                kernel_ops,
            ),
        ]
        if shard_requests:
            extra.extend(
                [
                    (
                        "repro_shard_up",
                        "gauge",
                        "1 when the shard worker is alive (label 'shard' is the "
                        "worker index).",
                        shard_up,
                    ),
                    (
                        "repro_shard_requests_total",
                        "counter",
                        "Probe RPCs dispatched to the shard worker.",
                        shard_requests,
                    ),
                    (
                        "repro_shard_rows_total",
                        "counter",
                        "Posting rows returned by the shard worker.",
                        shard_rows,
                    ),
                    (
                        "repro_shard_latency_seconds",
                        "counter",
                        "Cumulative seconds spent waiting on the shard worker.",
                        shard_latency,
                    ),
                    (
                        "repro_shard_failures_total",
                        "counter",
                        "Transport failures (dead or timed-out worker round-trips).",
                        shard_failures,
                    ),
                    (
                        "repro_shard_respawns_total",
                        "counter",
                        "Automatic worker respawns / reconnects after a failure.",
                        shard_respawns,
                    ),
                    (
                        "repro_shard_retries_total",
                        "counter",
                        "Half-open probe requests admitted through the worker's "
                        "circuit breaker.",
                        shard_retries,
                    ),
                    (
                        "repro_shard_breaker_state",
                        "gauge",
                        "Circuit breaker state of the shard worker "
                        "(0=closed, 1=half-open, 2=open).",
                        shard_breaker,
                    ),
                ]
            )
        return self.metrics.prometheus_text(extra)

    async def reload(self, payload: Mapping[str, Any]) -> dict[str, Any]:
        """``POST /reload`` — re-open an index from disk and swap it in.

        The canonical consumer is an external compactor: write a new index
        generation (the staged-rename save guarantees the directory is never
        half-written), then ``POST /reload``.  While the load runs the index
        reports 503 on ``/healthz`` and sheds its query traffic; the swap
        itself is a single reference assignment between engine calls.
        """
        name = payload.get("index", DEFAULT_INDEX_NAME)
        served = self._indexes.get(name)
        if served is None and name == DEFAULT_INDEX_NAME and len(self._indexes) == 1:
            served = next(iter(self._indexes.values()))
        if served is None:
            raise ApiError(404, f"unknown index {name!r}; serving {sorted(self._indexes)}")
        if served.status == "reloading":
            raise ApiError(409, f"index {served.spec.name!r} is already reloading")
        path = payload.get("path")
        if path is not None:
            served.spec = IndexSpec(
                name=served.spec.name,
                path=str(path),
                load_mode=served.spec.load_mode,
                shard_workers=served.spec.shard_workers,
                shard_procs=served.spec.shard_procs,
                shard_addrs=served.spec.shard_addrs,
                fault_spec=served.spec.fault_spec,
            )
        served.status = "reloading"
        loop = asyncio.get_running_loop()
        try:
            index = await loop.run_in_executor(None, served.load_sync)
        except (ValueError, OSError, ShardUnavailableError) as error:
            served.status = "ok" if served.index is not None else "error"
            raise ApiError(
                500, f"reload of {served.spec.path!r} failed: {error}"
            ) from None
        old_index = served.index
        served.index = index
        served.reloads += 1
        served.loaded_at = time.monotonic()
        served.status = "ok"
        if old_index is not None and old_index is not index and _router_of(old_index):
            # Let in-flight batches on the old index finish before stopping
            # its workers; new batches already see the new index.
            await served.batcher.drain(timeout=5.0)
            _close_router_of(old_index)
        return {
            "index": served.spec.name,
            "path": served.spec.path,
            "load_seconds": served.load_seconds,
            "reloads": served.reloads,
        }

"""Minimal asyncio HTTP/1.1 front end for :class:`QueryService`.

The container ships no web framework, so this module implements the small
HTTP subset a JSON query service needs directly on ``asyncio`` streams:
request-line + header parsing, ``Content-Length`` bodies, keep-alive
connections, and JSON responses.  It is deliberately not a general server —
no chunked transfer, no TLS, no compression — but it is robust against the
failure modes a benchmark or misbehaving client will actually produce
(oversized bodies, garbage request lines, mid-request disconnects), and a
single event loop multiplexes thousands of connections, which is what lets
the micro-batcher see concurrent requests in the first place.

Endpoints (all JSON; see ``docs/serving.md`` for payloads):

========  =================  ==============================================
method    path               handled by
========  =================  ==============================================
POST      /query             :meth:`QueryService.query`
POST      /query-batch       :meth:`QueryService.query_batch`
POST      /similarity-join   :meth:`QueryService.similarity_join_endpoint`
GET       /healthz           :meth:`QueryService.healthz`
GET       /stats             :meth:`QueryService.stats`
GET       /metrics           :meth:`QueryService.metrics_text` (Prometheus)
POST      /reload            :meth:`QueryService.reload`
========  =================  ==============================================

``/metrics`` is the only non-JSON endpoint: it answers in the Prometheus
text exposition format so a stock scraper can monitor the service without
an adapter.

Shutdown: ``run_server`` installs ``SIGTERM``/``SIGINT`` handlers that
trigger a graceful drain — stop accepting connections, let every admitted
batch finish and answer, then exit 0 — so a container orchestrator's stop
sequence never drops an in-flight request.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import signal
import time
from typing import Any, Sequence

from repro.serve.config import IndexSpec, ServeConfig
from repro.serve.metrics import PROMETHEUS_CONTENT_TYPE
from repro.serve.service import ApiError, QueryService

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Endpoints that accept a body.
_POST_PATHS = frozenset({"/query", "/query-batch", "/similarity-join", "/reload"})
_GET_PATHS = frozenset({"/healthz", "/stats", "/metrics"})

_MAX_HEADER_BYTES = 16 * 1024


class _BadRequest(Exception):
    """Unacceptable request framing; answered with ``status`` and closed."""

    def __init__(self, message: str, status: int = 400):
        super().__init__(message)
        self.status = status


def _encode_body(
    status: int,
    body: bytes,
    content_type: str,
    headers: dict[str, str] | None = None,
    close: bool = False,
) -> bytes:
    lines = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'close' if close else 'keep-alive'}",
    ]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii") + body


def _encode_response(
    status: int, payload: Any, headers: dict[str, str] | None = None, close: bool = False
) -> bytes:
    body = json.dumps(payload).encode("utf-8")
    return _encode_body(status, body, "application/json", headers, close)


class HttpServer:
    """Bind a :class:`QueryService` to a TCP port."""

    def __init__(self, service: QueryService, host: str, port: int):
        self.service = service
        self.host = host
        self.port = port  # replaced by the bound port after start()
        self._server: asyncio.AbstractServer | None = None

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        assert self._server is not None, "start() first"
        await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _BadRequest as error:
                    writer.write(
                        _encode_response(error.status, {"error": str(error)}, close=True)
                    )
                    await writer.drain()
                    break
                if request is None:  # clean EOF between requests
                    break
                method, path, headers, body = request
                response = await self._dispatch(method, path, headers, body)
                writer.write(response)
                await writer.drain()
                if headers.get("connection", "").lower() == "close":
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass  # client went away mid-request; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, dict[str, str], bytes] | None:
        """Parse one request; ``None`` on clean EOF before a request line."""
        request_line = await reader.readline()
        if not request_line:
            return None
        parts = request_line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise _BadRequest(f"malformed request line {request_line[:80]!r}")
        method, target = parts[0].upper(), parts[1]
        path = target.split("?", 1)[0]
        headers: dict[str, str] = {}
        header_bytes = 0
        while True:
            line = await reader.readline()
            header_bytes += len(line)
            if header_bytes > _MAX_HEADER_BYTES:
                raise _BadRequest("header section too large")
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        if headers.get("transfer-encoding"):
            raise _BadRequest("chunked transfer encoding is not supported")
        body = b""
        if "content-length" in headers:
            try:
                length = int(headers["content-length"])
            except ValueError:
                raise _BadRequest("invalid Content-Length") from None
            if length < 0:
                raise _BadRequest("invalid Content-Length")
            if length > self.service.config.max_body_bytes:
                raise _BadRequest(
                    f"body of {length} bytes exceeds the "
                    f"{self.service.config.max_body_bytes}-byte limit",
                    status=413,
                )
            body = await reader.readexactly(length)
        return method, path, headers, body

    async def _dispatch(
        self, method: str, path: str, request_headers: dict[str, str], body: bytes
    ) -> bytes:
        """Route one request and record endpoint metrics."""
        service = self.service
        known = path in _POST_PATHS or path in _GET_PATHS
        endpoint = service.metrics.endpoint(path if known else "<unknown>")
        start = time.monotonic()
        status = 500
        headers: dict[str, str] = {}
        text_body: str | None = None
        try:
            if not known:
                status, payload = 404, {"error": f"unknown endpoint {path!r}"}
            elif (path in _POST_PATHS) != (method == "POST") and method != "HEAD":
                status = 405
                payload = {"error": f"{method} not allowed on {path}"}
                headers["Allow"] = "POST" if path in _POST_PATHS else "GET"
            elif path == "/healthz":
                status, payload = service.healthz()
            elif path == "/stats":
                status, payload = 200, service.stats()
            elif path == "/metrics":
                status, payload = 200, None
                text_body = service.metrics_text()
            else:
                try:
                    request_payload = json.loads(body.decode("utf-8")) if body else {}
                except (UnicodeDecodeError, json.JSONDecodeError) as error:
                    raise ApiError(400, f"request body is not valid JSON: {error}") from None
                if not isinstance(request_payload, dict):
                    raise ApiError(400, "request body must be a JSON object")
                if path == "/query":
                    payload = await service.query(request_payload, request_headers)
                elif path == "/query-batch":
                    payload = await service.query_batch(request_payload, request_headers)
                elif path == "/similarity-join":
                    payload = await service.similarity_join_endpoint(
                        request_payload, request_headers
                    )
                else:  # /reload
                    payload = await service.reload(request_payload)
                status = 200
        except ApiError as error:
            status = error.status
            headers.update(error.headers)
            payload = {"error": str(error)}
            if "Retry-After" in headers:
                payload["retry_after_seconds"] = float(headers["Retry-After"])
        except Exception as error:  # never kill the connection loop
            status = 500
            payload = {"error": f"internal error: {type(error).__name__}: {error}"}
        endpoint.record(
            time.monotonic() - start,
            error=status >= 400 and status != 429,
            shed=status == 429,
        )
        if text_body is not None and status == 200:
            return _encode_body(
                status, text_body.encode("utf-8"), PROMETHEUS_CONTENT_TYPE, headers
            )
        return _encode_response(status, payload, headers)


#: Upper bound on the graceful drain; a stuck engine call must not block
#: shutdown forever (orchestrators send SIGKILL after their own grace period
#: anyway, so this only matters when run by hand).
DRAIN_TIMEOUT_SECONDS = 30.0


async def _run(specs: Sequence[IndexSpec], config: ServeConfig, ready_message: bool) -> None:
    service = QueryService(specs, config)
    await service.start()
    server = HttpServer(service, config.host, config.port)
    await server.start()
    if ready_message:
        names = ", ".join(
            f"{spec.name}={spec.path} ({spec.load_mode})" for spec in service.specs
        )
        print(
            f"repro-serve listening on http://{config.host}:{server.port} "
            f"(window {config.batch_window_ms:g} ms, max batch "
            f"{config.max_batch_queries}, max pending {config.max_pending_queries}) "
            f"serving {names}",
            flush=True,
        )

    # Graceful shutdown: SIGTERM/SIGINT stop the accept loop, admitted
    # batches flush, and the process exits 0 — no in-flight request is
    # dropped by an orchestrator's stop sequence.
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    handled_signals: list[signal.Signals] = []
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError):
            continue  # non-main thread or unsupported platform
        handled_signals.append(signum)

    serve_task = asyncio.ensure_future(server.serve_forever())
    stop_task = asyncio.ensure_future(stop.wait())
    try:
        await asyncio.wait({serve_task, stop_task}, return_when=asyncio.FIRST_COMPLETED)
    finally:
        for task in (serve_task, stop_task):
            task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await task
        await server.close()  # stop accepting; in-flight handlers continue
        if stop.is_set():
            drained = await service.drain(timeout=DRAIN_TIMEOUT_SECONDS)
            # Give connection handlers one scheduling round to write the
            # responses for the batches that just resolved.
            await asyncio.sleep(0.05)
            if ready_message:
                outcome = "drained" if drained else "drain timed out"
                print(f"repro-serve shutting down ({outcome})", flush=True)
        await service.close()
        for signum in handled_signals:
            loop.remove_signal_handler(signum)


def run_server(
    specs: Sequence[IndexSpec],
    config: ServeConfig | None = None,
    ready_message: bool = True,
) -> None:
    """Blocking entry point: load the indexes, bind, and serve.

    ``SIGTERM`` and ``SIGINT`` trigger a graceful drain (finish every
    admitted request, then exit 0) rather than an abrupt teardown.
    """
    try:
        asyncio.run(_run(specs, config if config is not None else ServeConfig(), ready_message))
    except KeyboardInterrupt:
        pass

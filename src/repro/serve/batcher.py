"""The micro-batching admission loop.

The engine's batched surfaces already amortise filter hashing, deduplicate
shared probes and vectorise verification across a batch — but only if
somebody hands them a batch.  :class:`MicroBatcher` is that somebody for a
network service: concurrent requests that arrive within a small admission
window are coalesced into **one** ``query_batch`` call and the per-request
results are scattered back, so independent clients pay amortised cost for
work they happen to share.

Mechanics
---------
Requests enter through :meth:`MicroBatcher.submit`, which enqueues a *job*
(one or more queries sharing a mode — a ``/query`` request is a one-query
job, a ``/query-batch`` request is one job with many) and returns a future.
A single admission task runs the loop:

1. sleep until a job arrives;
2. hold the forming batch open until the **window** elapses (anchored at
   the first job's arrival) or the batch reaches **max_batch_queries**,
   whichever is first;
3. drain whole jobs up to the size cap (a job is never split — its queries
   must execute in one engine call so its results are a clean slice), group
   them by query mode, and run one engine call per mode group on the
   executor;
4. scatter each job's result slice to its future and start over.

While an engine call is executing the admission loop is *not* draining, so
the next batch forms behind it naturally — under load the effective batch
size grows with the service time, which is exactly the feedback loop that
makes micro-batching stable.

A window of ``0`` disables coalescing: ``submit`` dispatches each job as
its own single-job batch immediately (still through the executor and still
bounded by the shedding limit).  This is the baseline configuration the
serving benchmark measures the coalescing win against.

Load shedding
-------------
``max_pending_queries`` bounds queued plus executing queries.  A ``submit``
that would exceed the bound raises :class:`Overloaded` (the HTTP layer maps
it to ``429`` with a ``Retry-After`` hint) — with one exception: a job
larger than the whole bound is admitted when the batcher is otherwise idle,
otherwise it could never run at all.  Shed jobs never execute, so a client
that receives 429 is guaranteed its request had no effect — there are no
partial results to reason about.

Everything except the executor-side engine call happens on the event-loop
thread; the batcher needs no locks.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.core.engine import DeadlineExceededError
from repro.core.stats import BatchQueryStats, QueryStats, ShardFanoutStats

#: An engine batch call:
#: ``(query_sets, mode, allow_partial, deadline) -> (results, BatchQueryStats)``.
BatchRunner = Callable[
    [Sequence[frozenset[int]], str, bool, float | None],
    tuple[list[Any], BatchQueryStats],
]

#: What a job's future resolves to: the job's result slice, its per-query
#: stats, and the engine call's fan-out record (degradation markers —
#: ``completeness`` / ``shards_missing`` — are batch-level, so every job in
#: the coalesced call shares the same record).
JobResult = tuple[list[Any], list[QueryStats], ShardFanoutStats]


class Overloaded(RuntimeError):
    """Raised by :meth:`MicroBatcher.submit` when admission would exceed the
    in-flight bound; carries the suggested client backoff in seconds."""

    def __init__(self, message: str, retry_after_seconds: float):
        super().__init__(message)
        self.retry_after_seconds = retry_after_seconds


@dataclass
class _Job:
    """One admitted request: a slice-to-be of a coalesced engine call."""

    queries: list[frozenset[int]]
    mode: str
    future: asyncio.Future[JobResult]
    enqueued_at: float
    #: Serve degraded answers from live shards when a breaker is open.
    allow_partial: bool = False
    #: Absolute ``time.time()`` epoch the request must finish by (None =
    #: unbounded).  Checked at dispatch; propagated into the engine call.
    deadline: float | None = None


@dataclass
class BatcherStats:
    """Counters the admission loop maintains (event-loop thread only)."""

    jobs_submitted: int = 0
    jobs_shed: int = 0
    engine_calls: int = 0
    coalesced_calls: int = 0
    queries_executed: int = 0
    occupancy_sum: int = 0
    occupancy_max: int = 0
    engine_seconds: float = 0.0
    #: Bounded accumulation of every engine call's BatchQueryStats.
    engine_stats: BatchQueryStats = field(default_factory=BatchQueryStats)
    queries_found: int = 0

    @property
    def mean_occupancy(self) -> float:
        """Average queries per engine call (1.0 means no coalescing won)."""
        if self.engine_calls == 0:
            return 0.0
        return self.occupancy_sum / self.engine_calls

    def snapshot(self) -> dict[str, Any]:
        return {
            "jobs_submitted": self.jobs_submitted,
            "jobs_shed": self.jobs_shed,
            "engine_calls": self.engine_calls,
            "coalesced_calls": self.coalesced_calls,
            "queries_executed": self.queries_executed,
            "queries_found": self.queries_found,
            "mean_batch_occupancy": self.mean_occupancy,
            "max_batch_occupancy": self.occupancy_max,
            "engine_seconds": self.engine_seconds,
            "engine": self.engine_stats.summary(),
        }


class MicroBatcher:
    """Coalesce concurrent query jobs into amortised engine calls.

    Parameters
    ----------
    run_batch:
        Synchronous engine call executed on the worker thread; typically a
        bound ``index.query_batch``.  Must return results in input order.
    window_seconds:
        Admission window anchored at the first queued job; ``0`` disables
        coalescing (every job is its own engine call).
    max_batch_queries:
        Dispatch a forming batch once it holds this many queries.
    max_pending_queries:
        Shedding bound on queued + executing queries (see module docs).
    """

    def __init__(
        self,
        run_batch: BatchRunner,
        *,
        window_seconds: float = 0.002,
        max_batch_queries: int = 256,
        max_pending_queries: int = 4096,
        clock: Callable[[], float] = time.monotonic,
    ):
        if window_seconds < 0:
            raise ValueError(f"window_seconds must be non-negative, got {window_seconds}")
        if max_batch_queries <= 0:
            raise ValueError(
                f"max_batch_queries must be positive, got {max_batch_queries}"
            )
        if max_pending_queries <= 0:
            raise ValueError(
                f"max_pending_queries must be positive, got {max_pending_queries}"
            )
        self._run_batch = run_batch
        self.window_seconds = window_seconds
        self.max_batch_queries = max_batch_queries
        self.max_pending_queries = max_pending_queries
        self._clock = clock
        self._queue: deque[_Job] = deque()
        self._queued_queries = 0
        self._executing_queries = 0
        self._arrival = asyncio.Event()
        self._admission_task: asyncio.Task[None] | None = None
        # One worker thread: a single engine lane is what makes coalescing
        # meaningful (and keeps CPU-bound numpy calls from fighting the GIL).
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-engine"
        )
        self._closed = False
        self.stats = BatcherStats()

    # ------------------------------------------------------------------ #
    # Admission
    # ------------------------------------------------------------------ #

    @property
    def queue_depth(self) -> int:
        """Jobs currently waiting for admission."""
        return len(self._queue)

    @property
    def inflight_queries(self) -> int:
        """Queries queued plus queries inside the running engine call."""
        return self._queued_queries + self._executing_queries

    def estimate_retry_after(self) -> float:
        """Suggested backoff: the backlog at the observed per-query rate.

        Falls back to 1 second before any call has completed; clamped to
        [0.05, 30] so a transient spike never tells clients to go away for
        minutes.
        """
        if self.stats.queries_executed and self.stats.engine_seconds > 0:
            per_query = self.stats.engine_seconds / self.stats.queries_executed
            estimate = self.inflight_queries * per_query
        else:
            estimate = 1.0
        return min(max(estimate, 0.05), 30.0)

    def submit(
        self,
        queries: Sequence[frozenset[int]],
        mode: str = "first",
        allow_partial: bool = False,
        deadline: float | None = None,
    ) -> asyncio.Future[JobResult]:
        """Enqueue a job; the returned future resolves to
        ``(results, per_query_stats, fanout)`` with one results entry per
        input query.

        ``deadline`` is an absolute ``time.time()`` epoch; a job still
        queued past it fails with
        :class:`~repro.core.engine.DeadlineExceededError` instead of
        executing, and a dispatched job carries the deadline into the
        engine call.  Raises :class:`Overloaded` when admission would
        exceed the in-flight bound, and :class:`RuntimeError` after
        :meth:`close`.
        """
        if self._closed:
            raise RuntimeError("the batcher is closed")
        if not queries:
            raise ValueError("a job must contain at least one query")
        loop = asyncio.get_running_loop()
        num = len(queries)
        if self.inflight_queries + num > self.max_pending_queries and (
            self.inflight_queries > 0
        ):
            self.stats.jobs_shed += 1
            raise Overloaded(
                f"{self.inflight_queries} queries in flight; admitting {num} more "
                f"would exceed the max_pending_queries={self.max_pending_queries} "
                "bound",
                retry_after_seconds=self.estimate_retry_after(),
            )
        job = _Job(
            queries=list(queries),
            mode=mode,
            future=loop.create_future(),
            enqueued_at=self._clock(),
            allow_partial=allow_partial,
            deadline=deadline,
        )
        self.stats.jobs_submitted += 1
        self._queued_queries += num
        if self.window_seconds == 0:
            # No coalescing: dispatch immediately as a single-job batch.
            loop.create_task(self._execute([job]))
        else:
            self._queue.append(job)
            if self._admission_task is None or self._admission_task.done():
                self._admission_task = loop.create_task(self._admission_loop())
            self._arrival.set()
        return job.future

    async def _admission_loop(self) -> None:
        """Form batches: wait for the window or the size cap, then execute."""
        while not self._closed:
            if not self._queue:
                self._arrival.clear()
                try:
                    await self._arrival.wait()
                except asyncio.CancelledError:
                    return
                continue
            deadline = self._queue[0].enqueued_at + self.window_seconds
            while self._queued_queries < self.max_batch_queries:
                remaining = deadline - self._clock()
                if remaining <= 0:
                    break
                self._arrival.clear()
                try:
                    await asyncio.wait_for(self._arrival.wait(), timeout=remaining)
                except asyncio.TimeoutError:
                    break
                except asyncio.CancelledError:
                    return
            batch = self._drain()
            if batch:
                await self._execute(batch)

    def _drain(self) -> list[_Job]:
        """Pop whole jobs up to the size cap (always at least one)."""
        batch: list[_Job] = []
        total = 0
        while self._queue:
            job = self._queue[0]
            if batch and total + len(job.queries) > self.max_batch_queries:
                break
            batch.append(self._queue.popleft())
            total += len(job.queries)
        return batch

    # ------------------------------------------------------------------ #
    # Execution + scatter
    # ------------------------------------------------------------------ #

    async def _execute(self, batch: list[_Job]) -> None:
        """Run one coalesced batch: one engine call per mode group."""
        loop = asyncio.get_running_loop()
        num_queries = sum(len(job.queries) for job in batch)
        self._queued_queries -= num_queries
        self._executing_queries += num_queries
        try:
            # Preserve arrival order within each group; groups run in
            # first-appearance order.  Strict and degraded-mode jobs never
            # share an engine call: a breaker opening mid-batch must not
            # turn a strict job's answer partial (or vice versa).
            groups: dict[tuple[str, bool], list[_Job]] = {}
            for job in batch:
                groups.setdefault((job.mode, job.allow_partial), []).append(job)
            for (mode, allow_partial), jobs in groups.items():
                # A job whose deadline passed while it queued fails now,
                # honestly, without costing the engine anything — and
                # without dragging down the batch's other jobs.
                now = time.time()
                live: list[_Job] = []
                for job in jobs:
                    if job.deadline is not None and now >= job.deadline:
                        if not job.future.done():
                            job.future.set_exception(
                                DeadlineExceededError(
                                    "deadline expired while the request "
                                    "waited for batch admission"
                                )
                            )
                    else:
                        live.append(job)
                if not live:
                    continue
                jobs = live
                # The coalesced call runs under the laxest member deadline;
                # members with tighter budgets time out individually at the
                # HTTP layer without aborting their batch peers.
                deadlines = [
                    job.deadline for job in jobs if job.deadline is not None
                ]
                group_deadline = (
                    max(deadlines) if len(deadlines) == len(jobs) else None
                )
                flat = [query for job in jobs for query in job.queries]
                self.stats.engine_calls += 1
                if len(flat) > 1:
                    self.stats.coalesced_calls += 1
                self.stats.occupancy_sum += len(flat)
                self.stats.occupancy_max = max(self.stats.occupancy_max, len(flat))
                call_start = self._clock()
                try:
                    results, batch_stats = await loop.run_in_executor(
                        self._executor,
                        self._run_batch,
                        flat,
                        mode,
                        allow_partial,
                        group_deadline,
                    )
                except Exception as error:  # scatter the failure, keep serving
                    for job in jobs:
                        if not job.future.done():
                            job.future.set_exception(error)
                    continue
                self.stats.engine_seconds += self._clock() - call_start
                self.stats.queries_executed += len(flat)
                self.stats.queries_found += batch_stats.num_found
                self.stats.engine_stats.accumulate(batch_stats)
                self._scatter(jobs, results, batch_stats.per_query, batch_stats.fanout)
        finally:
            self._executing_queries -= num_queries

    @staticmethod
    def _scatter(
        jobs: Sequence[_Job],
        results: list[Any],
        per_query: list[QueryStats],
        fanout: ShardFanoutStats,
    ) -> None:
        """Slice the engine call's results back onto each job's future."""
        offset = 0
        for job in jobs:
            end = offset + len(job.queries)
            if not job.future.done():  # the client may have disconnected
                job.future.set_result(
                    (results[offset:end], per_query[offset:end], fanout)
                )
            offset = end

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    async def drain(self, timeout: float | None = None) -> bool:
        """Wait until nothing is queued or executing; ``False`` on timeout.

        Used by graceful shutdown: the caller stops producing new jobs,
        drains, then closes.  Queued jobs still dispatch normally while
        draining, so every admitted request gets its answer.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while self.inflight_queries > 0:
            if deadline is not None and time.monotonic() >= deadline:
                return False
            await asyncio.sleep(0.005)
        return True

    async def close(self) -> None:
        """Stop admitting, fail queued jobs, and release the worker thread."""
        if self._closed:
            return
        self._closed = True
        if self._admission_task is not None:
            self._admission_task.cancel()
            try:
                await self._admission_task
            except asyncio.CancelledError:
                pass
        for job in self._queue:
            if not job.future.done():
                job.future.set_exception(RuntimeError("the batcher is closed"))
        self._queue.clear()
        self._queued_queries = 0
        self._executor.shutdown(wait=True)

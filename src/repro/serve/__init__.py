"""Async query service with server-side micro-batching.

The serving layer turns the library into a network service: an
asyncio-native HTTP front end (:mod:`repro.serve.http`) over a
transport-independent core (:class:`~repro.serve.service.QueryService`)
that owns one or more saved indexes — mmap-opened by default — and
coalesces concurrent requests into amortised ``query_batch`` calls through
a :class:`~repro.serve.batcher.MicroBatcher`.

Start it from the CLI (``python -m repro serve index.v3``) or embed it::

    from repro.serve import IndexSpec, QueryService, ServeConfig

    service = QueryService(
        [IndexSpec(name="default", path="index.v3", load_mode="mmap")],
        ServeConfig(batch_window_ms=2.0, max_pending_queries=4096),
    )

See ``docs/serving.md`` for the operations guide (endpoint payloads,
tuning the admission window, reading ``/stats``).
"""

from repro.serve.batcher import BatcherStats, MicroBatcher, Overloaded
from repro.serve.config import ENDPOINTS, IndexSpec, ServeConfig
from repro.serve.http import HttpServer, run_server
from repro.serve.metrics import EndpointMetrics, LatencyWindow, ServiceMetrics
from repro.serve.service import DEFAULT_INDEX_NAME, ApiError, QueryService

__all__ = [
    "ApiError",
    "BatcherStats",
    "DEFAULT_INDEX_NAME",
    "ENDPOINTS",
    "EndpointMetrics",
    "HttpServer",
    "IndexSpec",
    "LatencyWindow",
    "MicroBatcher",
    "Overloaded",
    "QueryService",
    "ServeConfig",
    "ServiceMetrics",
    "run_server",
]

"""Serving-side observability: latency percentiles and endpoint counters.

The service keeps its metrics deliberately simple and allocation-free on the
hot path: per endpoint, a fixed-size ring of recent request latencies (the
p50/p99 on ``/stats`` are order statistics over that window, not a decaying
sketch) plus monotone counters for requests, errors and shed admissions.
Engine-level counters (probe dedupe, phase timings, page faults) are not
re-invented — every coalesced engine call's
:class:`~repro.core.stats.BatchQueryStats` is folded into one bounded
accumulator via :meth:`~repro.core.stats.BatchQueryStats.accumulate` and
surfaced through :meth:`~repro.core.stats.BatchQueryStats.summary`.

Everything here is touched only from the event-loop thread, so no locking
is needed.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Any


class LatencyWindow:
    """Ring buffer of recent latencies with order-statistic percentiles.

    ``record`` is O(1); ``snapshot`` sorts the window (a few thousand
    floats) and is only paid when ``/stats`` is scraped.
    """

    def __init__(self, capacity: int = 2048):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._window: deque[float] = deque(maxlen=capacity)
        self.count = 0
        self.total_seconds = 0.0

    def record(self, seconds: float) -> None:
        self._window.append(seconds)
        self.count += 1
        self.total_seconds += seconds

    @staticmethod
    def _percentile(ordered: list[float], quantile: float) -> float:
        """Nearest-rank percentile of an already-sorted sample."""
        rank = max(1, math.ceil(quantile * len(ordered)))
        return ordered[rank - 1]

    def snapshot(self) -> dict[str, Any]:
        """Percentiles (milliseconds) over the retained window."""
        if not self._window:
            return {"count": 0, "p50_ms": 0.0, "p99_ms": 0.0, "mean_ms": 0.0, "max_ms": 0.0}
        ordered = sorted(self._window)
        scale = 1000.0
        return {
            "count": self.count,
            "p50_ms": self._percentile(ordered, 0.50) * scale,
            "p99_ms": self._percentile(ordered, 0.99) * scale,
            "mean_ms": (sum(ordered) / len(ordered)) * scale,
            "max_ms": ordered[-1] * scale,
        }


class EndpointMetrics:
    """Counters and a latency window for one endpoint."""

    def __init__(self, latency_window: int = 2048):
        self.requests = 0
        self.errors = 0
        self.shed = 0
        self.latency = LatencyWindow(latency_window)

    def record(self, seconds: float, *, error: bool = False, shed: bool = False) -> None:
        self.requests += 1
        if error:
            self.errors += 1
        if shed:
            self.shed += 1
        else:
            # Shed requests are refused in microseconds; including them
            # would make the latency percentiles look better under the
            # exact overload they are meant to expose.
            self.latency.record(seconds)

    def snapshot(self) -> dict[str, Any]:
        return {
            "requests": self.requests,
            "errors": self.errors,
            "shed": self.shed,
            "latency": self.latency.snapshot(),
        }


class ServiceMetrics:
    """Per-endpoint metrics map with lazy creation."""

    def __init__(self, latency_window: int = 2048):
        self._latency_window = latency_window
        self._endpoints: dict[str, EndpointMetrics] = {}

    def endpoint(self, path: str) -> EndpointMetrics:
        metrics = self._endpoints.get(path)
        if metrics is None:
            metrics = self._endpoints[path] = EndpointMetrics(self._latency_window)
        return metrics

    def snapshot(self) -> dict[str, Any]:
        return {
            path: metrics.snapshot()
            for path, metrics in sorted(self._endpoints.items())
        }

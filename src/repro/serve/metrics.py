"""Serving-side observability: latency percentiles and endpoint counters.

The service keeps its metrics deliberately simple and allocation-free on the
hot path: per endpoint, a fixed-size ring of recent request latencies (the
p50/p99 on ``/stats`` are order statistics over that window, not a decaying
sketch) plus monotone counters for requests, errors and shed admissions.
Engine-level counters (probe dedupe, phase timings, page faults) are not
re-invented — every coalesced engine call's
:class:`~repro.core.stats.BatchQueryStats` is folded into one bounded
accumulator via :meth:`~repro.core.stats.BatchQueryStats.accumulate` and
surfaced through :meth:`~repro.core.stats.BatchQueryStats.summary`.

Everything here is touched only from the event-loop thread, so no locking
is needed.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Any, Mapping, Sequence

#: Content type of the ``/metrics`` response (Prometheus text exposition).
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: One exposition family: ``(name, type, help, [(labels, value), ...])``.
MetricFamily = tuple[str, str, str, Sequence[tuple[Mapping[str, str], float]]]


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    number = float(value)
    if number.is_integer() and abs(number) < 2**53:
        return str(int(number))
    return repr(number)


def render_prometheus(families: Sequence[MetricFamily]) -> str:
    """Render metric families in the Prometheus text exposition format."""
    lines: list[str] = []
    for name, kind, help_text, samples in families:
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        for labels, value in samples:
            if labels:
                rendered = ",".join(
                    f'{key}="{_escape_label(str(val))}"' for key, val in labels.items()
                )
                lines.append(f"{name}{{{rendered}}} {_format_value(value)}")
            else:
                lines.append(f"{name} {_format_value(value)}")
    return "\n".join(lines) + "\n"


class LatencyWindow:
    """Ring buffer of recent latencies with order-statistic percentiles.

    ``record`` is O(1); ``snapshot`` sorts the window (a few thousand
    floats) and is only paid when ``/stats`` is scraped.
    """

    def __init__(self, capacity: int = 2048):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._window: deque[float] = deque(maxlen=capacity)
        self.count = 0
        self.total_seconds = 0.0

    def record(self, seconds: float) -> None:
        self._window.append(seconds)
        self.count += 1
        self.total_seconds += seconds

    @staticmethod
    def _percentile(ordered: list[float], quantile: float) -> float:
        """Nearest-rank percentile of an already-sorted sample."""
        rank = max(1, math.ceil(quantile * len(ordered)))
        return ordered[rank - 1]

    def snapshot(self) -> dict[str, Any]:
        """Percentiles (milliseconds) over the retained window."""
        if not self._window:
            return {"count": 0, "p50_ms": 0.0, "p99_ms": 0.0, "mean_ms": 0.0, "max_ms": 0.0}
        ordered = sorted(self._window)
        scale = 1000.0
        return {
            "count": self.count,
            "p50_ms": self._percentile(ordered, 0.50) * scale,
            "p99_ms": self._percentile(ordered, 0.99) * scale,
            "mean_ms": (sum(ordered) / len(ordered)) * scale,
            "max_ms": ordered[-1] * scale,
        }


class EndpointMetrics:
    """Counters and a latency window for one endpoint."""

    def __init__(self, latency_window: int = 2048):
        self.requests = 0
        self.errors = 0
        self.shed = 0
        self.latency = LatencyWindow(latency_window)

    def record(self, seconds: float, *, error: bool = False, shed: bool = False) -> None:
        self.requests += 1
        if error:
            self.errors += 1
        if shed:
            self.shed += 1
        else:
            # Shed requests are refused in microseconds; including them
            # would make the latency percentiles look better under the
            # exact overload they are meant to expose.
            self.latency.record(seconds)

    def snapshot(self) -> dict[str, Any]:
        return {
            "requests": self.requests,
            "errors": self.errors,
            "shed": self.shed,
            "latency": self.latency.snapshot(),
        }


class ServiceMetrics:
    """Per-endpoint metrics map with lazy creation."""

    def __init__(self, latency_window: int = 2048):
        self._latency_window = latency_window
        self._endpoints: dict[str, EndpointMetrics] = {}

    def endpoint(self, path: str) -> EndpointMetrics:
        metrics = self._endpoints.get(path)
        if metrics is None:
            metrics = self._endpoints[path] = EndpointMetrics(self._latency_window)
        return metrics

    def snapshot(self) -> dict[str, Any]:
        return {
            path: metrics.snapshot()
            for path, metrics in sorted(self._endpoints.items())
        }

    def prometheus_text(self, extra: Sequence[MetricFamily] = ()) -> str:
        """The endpoint counters and latency summaries as Prometheus text.

        ``extra`` families (service-level gauges, batcher counters) are
        appended after the per-endpoint ones so one scrape covers the whole
        service.  Latency quantiles are order statistics over the retained
        ring — windowed, not lifetime — so they are exposed as gauges;
        ``repro_request_seconds_total`` is the lifetime total.
        """
        requests: list[tuple[Mapping[str, str], float]] = []
        errors: list[tuple[Mapping[str, str], float]] = []
        shed: list[tuple[Mapping[str, str], float]] = []
        quantiles: list[tuple[Mapping[str, str], float]] = []
        seconds: list[tuple[Mapping[str, str], float]] = []
        for path, metrics in sorted(self._endpoints.items()):
            label = {"endpoint": path}
            requests.append((label, metrics.requests))
            errors.append((label, metrics.errors))
            shed.append((label, metrics.shed))
            latency = metrics.latency.snapshot()
            for quantile, key in (("0.5", "p50_ms"), ("0.99", "p99_ms")):
                quantiles.append(
                    ({"endpoint": path, "quantile": quantile}, latency[key] / 1000.0)
                )
            seconds.append((label, metrics.latency.total_seconds))
        families: list[MetricFamily] = [
            (
                "repro_requests_total",
                "counter",
                "Requests received per endpoint.",
                requests,
            ),
            (
                "repro_errors_total",
                "counter",
                "Requests answered with a 4xx/5xx status (429 excluded).",
                errors,
            ),
            (
                "repro_shed_total",
                "counter",
                "Requests shed with 429 by admission control.",
                shed,
            ),
            (
                "repro_request_latency_seconds",
                "gauge",
                "Request latency quantiles over a bounded recent window.",
                quantiles,
            ),
            (
                "repro_request_seconds_total",
                "counter",
                "Total seconds spent serving measured (non-shed) requests.",
                seconds,
            ),
        ]
        families.extend(extra)
        return render_prometheus(families)

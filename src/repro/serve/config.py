"""Configuration of the asyncio query service.

One frozen dataclass per concern: :class:`IndexSpec` names an on-disk index
the service should own, :class:`ServeConfig` bundles the network, admission
and load-shedding knobs.  Both are plain data so the CLI, tests and embedding
applications construct them directly; validation happens in ``__post_init__``
so a bad flag fails before a socket is ever bound.

The admission knobs are the heart of the service (see ``docs/serving.md``
for tuning guidance):

* ``batch_window_ms`` — how long the admission loop holds the first request
  of a forming batch while more requests coalesce behind it.  ``0`` disables
  coalescing entirely: every request becomes its own engine call (the
  baseline the serving benchmark compares against).
* ``max_batch_queries`` — a forming batch is dispatched as soon as it holds
  this many queries, window notwithstanding.
* ``max_pending_queries`` — bound on queued + executing queries per index;
  beyond it new requests are shed with ``429 Too Many Requests`` and a
  ``Retry-After`` hint instead of growing an unbounded queue.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import DEFAULT_BATCH_SIZE

#: Endpoint paths the service exposes (the router and the docs share this).
ENDPOINTS = (
    "/query",
    "/query-batch",
    "/similarity-join",
    "/healthz",
    "/stats",
    "/reload",
)


@dataclass(frozen=True)
class IndexSpec:
    """One index the service owns: a name and how to open it.

    Attributes
    ----------
    name:
        The name requests address the index by (``"index"`` field of the
        JSON body; ``"default"`` when omitted).
    path:
        A saved index — a format v3 directory for ``load_mode="mmap"``
        (the serving default), or any readable format for ``"ram"``.
    load_mode:
        ``"mmap"`` (default) opens lazily mapped shards — cold start is
        O(manifest) and resident memory tracks what queries touch; ``"ram"``
        materialises the whole index for maximum throughput.
    shard_workers:
        Per-probe shard fan-out installed on the loaded engine (mmap mode;
        ``None`` resolves shards serially).
    shard_procs:
        When set, the index is opened in router-backed multi-process mode
        (``repro.dist.load_routed_index``): this many spawned shard worker
        processes each mmap only their own shard files, and probes fan out
        over real processes instead of GIL-bound threads.  Requires
        ``load_mode="mmap"`` (the router's own store view is mmap-backed).
    shard_addrs:
        Addresses of pre-started ``repro shard-worker`` servers
        (``host:port``, a unix socket path, or ``unix:PATH``) — the socket
        variant of router-backed mode.  Mutually exclusive with
        ``shard_procs``.
    fault_spec:
        Chaos schedule for router-backed indexes: a fault-spec string or
        preset name (see :mod:`repro.dist.faults`) that wraps the shard
        transport in a fault-injecting proxy.  Test/smoke tooling only —
        leave unset in production.  Requires a routed spec.
    """

    name: str
    path: str
    load_mode: str = "mmap"
    shard_workers: int | None = None
    shard_procs: int | None = None
    shard_addrs: tuple[str, ...] | None = None
    fault_spec: str | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("index name must be non-empty")
        if self.load_mode not in ("ram", "mmap"):
            raise ValueError(
                f"load_mode must be 'ram' or 'mmap', got {self.load_mode!r}"
            )
        if self.shard_workers is not None and self.shard_workers <= 0:
            raise ValueError(
                f"shard_workers must be positive, got {self.shard_workers}"
            )
        if self.shard_procs is not None and self.shard_procs <= 0:
            raise ValueError(
                f"shard_procs must be positive, got {self.shard_procs}"
            )
        if self.shard_procs is not None and self.shard_addrs:
            raise ValueError(
                "shard_procs and shard_addrs are mutually exclusive: spawn "
                "local workers or connect to remote ones, not both"
            )
        if self.routed and self.load_mode != "mmap":
            raise ValueError(
                "router-backed serving requires load_mode='mmap' (the v3 "
                "shard layout is the partition contract the router fans "
                "out over)"
            )
        if self.fault_spec is not None and not self.routed:
            raise ValueError(
                "fault_spec injects faults into the shard transport, which "
                "only exists for router-backed specs (shard_procs or "
                "shard_addrs)"
            )

    @property
    def routed(self) -> bool:
        """Whether this spec opens through the shard router (repro.dist)."""
        return self.shard_procs is not None or bool(self.shard_addrs)


@dataclass(frozen=True)
class ServeConfig:
    """Network, admission and shedding parameters of the query service.

    Attributes
    ----------
    host / port:
        Bind address.  ``port=0`` binds an ephemeral port (the chosen port
        is printed on startup and available as ``HttpServer.port``).
    batch_window_ms:
        Micro-batching admission window in milliseconds (default 2.0).
        ``0`` disables coalescing: each request runs as its own engine call.
    max_batch_queries:
        Maximum queries per coalesced engine call; a forming batch is
        dispatched early once it reaches this size (default
        :data:`~repro.core.config.DEFAULT_BATCH_SIZE`).
    max_pending_queries:
        Load-shedding bound on in-flight work per index — queued plus
        currently executing queries.  Requests that would exceed it are
        refused with ``429`` and ``Retry-After`` (default 4096).
    retry_after_seconds:
        Fixed ``Retry-After`` hint for shed requests.  ``None`` (default)
        estimates one from the current backlog and the observed per-query
        service time.
    max_body_bytes:
        Reject request bodies larger than this with ``413`` (default 8 MiB).
    latency_window:
        Per-endpoint ring-buffer size the p50/p99 latency percentiles on
        ``/stats`` are computed over (default 2048 most recent requests).
    default_deadline_ms:
        Per-request deadline applied when a request carries no
        ``X-Repro-Deadline-Ms`` header.  The deadline is propagated down
        to the shard workers (they stop working, not just the router
        waiting) and an expired request answers ``504``.  ``None``
        (default) means requests without the header have no deadline.
    """

    host: str = "127.0.0.1"
    port: int = 8080
    batch_window_ms: float = 2.0
    max_batch_queries: int = DEFAULT_BATCH_SIZE
    max_pending_queries: int = 4096
    retry_after_seconds: float | None = None
    max_body_bytes: int = 8 << 20
    latency_window: int = 2048
    default_deadline_ms: float | None = None

    def __post_init__(self) -> None:
        if not 0 <= self.port <= 65535:
            raise ValueError(f"port must be in [0, 65535], got {self.port}")
        if self.batch_window_ms < 0:
            raise ValueError(
                f"batch_window_ms must be non-negative, got {self.batch_window_ms}"
            )
        if self.max_batch_queries <= 0:
            raise ValueError(
                f"max_batch_queries must be positive, got {self.max_batch_queries}"
            )
        if self.max_pending_queries <= 0:
            raise ValueError(
                f"max_pending_queries must be positive, got {self.max_pending_queries}"
            )
        if self.retry_after_seconds is not None and self.retry_after_seconds <= 0:
            raise ValueError(
                f"retry_after_seconds must be positive, got {self.retry_after_seconds}"
            )
        if self.max_body_bytes <= 0:
            raise ValueError(
                f"max_body_bytes must be positive, got {self.max_body_bytes}"
            )
        if self.latency_window <= 0:
            raise ValueError(
                f"latency_window must be positive, got {self.latency_window}"
            )
        if self.default_deadline_ms is not None and self.default_deadline_ms <= 0:
            raise ValueError(
                f"default_deadline_ms must be positive, got {self.default_deadline_ms}"
            )

    @property
    def batch_window_seconds(self) -> float:
        """The admission window in seconds (what the event loop works in)."""
        return self.batch_window_ms / 1000.0

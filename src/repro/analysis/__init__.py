"""Repo-specific static analysis: the ``repro lint`` rule suite.

The invariants that keep this reproduction's results bit-identical —
uint64 folded-key discipline, int64 id/offset arrays, read-only mmap
views, one-engine-lane-per-index in the batcher, ``_lock``-guarded
mutable state — are project contracts, not Python semantics, so no
off-the-shelf linter can check them.  This package encodes them as
AST-based rules (RPL001–RPL005, see ``docs/analysis.md``) with:

* a rule registry with per-rule documentation (``--list-rules``),
* structured findings carrying ``file:line:col``, a fix hint and a
  stable fingerprint,
* inline suppressions with mandatory reasons
  (``# repro-lint: disable=RPL002 -- double-checked locking``),
* a committed baseline file for grandfathered findings that expires
  entries which stop firing, and
* ``--format {text,json,github}`` output for humans, tooling and CI
  annotations.

Run it as ``repro lint`` or ``python tools/run_lint.py``.
"""

from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, all_rules, get_rule, register
from repro.analysis.runner import LintResult, lint_paths

__all__ = [
    "Baseline",
    "BaselineEntry",
    "Finding",
    "LintResult",
    "Rule",
    "all_rules",
    "get_rule",
    "lint_paths",
    "register",
]

"""Render a :class:`~repro.analysis.runner.LintResult` for its audience.

``text`` is the human default, ``json`` feeds tooling (one stable object
per finding, fingerprints included), and ``github`` emits workflow
commands so CI annotates the diff in place.
"""

from __future__ import annotations

import json

from repro.analysis.findings import Finding
from repro.analysis.runner import LintResult

FORMATS = ("text", "json", "github")


def render(result: LintResult, fmt: str) -> str:
    if fmt == "json":
        return _render_json(result)
    if fmt == "github":
        return _render_github(result)
    if fmt == "text":
        return _render_text(result)
    raise ValueError(f"unknown format {fmt!r}; expected one of {FORMATS}")


def _iter_reportable(result: LintResult) -> list[Finding]:
    return result.parse_errors + result.findings


def _render_text(result: LintResult) -> str:
    lines: list[str] = []
    for finding in _iter_reportable(result):
        lines.append(f"{finding.location()}: {finding.rule_id} {finding.message}")
        if finding.hint:
            lines.append(f"    hint: {finding.hint}")
    for entry in result.stale_baseline:
        lines.append(
            f"{entry.path}: stale baseline entry {entry.fingerprint} "
            f"({entry.rule_id}) no longer fires; regenerate with --update-baseline"
        )
    summary = (
        f"{len(result.findings)} finding(s), "
        f"{len(result.grandfathered)} baselined, "
        f"{len(result.suppressed)} suppressed, "
        f"{len(result.stale_baseline)} stale baseline entr(y/ies), "
        f"{result.files_checked} file(s) checked"
    )
    lines.append(("FAILED: " if not result.ok else "ok: ") + summary)
    return "\n".join(lines)


def _render_json(result: LintResult) -> str:
    payload = {
        "ok": result.ok,
        "files_checked": result.files_checked,
        "findings": [finding.to_dict() for finding in _iter_reportable(result)],
        "grandfathered": [finding.to_dict() for finding in result.grandfathered],
        "suppressed": [finding.to_dict() for finding in result.suppressed],
        "stale_baseline": [entry.to_dict() for entry in result.stale_baseline],
    }
    return json.dumps(payload, indent=2)


def _render_github(result: LintResult) -> str:
    lines = []
    for finding in _iter_reportable(result):
        message = finding.message.replace("%", "%25").replace("\n", "%0A")
        lines.append(
            f"::error file={finding.path},line={finding.line},"
            f"col={finding.col + 1},title={finding.rule_id}::{message}"
        )
    for entry in result.stale_baseline:
        lines.append(
            f"::error file={entry.path},title=stale-baseline::baseline entry "
            f"{entry.fingerprint} ({entry.rule_id}) no longer fires"
        )
    return "\n".join(lines)

"""Inline suppressions: ``# repro-lint: disable=RPL002 -- reason``.

A suppression silences the named rule(s) on its own physical line (put
it on the first line of a multi-line statement — findings anchor there).
The reason after ``--`` is mandatory: a bare ``disable=`` does not
suppress anything and is itself reported under the reserved id RPL000,
so silent, unexplained waivers cannot accumulate.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.analysis.findings import Finding
from repro.analysis.source import SourceModule

SUPPRESSION_RULE_ID = "RPL000"

_PATTERN = re.compile(
    r"#\s*repro-lint:\s*disable=(?P<rules>[A-Z0-9, ]+?)\s*(?:--\s*(?P<reason>.*\S))?\s*$"
)


@dataclass(frozen=True)
class Suppression:
    line: int  # 1-based
    rule_ids: frozenset[str]
    reason: str


def scan_suppressions(module: SourceModule) -> tuple[list[Suppression], list[Finding]]:
    """All suppressions in a file, plus findings for malformed ones."""
    suppressions: list[Suppression] = []
    malformed: list[Finding] = []
    for lineno, text in enumerate(module.lines, start=1):
        match = _PATTERN.search(text)
        if match is None:
            continue
        rule_ids = frozenset(
            rule_id.strip() for rule_id in match.group("rules").split(",") if rule_id.strip()
        )
        reason = (match.group("reason") or "").strip()
        if not reason:
            malformed.append(
                Finding(
                    rule_id=SUPPRESSION_RULE_ID,
                    path=module.relpath,
                    line=lineno,
                    col=match.start(),
                    message=(
                        "suppression has no reason; write "
                        "'# repro-lint: disable=<RULE> -- <why>'"
                    ),
                    hint="a suppression without a reason does not suppress anything",
                )
            )
            continue
        suppressions.append(Suppression(line=lineno, rule_ids=rule_ids, reason=reason))
    return suppressions, malformed


def apply_suppressions(
    findings: list[Finding], suppressions: list[Suppression]
) -> tuple[list[Finding], list[Finding]]:
    """Partition findings into (kept, suppressed) using line-level matches."""
    by_line: dict[int, set[str]] = {}
    for suppression in suppressions:
        by_line.setdefault(suppression.line, set()).update(suppression.rule_ids)
    kept: list[Finding] = []
    suppressed: list[Finding] = []
    for finding in findings:
        if finding.rule_id in by_line.get(finding.line, set()):
            suppressed.append(finding)
        else:
            kept.append(finding)
    return kept, suppressed

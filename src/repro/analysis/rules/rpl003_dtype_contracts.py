"""RPL003 — dtype contracts in the core engine.

Results are bit-identical across RAM and mmap modes only because every
array obeys the declared dtype registry
(:mod:`repro.core.dtypes`): folded path keys are ``uint64`` (the hash
domain), vector ids and CSR offsets are ``int64`` (signed so
searchsorted/diff arithmetic cannot wrap).  A dtype-less allocation in a
hot path silently becomes platform-dependent (``np.array([...])`` picks
C ``long``) or promotes to ``float64``; both break the on-disk format
and the equivalence suites only *sometimes*, on some machines.  This
rule flags dtype-less allocations in ``core/``, builtin dtypes
(``dtype=float``), and named-contract mismatches (``*_keys`` arrays not
``uint64``; ``*_ids``/``*_offsets`` arrays not ``int64``).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register
from repro.analysis.source import SourceModule, attribute_chain, call_name, keyword_value

#: Constructors that must always carry an explicit ``dtype=``.
ALLOCATORS = frozenset(
    {
        "np.array",
        "np.empty",
        "np.zeros",
        "np.ones",
        "np.full",
        "np.arange",
        "np.fromiter",
        "numpy.array",
        "numpy.empty",
        "numpy.zeros",
        "numpy.ones",
        "numpy.full",
        "numpy.arange",
        "numpy.fromiter",
    }
)

#: Calls checked for *contract* dtype only when the target name matches
#: (``np.asarray`` without a dtype is a legitimate pass-through).
CONVERTERS = frozenset(
    {"np.asarray", "np.ascontiguousarray", "numpy.asarray", "numpy.ascontiguousarray"}
)

#: The declared registry (mirrors ``repro.core.dtypes``): name patterns
#: → required dtype suffix.  Checked on assignment targets.
KEY_SUFFIXES = ("key", "keys", "fence", "fences")
ID_SUFFIXES = ("id", "ids", "offset", "offsets")

#: Accepted spellings per contract (registry constants or numpy literals).
KEY_DTYPES = frozenset({"np.uint64", "numpy.uint64", "KEY_DTYPE", "dtypes.KEY_DTYPE"})
ID_DTYPES = frozenset(
    {
        "np.int64",
        "numpy.int64",
        "ID_DTYPE",
        "OFFSET_DTYPE",
        "dtypes.ID_DTYPE",
        "dtypes.OFFSET_DTYPE",
    }
)

#: Builtin dtypes whose width is implementation-defined (``int`` maps to
#: C ``long``: 32-bit on Windows) or promoting.  ``bool`` is exempt —
#: ``dtype=bool`` is exactly ``np.bool_`` and idiomatic for masks.
BUILTIN_DTYPES = frozenset({"float", "int", "complex"})


def _dtype_name(node: ast.expr | None) -> str | None:
    if node is None:
        return None
    return attribute_chain(node)


def _target_basename(target: ast.expr) -> str | None:
    """The contract-relevant name of an assignment target, lowercased."""
    if isinstance(target, ast.Name):
        return target.id.lower()
    if isinstance(target, ast.Attribute):
        return target.attr.lower()
    return None


def _contract_for(name: str | None) -> tuple[str, frozenset[str]] | None:
    if name is None:
        return None
    stem = name.lstrip("_")
    parts = stem.split("_")
    last = parts[-1] if parts else stem
    if last in KEY_SUFFIXES:
        return "uint64", KEY_DTYPES
    if last in ID_SUFFIXES:
        return "int64", ID_DTYPES
    return None


@register
class DtypeContracts(Rule):
    rule_id = "RPL003"
    title = "dtype contract violation in core/"
    rationale = (
        "keys are uint64 and ids/offsets are int64 by declared contract "
        "(repro.core.dtypes); dtype-less or builtin-dtype allocations are "
        "platform-dependent and silently promote to float64"
    )
    hint = "pass an explicit dtype from repro.core.dtypes (KEY_DTYPE / ID_DTYPE)"

    def applies_to(self, module: SourceModule) -> bool:
        return module.in_package("core")

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                yield from self._check_assignment(module, node.targets[0], node.value)
            elif isinstance(node, ast.Call):
                yield from self._check_call(module, node, target_name=None)

    def _check_assignment(
        self, module: SourceModule, target: ast.expr, value: ast.expr
    ) -> Iterator[Finding]:
        if isinstance(value, ast.Call):
            yield from self._check_contract(module, value, _target_basename(target))

    def _check_call(
        self, module: SourceModule, call: ast.Call, target_name: str | None
    ) -> Iterator[Finding]:
        name = call_name(call)
        if name is None:
            return
        dtype = keyword_value(call, "dtype")
        if name in ALLOCATORS and dtype is None:
            yield self.finding(
                module,
                call.lineno,
                call.col_offset,
                f"'{name}(...)' without an explicit dtype in core/",
            )
            return
        dtype_name = _dtype_name(dtype)
        if dtype_name in BUILTIN_DTYPES:
            yield self.finding(
                module,
                call.lineno,
                call.col_offset,
                f"builtin dtype '{dtype_name}' in '{name}(...)'; widths are "
                "implementation-defined — use an explicit numpy dtype",
            )

    def _check_contract(
        self, module: SourceModule, call: ast.Call, target_name: str | None
    ) -> Iterator[Finding]:
        """Contract check for ``target = np.<ctor>(..., dtype=...)``."""
        name = call_name(call)
        if name is None:
            return
        is_astype = name.rsplit(".", 1)[-1] == "astype"
        if name not in ALLOCATORS and name not in CONVERTERS and not is_astype:
            return
        contract = _contract_for(target_name)
        if contract is None:
            return
        required, accepted = contract
        if is_astype and call.args and not call.keywords:
            dtype_name = _dtype_name(call.args[0])
        else:
            dtype_name = _dtype_name(keyword_value(call, "dtype"))
        if dtype_name is None:
            # Dtype-less allocators are already flagged by _check_call;
            # dtype-less converters are pass-throughs we cannot judge.
            return
        if dtype_name not in accepted:
            yield self.finding(
                module,
                call.lineno,
                call.col_offset,
                f"'{target_name}' is declared {required} by the dtype registry "
                f"but is allocated as '{dtype_name}'",
            )

"""Built-in rule modules; importing this package registers every rule."""

from repro.analysis.rules import (  # noqa: F401 - imported for registration
    rpl001_blocking_async,
    rpl002_lock_discipline,
    rpl003_dtype_contracts,
    rpl004_mmap_mutation,
    rpl005_stats_contract,
)

"""RPL004 — mutation of memmap-backed arrays outside sanctioned paths.

mmap-loaded indexes are read-only by design: every ``np.memmap`` view is
opened with ``mode="r"`` and mutations overlay at the engine level
(tombstones) instead of touching the mapped pages.  A stray in-place
write would either crash (read-only mapping) or — far worse, via a
copy-on-write or writable mapping — corrupt the on-disk index that
other processes are serving from.  This rule flags:

* ``np.memmap(...)`` opened with any mode other than ``"r"`` (including
  the *default*, which is ``r+``),
* ``array.setflags(write=True)``,
* subscript/augmented stores into a variable bound from ``np.memmap``,
* stores into postings-store fields (``path_keys``/``posting_ids``/…)
  outside the sanctioned compaction paths.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register
from repro.analysis.source import SourceModule, call_name, keyword_value

#: Attribute names of postings-store arrays that are memmap-backed in
#: mmap mode; in-place stores into them are never correct outside
#: compaction.
PROTECTED_FIELDS = frozenset(
    {
        "path_keys",
        "path_items",
        "path_offsets",
        "posting_ids",
        "posting_offsets",
        "vector_items",
        "vector_offsets",
    }
)

#: Functions allowed to rebuild postings arrays in place: the bulk
#: compaction paths, which by contract only ever run on RAM-mode stores.
SANCTIONED_FUNCTIONS = frozenset(
    {"compact", "_compact", "_compact_with_chains", "to_sorted_state"}
)


def _memmap_mode(call: ast.Call) -> str | None:
    """The mode of an ``np.memmap`` call: keyword, positional, or default."""
    mode = keyword_value(call, "mode")
    if mode is None and len(call.args) >= 3:
        mode = call.args[2]
    if mode is None:
        return "r+"  # numpy's default
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return mode.value
    return None  # dynamic — cannot judge statically


def _store_base(target: ast.expr) -> ast.expr | None:
    """The subscripted expression of a store target, if any."""
    if isinstance(target, ast.Subscript):
        return target.value
    return None


@register
class MmapMutation(Rule):
    rule_id = "RPL004"
    title = "write to a memmap-backed array"
    rationale = (
        "mmap-loaded indexes serve read-only np.memmap views; in-place "
        "writes crash on the read-only mapping or corrupt the shared "
        "on-disk index"
    )
    hint = (
        "overlay the mutation at the engine level (tombstones / pending "
        "buffers) or materialise with np.array(view) first"
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        yield from self._check_memmap_modes(module)
        yield from self._check_setflags(module)
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(module, node)

    def _check_memmap_modes(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name not in ("np.memmap", "numpy.memmap"):
                continue
            mode = _memmap_mode(node)
            if mode is not None and mode != "r":
                yield self.finding(
                    module,
                    node.lineno,
                    node.col_offset,
                    f"np.memmap opened with writable mode {mode!r}; index "
                    "mappings must use mode='r'",
                )

    def _check_setflags(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name is None or name.rsplit(".", 1)[-1] != "setflags":
                continue
            write = keyword_value(node, "write")
            if isinstance(write, ast.Constant) and write.value is True:
                yield self.finding(
                    module,
                    node.lineno,
                    node.col_offset,
                    "setflags(write=True) re-enables writes on a read-only view",
                )

    def _check_function(
        self, module: SourceModule, function: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        sanctioned = function.name in SANCTIONED_FUNCTIONS
        mapped_names: set[str] = set()
        for node in ast.walk(function):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                if call_name(node.value) in ("np.memmap", "numpy.memmap"):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            mapped_names.add(target.id)

        for node in ast.walk(function):
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, ast.AugAssign):
                targets = [node.target]
            for target in targets:
                base = _store_base(target)
                if base is None:
                    continue
                if isinstance(base, ast.Name) and base.id in mapped_names:
                    yield self.finding(
                        module,
                        node.lineno,
                        node.col_offset,
                        f"in-place store into memmap-bound array '{base.id}'",
                        scope=function.name,
                    )
                elif (
                    not sanctioned
                    and isinstance(base, ast.Attribute)
                    and base.attr in PROTECTED_FIELDS
                ):
                    yield self.finding(
                        module,
                        node.lineno,
                        node.col_offset,
                        f"in-place store into postings-store field "
                        f"'.{base.attr}' outside a sanctioned compaction path",
                        scope=function.name,
                    )

"""RPL005 — stats-contract drift between query surfaces and stats classes.

``QueryStats``/``BatchQueryStats`` are the observability contract: the
CLI, ``/stats``, the benchmark gates and the equivalence suites all read
specific fields, so a query surface that stops populating one (or
populates a misspelled one — plain dataclasses accept any attribute)
drifts silently.  This rule pins the contract three ways:

* constructor keywords must be declared fields,
* attribute writes on a variable bound from a stats constructor must be
  declared fields,
* each named query surface must populate the fields it claims
  (:data:`SURFACE_CONTRACT`), and the stats dataclasses themselves must
  match :data:`DECLARED_FIELDS` — so editing ``stats.py`` without
  updating the contract table is itself a finding.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register
from repro.analysis.source import SourceModule, call_name

#: The declared stats contract; must match the dataclasses in
#: ``repro/core/stats.py`` (checked by this rule when linting that file).
DECLARED_FIELDS: dict[str, frozenset[str]] = {
    "KernelStats": frozenset(
        {
            "paths_extended",
            "keys_folded",
            "chain_probes",
            "merge_rows",
            "dedupe_hits",
        }
    ),
    "QueryStats": frozenset(
        {
            "filters_generated",
            "candidates_examined",
            "unique_candidates",
            "similarity_evaluations",
            "found",
            "repetitions_used",
            "shards_probed",
            "from_cache",
            "kernel",
        }
    ),
    "BatchQueryStats": frozenset(
        {
            "num_queries",
            "per_query",
            "distinct_filter_probes",
            "duplicate_filter_probes",
            "queries_deduplicated",
            "elapsed_seconds",
            "generation_seconds",
            "verification_seconds",
            "merge_seconds",
            "shards_probed",
            "minor_page_faults",
            "major_page_faults",
            "kernel",
            "fanout",
        }
    ),
    "AggregatedQueryStats": frozenset(
        {
            "num_queries",
            "total_filters_generated",
            "total_candidates_examined",
            "total_unique_candidates",
            "total_similarity_evaluations",
            "num_found",
            "per_query",
        }
    ),
}

#: Fields each query surface must populate (ctor keyword or attribute
#: write anywhere in the function body).  Keys are qualnames
#: (``Class.method`` or a module-level function name), so delegating
#: wrappers on the index classes are not held to the engine's contract.
SURFACE_CONTRACT: dict[str, frozenset[str]] = {
    "FilterEngine._query_csr": frozenset(
        {
            "filters_generated",
            "repetitions_used",
            "shards_probed",
            "candidates_examined",
            "unique_candidates",
            "similarity_evaluations",
            "found",
        }
    ),
    "FilterEngine.query_candidates": frozenset({"unique_candidates"}),
    "FilterEngine._query_candidates_csr": frozenset(
        {
            "filters_generated",
            "repetitions_used",
            "shards_probed",
            "candidates_examined",
        }
    ),
    "FilterEngine._execute_batched": frozenset(
        {
            "num_queries",
            "distinct_filter_probes",
            "duplicate_filter_probes",
            "generation_seconds",
            "verification_seconds",
            "merge_seconds",
            "shards_probed",
            "queries_deduplicated",
            "elapsed_seconds",
        }
    ),
    "FilterEngine._query_batch_chunk": frozenset(
        {
            "num_queries",
            "generation_seconds",
            "verification_seconds",
            "merge_seconds",
            "distinct_filter_probes",
            "duplicate_filter_probes",
            "shards_probed",
        }
    ),
    "FilterEngine._candidate_arrays_chunk": frozenset(
        {
            "num_queries",
            "generation_seconds",
            "merge_seconds",
            "distinct_filter_probes",
            "duplicate_filter_probes",
            "shards_probed",
        }
    ),
    "run_loop_batch": frozenset(
        {"num_queries", "queries_deduplicated", "elapsed_seconds"}
    ),
}

_STATS_CLASSES = frozenset(DECLARED_FIELDS)


def _walk_functions(
    node: ast.AST, prefix: str = ""
) -> Iterator[tuple[str, ast.FunctionDef | ast.AsyncFunctionDef]]:
    """Yield ``(qualname, function)`` pairs, class-qualified."""
    for child in ast.iter_child_nodes(node):
        if isinstance(child, ast.ClassDef):
            yield from _walk_functions(child, f"{prefix}{child.name}.")
        elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield f"{prefix}{child.name}", child
            yield from _walk_functions(child, f"{prefix}{child.name}.")
        else:
            yield from _walk_functions(child, prefix)


def _stats_ctor_name(call: ast.Call) -> str | None:
    name = call_name(call)
    if name is None:
        return None
    tail = name.rsplit(".", 1)[-1]
    return tail if tail in _STATS_CLASSES else None


@register
class StatsContract(Rule):
    rule_id = "RPL005"
    title = "stats contract drift"
    rationale = (
        "QueryStats/BatchQueryStats fields are read by the CLI, /stats and "
        "the benchmark gates; surfaces that stop populating them (or write "
        "misspelled fields) drift silently because dataclasses accept any "
        "attribute"
    )
    hint = "update the surface and the contract table in rpl005 together"

    def check(self, module: SourceModule) -> Iterator[Finding]:
        yield from self._check_class_drift(module)
        for qualname, function in _walk_functions(module.tree):
            yield from self._check_function(module, function, qualname)

    def _check_class_drift(self, module: SourceModule) -> Iterator[Finding]:
        """When linting the stats module itself, pin the declared contract."""
        for node in module.tree.body:
            if not isinstance(node, ast.ClassDef) or node.name not in _STATS_CLASSES:
                continue
            annotated = {
                statement.target.id
                for statement in node.body
                if isinstance(statement, ast.AnnAssign)
                and isinstance(statement.target, ast.Name)
                and not statement.target.id.startswith("_")
            }
            declared = DECLARED_FIELDS[node.name]
            for missing in sorted(declared - annotated):
                yield self.finding(
                    module,
                    node.lineno,
                    node.col_offset,
                    f"'{node.name}' no longer declares field '{missing}' listed "
                    "in the lint contract",
                    scope=node.name,
                )
            for extra in sorted(annotated - declared):
                yield self.finding(
                    module,
                    node.lineno,
                    node.col_offset,
                    f"'{node.name}' declares field '{extra}' unknown to the "
                    "lint contract; update DECLARED_FIELDS in rpl005",
                    scope=node.name,
                )

    def _check_function(
        self,
        module: SourceModule,
        function: ast.FunctionDef | ast.AsyncFunctionDef,
        qualname: str,
    ) -> Iterator[Finding]:
        stats_vars: dict[str, str] = {}  # variable name -> stats class
        populated: set[str] = set()

        for node in ast.walk(function):
            if isinstance(node, ast.Call):
                ctor = _stats_ctor_name(node)
                if ctor is not None:
                    declared = DECLARED_FIELDS[ctor]
                    for keyword in node.keywords:
                        if keyword.arg is None:
                            continue
                        populated.add(keyword.arg)
                        if keyword.arg not in declared:
                            yield self.finding(
                                module,
                                node.lineno,
                                node.col_offset,
                                f"'{ctor}(...)' called with unknown field "
                                f"'{keyword.arg}'",
                                scope=function.name,
                            )
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Name)
                        and isinstance(node.value, ast.Call)
                        and _stats_ctor_name(node.value) is not None
                    ):
                        stats_vars[target.id] = _stats_ctor_name(node.value) or ""

        for node in ast.walk(function):
            target: ast.expr | None = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
            elif isinstance(node, ast.AugAssign):
                target = node.target
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id in stats_vars
            ):
                populated.add(target.attr)
                declared = DECLARED_FIELDS[stats_vars[target.value.id]]
                if target.attr not in declared:
                    yield self.finding(
                        module,
                        node.lineno,
                        node.col_offset,
                        f"write to unknown field '{target.attr}' on "
                        f"{stats_vars[target.value.id]} variable "
                        f"'{target.value.id}'",
                        scope=function.name,
                    )

        required = SURFACE_CONTRACT.get(qualname)
        if required is not None:
            # Count attribute writes on *any* variable as populating —
            # chunk surfaces write through per_query elements too.
            for node in ast.walk(function):
                if isinstance(node, ast.AugAssign) and isinstance(
                    node.target, ast.Attribute
                ):
                    populated.add(node.target.attr)
                elif isinstance(node, ast.Assign):
                    for tgt in node.targets:
                        if isinstance(tgt, ast.Attribute):
                            populated.add(tgt.attr)
            for missing in sorted(required - populated):
                yield self.finding(
                    module,
                    function.lineno,
                    function.col_offset,
                    f"query surface '{function.name}' no longer populates "
                    f"contract field '{missing}'",
                    scope=function.name,
                )

"""RPL001 — blocking call inside an ``async def`` in the serving tier.

The whole serving layer runs on one event loop; a single synchronous
engine call or filesystem touch inside a coroutine stalls *every*
in-flight request for its duration.  The sanctioned escapes are the
micro-batcher (which owns the engine lane) and
``loop.run_in_executor(...)`` — so this rule flags direct calls to
engine/index/filesystem surfaces inside ``async def`` bodies in
``serve/`` unless they are awaited coroutines or routed through an
executor.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register
from repro.analysis.source import SourceModule, call_name

#: Call targets (dotted or bare names) that block the event loop.
BLOCKING_CALLS = frozenset(
    {
        "open",
        "time.sleep",
        "os.stat",
        "os.listdir",
        "os.replace",
        "os.rename",
        "os.remove",
        "np.load",
        "np.save",
        "json.load",
        "json.dump",
        "load_index",
        "save_index",
        "convert_index_file",
        "similarity_join",
        "similarity_self_join",
        "run_loop_batch",
    }
)

#: Method names that hit the engine, an index or the filesystem no
#: matter the receiver (``<anything>.query_batch(...)``).
BLOCKING_METHODS = frozenset(
    {
        "query",
        "query_batch",
        "query_candidates",
        "query_candidates_batch",
        "query_candidates_arrays_batch",
        "load_sync",
        "compact",
        "build",
        "insert",
        "read_text",
        "write_text",
        "read_bytes",
        "write_bytes",
    }
)


def _is_executor_call(call: ast.Call) -> bool:
    name = call_name(call)
    return name is not None and name.rsplit(".", 1)[-1] == "run_in_executor"


@register
class BlockingCallInAsync(Rule):
    rule_id = "RPL001"
    title = "blocking call inside async def"
    rationale = (
        "a synchronous engine/index/filesystem call in a coroutine stalls the "
        "whole event loop; every request in flight pays its latency"
    )
    hint = (
        "route the call through the micro-batcher lane or "
        "await loop.run_in_executor(...)"
    )

    def applies_to(self, module: SourceModule) -> bool:
        return module.in_package("serve")

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                yield from self._check_async_function(module, node)

    def _check_async_function(
        self, module: SourceModule, function: ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        exempt: set[int] = set()
        # Everything passed *to* run_in_executor runs on the executor, so
        # a lambda/partial body there is the sanctioned blocking place.
        for node in ast.walk(function):
            if isinstance(node, ast.Call) and _is_executor_call(node):
                for argument in [*node.args, *[kw.value for kw in node.keywords]]:
                    exempt.update(id(child) for child in ast.walk(argument))
        # Awaited calls are coroutines (``await service.query(...)``), not
        # blocking sync calls; nested function definitions are analysed
        # only if they are themselves async (they get their own visit).
        awaited: set[int] = set()
        nested: set[int] = set()
        for node in ast.walk(function):
            if isinstance(node, ast.Await) and isinstance(node.value, ast.Call):
                awaited.add(id(node.value))
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda))
                and node is not function
            ):
                nested.update(id(child) for child in ast.walk(node))

        for node in ast.walk(function):
            if not isinstance(node, ast.Call):
                continue
            if id(node) in exempt or id(node) in awaited or id(node) in nested:
                continue
            name = call_name(node)
            if name is None:
                continue
            method = name.rsplit(".", 1)[-1]
            if name in BLOCKING_CALLS or (method in BLOCKING_METHODS and "." in name):
                yield self.finding(
                    module,
                    node.lineno,
                    node.col_offset,
                    f"blocking call '{name}' inside 'async def {function.name}'",
                )

"""RPL002 — lock discipline: guarded attributes touched without the lock.

If a class ever assigns ``self.x`` inside ``with self._lock:``, then
``x`` is part of that lock's protected state, and any read or write of
``self.x`` outside a lock block in the same class is a potential data
race — exactly the bug class that corrupts the lazily-opened shard
caches in ``mmap_store.py`` under concurrent queries.  ``__init__`` is
exempt (object publication happens-before any cross-thread access);
intentional racy fast paths (double-checked locking) must carry an
inline suppression explaining why they are safe.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register
from repro.analysis.source import SourceModule, is_self_attribute

#: Methods where unguarded access is structurally safe.
EXEMPT_METHODS = frozenset({"__init__", "__new__", "__repr__", "__del__"})


def _lock_names(class_def: ast.ClassDef) -> set[str]:
    """Attribute names of ``self.<name>`` lock objects used in ``with``."""
    names: set[str] = set()
    for node in ast.walk(class_def):
        if isinstance(node, ast.With):
            for item in node.items:
                expr = item.context_expr
                if isinstance(expr, ast.Attribute) and is_self_attribute(expr):
                    if "lock" in expr.attr.lower():
                        names.add(expr.attr)
    return names


def _nodes_under_lock(method: ast.AST, lock_names: set[str]) -> set[int]:
    """Ids of every node lexically inside a ``with self.<lock>:`` block."""
    guarded: set[int] = set()
    for node in ast.walk(method):
        if not isinstance(node, ast.With):
            continue
        if any(
            isinstance(item.context_expr, ast.Attribute)
            and is_self_attribute(item.context_expr)
            and item.context_expr.attr in lock_names
            for item in node.items
        ):
            for statement in node.body:
                guarded.update(id(child) for child in ast.walk(statement))
    return guarded


def _assigned_attributes(node: ast.AST) -> set[str]:
    """``self.x`` attribute names written by an assignment statement."""
    targets: list[ast.expr] = []
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        targets = [node.target]
    names = set()
    for target in targets:
        # ``self.x[k] = v`` mutates self.x just as much as ``self.x = v``.
        if isinstance(target, ast.Subscript):
            target = target.value
        if isinstance(target, ast.Attribute) and is_self_attribute(target):
            names.add(target.attr)
        elif isinstance(target, ast.Tuple):
            for element in target.elts:
                if isinstance(element, ast.Attribute) and is_self_attribute(element):
                    names.add(element.attr)
    return names


@register
class LockDiscipline(Rule):
    rule_id = "RPL002"
    title = "lock-guarded attribute accessed outside the lock"
    rationale = (
        "an attribute assigned under 'with self._lock' is shared mutable "
        "state; touching it without the lock elsewhere in the class races "
        "with the writer"
    )
    hint = (
        "take the lock around the access, or suppress with a reason if this "
        "is deliberate double-checked locking"
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(module, node)

    def _check_class(
        self, module: SourceModule, class_def: ast.ClassDef
    ) -> Iterator[Finding]:
        lock_names = _lock_names(class_def)
        if not lock_names:
            return

        methods = [
            node
            for node in class_def.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]

        # Pass 1: which attributes does the class assign under a lock?
        guarded_attrs: set[str] = set()
        for method in methods:
            under_lock = _nodes_under_lock(method, lock_names)
            for node in ast.walk(method):
                if id(node) in under_lock and isinstance(
                    node, (ast.Assign, ast.AugAssign, ast.AnnAssign)
                ):
                    guarded_attrs.update(_assigned_attributes(node))
        guarded_attrs -= lock_names
        if not guarded_attrs:
            return

        # Pass 2: any access to those attributes outside a lock block.
        for method in methods:
            if method.name in EXEMPT_METHODS:
                continue
            under_lock = _nodes_under_lock(method, lock_names)
            for node in ast.walk(method):
                if (
                    isinstance(node, ast.Attribute)
                    and is_self_attribute(node)
                    and node.attr in guarded_attrs
                    and id(node) not in under_lock
                ):
                    access = "write" if isinstance(node.ctx, (ast.Store, ast.Del)) else "read"
                    yield self.finding(
                        module,
                        node.lineno,
                        node.col_offset,
                        f"{access} of lock-guarded attribute 'self.{node.attr}' "
                        f"outside 'with self.{sorted(lock_names)[0]}' in "
                        f"'{class_def.name}.{method.name}'",
                        scope=f"{class_def.name}.{method.name}",
                    )

"""The rule registry: every RPL rule registers itself at import time."""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Type

from repro.analysis.findings import Finding
from repro.analysis.source import SourceModule


class Rule:
    """Base class for one lint rule.

    Subclasses set the class attributes and implement :meth:`check`;
    :meth:`applies_to` lets a rule scope itself to part of the tree
    (e.g. RPL001 only reads ``serve/`` modules).  Rules yield findings
    *without* fingerprints — the runner stamps those in one pass so the
    occurrence-disambiguation is global per file.
    """

    rule_id: str = ""
    title: str = ""
    rationale: str = ""
    hint: str = ""

    def applies_to(self, module: SourceModule) -> bool:
        return True

    def check(self, module: SourceModule) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self,
        module: SourceModule,
        line: int,
        col: int,
        message: str,
        scope: str = "<module>",
        hint: str | None = None,
    ) -> Finding:
        return Finding(
            rule_id=self.rule_id,
            path=module.relpath,
            line=line,
            col=col,
            message=message,
            hint=self.hint if hint is None else hint,
            scope=scope,
        )


_REGISTRY: dict[str, Type[Rule]] = {}


def register(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not rule_class.rule_id:
        raise ValueError(f"{rule_class.__name__} does not declare a rule_id")
    if rule_class.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule_class.rule_id}")
    _REGISTRY[rule_class.rule_id] = rule_class
    return rule_class


def _load_builtin_rules() -> None:
    # Importing the package registers every rule module via its __init__.
    import repro.analysis.rules  # noqa: F401 - import-for-side-effect


def all_rules() -> list[Rule]:
    """Fresh instances of every registered rule, sorted by id."""
    _load_builtin_rules()
    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    _load_builtin_rules()
    try:
        return _REGISTRY[rule_id]()
    except KeyError:
        raise KeyError(
            f"unknown rule {rule_id!r}; known rules: {', '.join(sorted(_REGISTRY))}"
        ) from None


def select_rules(only: Iterable[str] | None = None) -> list[Rule]:
    """The rules to run: all of them, or the ``only`` subset by id."""
    if only is None:
        return all_rules()
    return [get_rule(rule_id) for rule_id in only]


RuleFactory = Callable[[], Rule]

"""Collect files, run every rule, apply suppressions and the baseline."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.findings import Finding, fingerprint_findings
from repro.analysis.registry import Rule, select_rules
from repro.analysis.source import SourceModule, scope_map
from repro.analysis.suppressions import apply_suppressions, scan_suppressions

#: Directory names never descended into when expanding a directory path.
_SKIP_DIRS = {".git", "__pycache__", ".mypy_cache", ".ruff_cache", ".venv", "build"}


@dataclass
class LintResult:
    """Everything one lint run produced, pre-partitioned for reporting."""

    findings: list[Finding]  # new findings that should fail the build
    grandfathered: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    stale_baseline: list[BaselineEntry] = field(default_factory=list)
    parse_errors: list[Finding] = field(default_factory=list)
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings and not self.stale_baseline and not self.parse_errors


def iter_python_files(paths: Sequence[Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated .py file list."""
    collected: set[Path] = set()
    for path in paths:
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not _SKIP_DIRS.intersection(part for part in candidate.parts):
                    collected.add(candidate)
        elif path.suffix == ".py":
            collected.add(path)
    return sorted(collected)


def lint_paths(
    paths: Sequence[Path],
    root: Path,
    rules: Iterable[Rule] | None = None,
    baseline: Baseline | None = None,
    only: Sequence[str] | None = None,
) -> LintResult:
    """Run the rule suite over ``paths`` (files or directories).

    ``root`` anchors the repo-relative paths used in findings and the
    baseline.  ``rules`` overrides the registry (used by the fixture
    tests); ``only`` selects registered rules by id.
    """
    active_rules = list(rules) if rules is not None else select_rules(only)
    baseline = baseline if baseline is not None else Baseline.empty()

    raw: list[Finding] = []
    suppressed: list[Finding] = []
    parse_errors: list[Finding] = []
    lines_by_path: dict[str, list[str]] = {}
    files = iter_python_files(paths)
    for file_path in files:
        try:
            module = SourceModule.parse(file_path, root)
        except (SyntaxError, UnicodeDecodeError) as error:
            lineno = getattr(error, "lineno", None) or 1
            parse_errors.append(
                Finding(
                    rule_id="E999",
                    path=file_path.as_posix(),
                    line=int(lineno),
                    col=0,
                    message=f"could not parse file: {error}",
                )
            )
            continue
        lines_by_path[module.relpath] = module.lines
        scopes = scope_map(module.tree)
        module_findings: list[Finding] = []
        for rule in active_rules:
            if not rule.applies_to(module):
                continue
            for finding in rule.check(module):
                module_findings.append(finding)
        module_findings = _attach_scopes(module_findings, module, scopes)
        suppressions, malformed = scan_suppressions(module)
        kept, silenced = apply_suppressions(module_findings, suppressions)
        raw.extend(kept)
        raw.extend(malformed)
        suppressed.extend(silenced)

    raw.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    stamped = fingerprint_findings(raw, lines_by_path)
    new, grandfathered, stale = baseline.split(stamped)
    return LintResult(
        findings=new,
        grandfathered=grandfathered,
        suppressed=suppressed,
        stale_baseline=stale,
        parse_errors=parse_errors,
        files_checked=len(files),
    )


def _attach_scopes(
    findings: list[Finding], module: SourceModule, scopes: dict[object, str]
) -> list[Finding]:
    """Fill in each finding's enclosing scope from the line's AST nodes.

    Rules may set ``scope`` themselves; for the rest, the innermost
    scope owning any node that starts on the finding's line is used
    (good enough for fingerprints — ties only matter within one line).
    """
    by_line: dict[int, str] = {}
    for node, scope in scopes.items():
        lineno = getattr(node, "lineno", None)
        if lineno is None:
            continue
        # Prefer deeper (longer) qualnames when several nodes share a line.
        current = by_line.get(lineno)
        if current is None or len(scope) > len(current):
            by_line[lineno] = scope
    resolved: list[Finding] = []
    for finding in findings:
        if finding.scope != "<module>":
            resolved.append(finding)
            continue
        scope = by_line.get(finding.line, "<module>")
        resolved.append(
            Finding(
                rule_id=finding.rule_id,
                path=finding.path,
                line=finding.line,
                col=finding.col,
                message=finding.message,
                hint=finding.hint,
                scope=scope,
            )
        )
    return resolved

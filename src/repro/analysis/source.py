"""Parsed source files and shared AST helpers for the rule suite."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path


@dataclass
class SourceModule:
    """One parsed Python file handed to every rule.

    ``relpath`` is repo-relative with posix separators — it is what
    findings, baselines and formatters all use, so output is stable
    across checkouts.
    """

    path: Path
    relpath: str
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)

    @classmethod
    def parse(cls, path: Path, root: Path) -> "SourceModule":
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        try:
            relpath = path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            relpath = path.as_posix()
        return cls(
            path=path,
            relpath=relpath,
            source=source,
            tree=tree,
            lines=source.splitlines(),
        )

    def in_package(self, package: str) -> bool:
        """Whether this file lives under ``src/repro/<package>/``."""
        return f"/repro/{package}/" in f"/{self.relpath}"


def scope_map(tree: ast.Module) -> dict[ast.AST, str]:
    """Map every node to its enclosing class/function qualname.

    Module-level nodes map to ``<module>``; a statement inside
    ``class C: def m(...)`` maps to ``C.m``.  Used to give findings a
    human-readable scope and a line-shift-stable fingerprint component.
    """
    scopes: dict[ast.AST, str] = {}

    def visit(node: ast.AST, scope: str) -> None:
        scopes[node] = scope
        child_scope = scope
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            child_scope = node.name if scope == "<module>" else f"{scope}.{node.name}"
            scopes[node] = child_scope
        for child in ast.iter_child_nodes(node):
            visit(child, child_scope)

    visit(tree, "<module>")
    return scopes


def attribute_chain(node: ast.AST) -> str | None:
    """Dotted name of an attribute/name expression, or ``None``.

    ``np.memmap`` → ``"np.memmap"``; ``self._lock`` → ``"self._lock"``;
    anything rooted in a call or subscript returns ``None``.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(call: ast.Call) -> str | None:
    """Dotted name of a call target (``np.zeros(...)`` → ``"np.zeros"``)."""
    return attribute_chain(call.func)


def keyword_value(call: ast.Call, name: str) -> ast.expr | None:
    for keyword in call.keywords:
        if keyword.arg == name:
            return keyword.value
    return None


def is_self_attribute(node: ast.AST, attr: str | None = None) -> bool:
    """Whether ``node`` is ``self.<attr>`` (any attribute when ``attr`` is None)."""
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and (attr is None or node.attr == attr)
    )

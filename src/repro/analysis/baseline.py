"""Committed baseline of grandfathered findings.

A baseline lets the lint gate land before every legacy finding is fixed:
known findings are recorded by fingerprint *with a reason* and stop
failing the build, while anything new still does.  Entries are not
immortal — when a baselined finding no longer fires the entry is
reported as *stale* and the build fails until ``--update-baseline``
removes it, so the baseline only ever shrinks by itself.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.findings import Finding

BASELINE_VERSION = 1


@dataclass(frozen=True)
class BaselineEntry:
    fingerprint: str
    rule_id: str
    path: str
    reason: str

    def to_dict(self) -> dict[str, str]:
        return {
            "fingerprint": self.fingerprint,
            "rule": self.rule_id,
            "path": self.path,
            "reason": self.reason,
        }


@dataclass
class Baseline:
    entries: list[BaselineEntry]

    @classmethod
    def empty(cls) -> "Baseline":
        return cls(entries=[])

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        if not path.exists():
            return cls.empty()
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except ValueError as error:
            raise ValueError(f"{path} is not valid JSON: {error}") from error
        if not isinstance(payload, dict) or payload.get("version") != BASELINE_VERSION:
            raise ValueError(
                f"{path} is not a version-{BASELINE_VERSION} lint baseline"
            )
        entries = []
        for raw in payload.get("findings", []):
            if not isinstance(raw, dict) or "fingerprint" not in raw:
                raise ValueError(f"{path} holds a malformed baseline entry: {raw!r}")
            reason = str(raw.get("reason", "")).strip()
            if not reason:
                raise ValueError(
                    f"{path} entry {raw.get('fingerprint')} has no reason; every "
                    "baselined finding must say why it is grandfathered"
                )
            entries.append(
                BaselineEntry(
                    fingerprint=str(raw["fingerprint"]),
                    rule_id=str(raw.get("rule", "")),
                    path=str(raw.get("path", "")),
                    reason=reason,
                )
            )
        return cls(entries=entries)

    def save(self, path: Path) -> None:
        payload = {
            "version": BASELINE_VERSION,
            "findings": [entry.to_dict() for entry in self.entries],
        }
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    def split(
        self, findings: list[Finding]
    ) -> tuple[list[Finding], list[Finding], list[BaselineEntry]]:
        """Partition findings against the baseline.

        Returns ``(new, grandfathered, stale)``: findings not in the
        baseline, findings matched (and silenced) by it, and baseline
        entries that matched nothing — which should fail the build as
        stale until the baseline is regenerated.
        """
        by_fingerprint = {entry.fingerprint: entry for entry in self.entries}
        new: list[Finding] = []
        grandfathered: list[Finding] = []
        matched: set[str] = set()
        for finding in findings:
            if finding.fingerprint in by_fingerprint:
                matched.add(finding.fingerprint)
                grandfathered.append(finding)
            else:
                new.append(finding)
        stale = [entry for entry in self.entries if entry.fingerprint not in matched]
        return new, grandfathered, stale

    @classmethod
    def from_findings(
        cls, findings: list[Finding], reason: str = "grandfathered at baseline creation"
    ) -> "Baseline":
        return cls(
            entries=[
                BaselineEntry(
                    fingerprint=finding.fingerprint,
                    rule_id=finding.rule_id,
                    path=finding.path,
                    reason=reason,
                )
                for finding in findings
            ]
        )

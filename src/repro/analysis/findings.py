"""Structured lint findings with stable fingerprints.

A finding pins a rule violation to ``file:line:col`` for humans, but
baselines and suppressions must survive unrelated edits, so each finding
also carries a *fingerprint*: a hash of the rule id, the file, the
enclosing scope (class/function qualname) and the normalised source line
— stable under line-number shifts, invalidated when the flagged code
itself changes.  Identical lines in the same scope are disambiguated by
occurrence index.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific location."""

    rule_id: str
    path: str  # repo-relative, posix separators
    line: int  # 1-based
    col: int  # 0-based, as reported by ast
    message: str
    hint: str = ""
    scope: str = "<module>"
    fingerprint: str = field(default="", compare=False)

    def to_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
            "scope": self.scope,
            "fingerprint": self.fingerprint,
        }

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}"


def _normalise(source_line: str) -> str:
    """Collapse whitespace so reformatting does not change fingerprints."""
    return " ".join(source_line.split())


def fingerprint_findings(
    findings: list[Finding], lines_by_path: dict[str, list[str]]
) -> list[Finding]:
    """Attach stable fingerprints to a batch of findings.

    The occurrence index makes fingerprints unique when the same rule
    fires on textually identical lines in the same scope (the index
    counts within that (rule, path, scope, line-text) group, so deleting
    one of two duplicates only expires one baseline entry).
    """
    seen: dict[str, int] = {}
    stamped: list[Finding] = []
    for finding in findings:
        lines = lines_by_path.get(finding.path, [])
        text = lines[finding.line - 1] if 0 < finding.line <= len(lines) else ""
        key = f"{finding.rule_id}|{finding.path}|{finding.scope}|{_normalise(text)}"
        occurrence = seen.get(key, 0)
        seen[key] = occurrence + 1
        digest = hashlib.sha256(f"{key}|{occurrence}".encode()).hexdigest()[:16]
        stamped.append(
            Finding(
                rule_id=finding.rule_id,
                path=finding.path,
                line=finding.line,
                col=finding.col,
                message=finding.message,
                hint=finding.hint,
                scope=finding.scope,
                fingerprint=digest,
            )
        )
    return stamped

"""Deterministic seed handling shared by the test suite and the benchmarks.

``tests/conftest.py`` and ``benchmarks/conftest.py`` previously hard-coded
their dataset seeds independently; this module is the single source of truth
so CI runs are reproducible and the two harnesses cannot drift.  Every seed
is derived from one base seed plus a role name; setting the
``REPRO_SEED_BASE`` environment variable shifts *all* derived seeds at once
(useful for fuzzing a CI matrix across seeds without editing code).

The per-role offsets preserve the exact datasets the suite has always used,
so changing this module is a behavioural change to the tests — treat it like
test code.
"""

from __future__ import annotations

import os

import numpy as np

#: Role → seed offset.  Offsets are the historical hard-coded seeds so the
#: fixture datasets stay byte-for-byte identical to earlier revisions.
ROLE_SEEDS: dict[str, int] = {
    "tests:skewed-dataset": 12345,
    "tests:uniform-dataset": 54321,
    "bench:skewed-dataset": 2024,
    "bench:uniform-dataset": 4202,
    "bench:queries": 97,
    "bench:candidate-throughput": 98,
    "bench:kernels-dataset": 99,
    "tests:save-load:skew_adaptive": 7100,
    "tests:save-load:correlated": 7101,
    "tests:save-load:chosen_path": 7102,
    "bench:serialization-dataset": 7200,
    "bench:serving-dataset": 7300,
    "bench:serving-replay": 7301,
    "tests:dist-queries": 7400,
    "bench:shard-fanout-dataset": 7401,
    "bench:shard-fanout-queries": 7402,
    "tests:chaos-queries": 7403,
    "bench:latency-queries": 7404,
}


def base_seed() -> int:
    """The global seed base (``REPRO_SEED_BASE`` env var, default 0)."""
    return int(os.environ.get("REPRO_SEED_BASE", "0"))


def seed_for(role: str) -> int:
    """Deterministic seed for a named role, shifted by the global base."""
    if role not in ROLE_SEEDS:
        raise KeyError(
            f"unknown seed role {role!r}; expected one of {sorted(ROLE_SEEDS)}"
        )
    return ROLE_SEEDS[role] + base_seed()


def rng_for(role: str) -> np.random.Generator:
    """A NumPy generator seeded deterministically for the given role."""
    return np.random.default_rng(seed_for(role))

"""Method comparison sweeps: the analytics behind Figure 1 and Section 7.

The central artefact is :func:`figure1_curve`, which reproduces Figure 1 of
the paper: for a distribution in which half the bits are set with
probability ``p`` and the other half with probability ``p/8``, and a
correlation of ``α = 2/3``, it computes

* the ρ value of the paper's data structure (red line), by solving the
  Theorem 1 equation, and
* the ρ value achieved by Chosen Path on the same instance (blue line),
  ``log(b1)/log(b2)`` with ``b1``/``b2`` the expected similarity of
  correlated/uncorrelated pairs,

while prefix filtering has exponent 1 in this regime (all probabilities are
Θ(1)) and is therefore not plotted.

:func:`compare_methods` is the general-purpose version used by the empirical
benches: given any probability profile it reports the exponents of all
methods side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.theory.rho import (
    chosen_path_rho,
    prefix_filter_exponent,
    solve_adversarial_rho,
    solve_correlated_rho,
)


@dataclass(frozen=True)
class MethodComparison:
    """Exponents of the competing methods on one instance."""

    skew_adaptive_rho: float
    chosen_path_rho: float
    prefix_filter_exponent: float
    expected_close_similarity: float
    expected_far_similarity: float

    @property
    def improvement_over_chosen_path(self) -> float:
        """Difference ``ρ_CP − ρ_ours`` (positive when the paper's method wins)."""
        return self.chosen_path_rho - self.skew_adaptive_rho


def _expected_similarities(
    probabilities: np.ndarray, alpha: float
) -> tuple[float, float]:
    """Expected Braun-Blanquet similarity of correlated / uncorrelated pairs.

    Uses the concentration approximations of Section 7.2: sizes concentrate
    at ``Σ p_i``, the uncorrelated intersection at ``Σ p_i²`` and the
    correlated intersection at ``Σ (p_i²(1−α) + p_i α)``.
    """
    expected_size = float(probabilities.sum())
    if expected_size == 0.0:
        return 0.0, 0.0
    far = float(np.sum(probabilities**2)) / expected_size
    close = float(np.sum(probabilities**2 * (1.0 - alpha) + probabilities * alpha)) / expected_size
    return close, far


def compare_methods(
    probabilities: Sequence[float] | np.ndarray,
    alpha: float,
    num_vectors: int = 1_000_000,
) -> MethodComparison:
    """Compare the analytic exponents of all methods on one correlated instance.

    Parameters
    ----------
    probabilities:
        The item-probability profile of the distribution.
    alpha:
        Correlation of the planted pair.
    num_vectors:
        Dataset size used for the prefix-filter exponent (the other two
        exponents are size-free).
    """
    array = np.asarray(probabilities, dtype=np.float64)
    close, far = _expected_similarities(array, alpha)
    ours = solve_correlated_rho(array, alpha)
    if 0.0 < far < close <= 1.0:
        baseline = chosen_path_rho(close, far)
    else:
        baseline = float("nan")
    prefix = prefix_filter_exponent(array, num_vectors)
    return MethodComparison(
        skew_adaptive_rho=ours,
        chosen_path_rho=baseline,
        prefix_filter_exponent=prefix,
        expected_close_similarity=close,
        expected_far_similarity=far,
    )


def figure1_curve(
    p_values: Sequence[float] | np.ndarray | None = None,
    alpha: float = 2.0 / 3.0,
    rare_divisor: float = 8.0,
    block_size: int = 500,
) -> list[dict[str, float]]:
    """The Figure 1 sweep: ρ of our structure vs Chosen Path as ``p`` varies.

    Parameters
    ----------
    p_values:
        The grid of frequent-block probabilities ``p``; defaults to 60 points
        spanning (0, 1) exclusive (the paper plots p from 0 to 1).
    alpha:
        Correlation level; the paper uses 2/3.
    rare_divisor:
        The rare block has probability ``p / rare_divisor``; the paper uses 8.
    block_size:
        Number of items per block (the exponents depend only on the *ratio*
        of the block sizes, so any equal sizes give the paper's setting).

    Returns
    -------
    list of dict
        One row per ``p`` with keys ``p``, ``ours``, ``chosen_path``,
        ``prefix_filter``, ``b1`` and ``b2``.
    """
    if p_values is None:
        p_values = np.linspace(0.02, 0.98, 49)
    rows: list[dict[str, float]] = []
    for p in np.asarray(p_values, dtype=np.float64):
        p = float(p)
        if not 0.0 < p < 1.0:
            raise ValueError(f"p values must lie strictly inside (0, 1), got {p}")
        rare = min(1.0, p / rare_divisor)
        probabilities = np.concatenate(
            [np.full(block_size, p), np.full(block_size, rare)]
        )
        comparison = compare_methods(probabilities, alpha)
        rows.append(
            {
                "p": p,
                "ours": comparison.skew_adaptive_rho,
                "chosen_path": comparison.chosen_path_rho,
                "prefix_filter": comparison.prefix_filter_exponent,
                "b1": comparison.expected_close_similarity,
                "b2": comparison.expected_far_similarity,
            }
        )
    return rows


def adversarial_comparison(
    query_probabilities: Sequence[float] | np.ndarray,
    b1: float,
    num_vectors: int,
) -> dict[str, float]:
    """Section 7.1 style comparison for an adversarial query.

    Returns the paper's exponent (Theorem 2 equation restricted to the query
    items), the Chosen Path exponent with ``b2`` equal to the average item
    probability of the query (the expected similarity of the query to a
    random dataset vector), and the prefix-filtering exponent.
    """
    array = np.asarray(query_probabilities, dtype=np.float64)
    if array.ndim != 1 or array.size == 0:
        raise ValueError("query_probabilities must be a non-empty 1-d array")
    ours = solve_adversarial_rho(array, b1)
    b2 = float(array.mean())
    if 0.0 < b2 < b1:
        baseline = chosen_path_rho(b1, b2)
    else:
        baseline = float("nan")
    prefix = prefix_filter_exponent(array, num_vectors)
    return {
        "ours": ours,
        "chosen_path": baseline,
        "prefix_filter": prefix,
        "b2": b2,
    }

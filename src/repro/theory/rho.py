"""Numerical solvers for the ρ exponents of the paper and the baselines.

* Adversarial queries (Theorem 2 / Section 7.1): the query exponent is the
  smallest ``ρ ≥ 0`` with ``Σ_{i ∈ q} p_i^ρ ≤ b1 |q|``.
* Correlated queries (Theorem 1 / Section 7.2): ``ρ`` solves
  ``Σ_i p_i^{1+ρ} / p̂_i = Σ_i p_i`` with ``p̂_i = p_i (1 − α) + α``.
* Chosen Path: ``ρ = log(b1) / log(b2)``.
* MinHash: ``ρ = log(j1) / log(j2)`` on Jaccard values.
* Prefix filtering: no sub-linear worst-case guarantee; the cost model
  exposed here is the expected fraction of the dataset touched through the
  query's rarest item, matching the paper's ``Ω(n^0.1)``-style statements.

The left-hand sides of both paper equations are strictly decreasing in ρ (for
probabilities in (0, 1)), so a simple bisection converges; we expand the
bracket geometrically first because ρ may exceed 1 for very hard inputs.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

import numpy as np


def _as_probability_array(probabilities: Sequence[float] | np.ndarray) -> np.ndarray:
    array = np.asarray(probabilities, dtype=np.float64)
    if array.ndim != 1 or array.size == 0:
        raise ValueError("probabilities must be a non-empty 1-d array")
    if np.any(array < 0.0) or np.any(array > 1.0):
        raise ValueError("probabilities must lie in [0, 1]")
    return array


def _bisect_decreasing(
    function: Callable[[float], float],
    target: float,
    tolerance: float = 1e-12,
    max_exponent: float = 64.0,
) -> float:
    """Smallest ``x >= 0`` with ``function(x) <= target`` for decreasing ``function``.

    Returns 0.0 when the inequality already holds at ``x = 0`` and
    ``max_exponent`` when it fails everywhere in the search range.
    """
    if function(0.0) <= target:
        return 0.0
    low = 0.0
    high = 1.0
    while function(high) > target:
        low = high
        high *= 2.0
        if high > max_exponent:
            return max_exponent
    while high - low > tolerance:
        middle = 0.5 * (low + high)
        if function(middle) > target:
            low = middle
        else:
            high = middle
    return high


def solve_adversarial_rho(
    query_probabilities: Sequence[float] | np.ndarray,
    b1: float,
    tolerance: float = 1e-12,
) -> float:
    """The Theorem 2 exponent: smallest ``ρ`` with ``Σ_{i∈q} p_i^ρ ≤ b1 |q|``.

    Parameters
    ----------
    query_probabilities:
        The item probabilities ``p_i`` restricted to the items of the query.
    b1:
        The Braun-Blanquet similarity threshold.

    Notes
    -----
    Items with probability 0 contribute ``0^ρ = 0`` for ``ρ > 0`` (and 1 at
    ``ρ = 0``); items with probability 1 contribute 1 for every ρ.  If the
    number of probability-1 items already exceeds ``b1 |q|`` no finite ρ
    satisfies the inequality and ``math.inf`` is returned.
    """
    probabilities = _as_probability_array(query_probabilities)
    if not 0.0 < b1 <= 1.0:
        raise ValueError(f"b1 must be in (0, 1], got {b1}")
    query_size = probabilities.size
    target = b1 * query_size
    ones = float(np.count_nonzero(probabilities >= 1.0))
    if ones > target:
        return math.inf
    positive = probabilities[(probabilities > 0.0) & (probabilities < 1.0)]

    def left_hand_side(rho: float) -> float:
        if rho == 0.0:
            # 0^0 = 1 by the convention of the sum at rho = 0.
            return float(query_size)
        return float(np.sum(np.power(positive, rho))) + ones

    return _bisect_decreasing(left_hand_side, target, tolerance=tolerance)


def solve_correlated_rho(
    probabilities: Sequence[float] | np.ndarray,
    alpha: float,
    tolerance: float = 1e-12,
) -> float:
    """The Theorem 1 exponent: ``ρ`` solving ``Σ p_i^{1+ρ}/p̂_i = Σ p_i``.

    ``p̂_i = p_i (1 − α) + α``.  The left-hand side is strictly decreasing in
    ρ and exceeds the right-hand side at ρ = 0 (since ``p̂_i < 1``), so the
    equation has a unique non-negative solution whenever some ``p_i`` lies
    strictly between 0 and 1.
    """
    array = _as_probability_array(probabilities)
    if not 0.0 < alpha <= 1.0:
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    conditional = array * (1.0 - alpha) + alpha
    target = float(array.sum())
    if target == 0.0:
        return 0.0
    mask = (array > 0.0) & (array < 1.0)
    constant_part = float(np.sum(array[~mask] / conditional[~mask])) if np.any(~mask) else 0.0
    varying = array[mask]
    varying_conditional = conditional[mask]

    def left_hand_side(rho: float) -> float:
        if varying.size == 0:
            return constant_part
        return float(np.sum(np.power(varying, 1.0 + rho) / varying_conditional)) + constant_part

    return _bisect_decreasing(left_hand_side, target, tolerance=tolerance)


def solve_adversarial_rho_weighted(
    probabilities: Sequence[float] | np.ndarray,
    weights: Sequence[float] | np.ndarray,
    b1: float,
    tolerance: float = 1e-12,
) -> float:
    """Weighted variant of :func:`solve_adversarial_rho`.

    ``weights[k]`` counts how many query items have probability
    ``probabilities[k]`` (weights may be fractional and astronomically large,
    e.g. ``n^{0.9} C log n`` in the Section 7.2 instance), so block-structured
    profiles never need to be materialised item by item.
    """
    probability_array = _as_probability_array(probabilities)
    weight_array = np.asarray(weights, dtype=np.float64)
    if weight_array.shape != probability_array.shape:
        raise ValueError("weights must have the same shape as probabilities")
    if np.any(weight_array < 0.0):
        raise ValueError("weights must be non-negative")
    if not 0.0 < b1 <= 1.0:
        raise ValueError(f"b1 must be in (0, 1], got {b1}")
    query_size = float(weight_array.sum())
    target = b1 * query_size
    ones_mass = float(weight_array[probability_array >= 1.0].sum())
    if ones_mass > target:
        return math.inf
    mask = (probability_array > 0.0) & (probability_array < 1.0)
    positive = probability_array[mask]
    positive_weights = weight_array[mask]

    def left_hand_side(rho: float) -> float:
        if rho == 0.0:
            return query_size
        return float(np.sum(positive_weights * np.power(positive, rho))) + ones_mass

    return _bisect_decreasing(left_hand_side, target, tolerance=tolerance)


def solve_correlated_rho_weighted(
    probabilities: Sequence[float] | np.ndarray,
    weights: Sequence[float] | np.ndarray,
    alpha: float,
    tolerance: float = 1e-12,
) -> float:
    """Weighted variant of :func:`solve_correlated_rho` for block profiles.

    Solves ``Σ_k w_k p_k^{1+ρ} / p̂_k = Σ_k w_k p_k`` — the Theorem 1 equation
    where ``w_k`` items share probability ``p_k``.
    """
    probability_array = _as_probability_array(probabilities)
    weight_array = np.asarray(weights, dtype=np.float64)
    if weight_array.shape != probability_array.shape:
        raise ValueError("weights must have the same shape as probabilities")
    if np.any(weight_array < 0.0):
        raise ValueError("weights must be non-negative")
    if not 0.0 < alpha <= 1.0:
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    conditional = probability_array * (1.0 - alpha) + alpha
    target = float(np.sum(weight_array * probability_array))
    if target == 0.0:
        return 0.0
    mask = (probability_array > 0.0) & (probability_array < 1.0)
    constant_part = float(
        np.sum(weight_array[~mask] * probability_array[~mask] / conditional[~mask])
    ) if np.any(~mask) else 0.0
    varying = probability_array[mask]
    varying_weights = weight_array[mask]
    varying_conditional = conditional[mask]

    def left_hand_side(rho: float) -> float:
        if varying.size == 0:
            return constant_part
        return (
            float(np.sum(varying_weights * np.power(varying, 1.0 + rho) / varying_conditional))
            + constant_part
        )

    return _bisect_decreasing(left_hand_side, target, tolerance=tolerance)


def chosen_path_rho(b1: float, b2: float) -> float:
    """Chosen Path's worst-case exponent ``log(b1) / log(b2)``.

    ``b1`` is the similarity of sought-for ("close") pairs and ``b2`` the
    similarity scale of uncorrelated ("far") pairs; both must lie in (0, 1)
    with ``b2 < b1``.
    """
    if not 0.0 < b2 < 1.0:
        raise ValueError(f"b2 must be in (0, 1), got {b2}")
    if not 0.0 < b1 <= 1.0:
        raise ValueError(f"b1 must be in (0, 1], got {b1}")
    if b2 >= b1:
        raise ValueError(f"b2 ({b2}) must be smaller than b1 ({b1})")
    if b1 == 1.0:
        return 0.0
    return math.log(b1) / math.log(b2)


def minhash_rho(jaccard_close: float, jaccard_far: float) -> float:
    """MinHash LSH exponent ``log(j1) / log(j2)`` on Jaccard similarities."""
    if not 0.0 < jaccard_far < 1.0:
        raise ValueError(f"jaccard_far must be in (0, 1), got {jaccard_far}")
    if not 0.0 < jaccard_close <= 1.0:
        raise ValueError(f"jaccard_close must be in (0, 1], got {jaccard_close}")
    if jaccard_far >= jaccard_close:
        raise ValueError("jaccard_far must be smaller than jaccard_close")
    if jaccard_close == 1.0:
        return 0.0
    return math.log(jaccard_close) / math.log(jaccard_far)


def prefix_filter_exponent(
    query_probabilities: Sequence[float] | np.ndarray,
    num_vectors: int,
) -> float:
    """Cost exponent of prefix filtering on a random query.

    Prefix filtering must examine every dataset vector containing the
    query's rarest item (and possibly more).  With item probabilities ``p``
    the expected size of that candidate list is ``n * min_i p_i``, so the
    work is ``n^e`` with ``e = 1 + log_n(min_i p_i)`` (clamped to [0, 1]).
    This matches the paper's statements of the form "prefix filtering needs
    ``Ω(n^0.1)`` time" when the rarest query item has probability
    ``n^{-0.9}``, and gives exponent 1 when all probabilities are Ω(1).
    """
    probabilities = _as_probability_array(query_probabilities)
    if num_vectors <= 1:
        raise ValueError(f"num_vectors must be at least 2, got {num_vectors}")
    minimum = float(probabilities.min())
    if minimum <= 0.0:
        return 0.0
    exponent = 1.0 + math.log(minimum) / math.log(num_vectors)
    return min(1.0, max(0.0, exponent))


def balanced_correlated_rho(probability: float, alpha: float) -> float:
    """Closed form for the correlated exponent when all ``p_i = p``.

    Solving ``d p^{1+ρ}/p̂ = d p`` gives ``p^ρ = p̂``, i.e.
    ``ρ = log(p(1−α)+α) / log(p)`` — exactly the Chosen Path bound
    ``log(β + α(1−β))/log β`` quoted in the paper's related-work section,
    confirming that the structure recovers Chosen Path in the no-skew case.
    """
    if not 0.0 < probability < 1.0:
        raise ValueError(f"probability must be in (0, 1), got {probability}")
    if not 0.0 < alpha <= 1.0:
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    conditional = probability * (1.0 - alpha) + alpha
    return math.log(conditional) / math.log(probability)

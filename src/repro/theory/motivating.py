"""The Section 1 motivating example: exploiting skew on a harmonic profile.

The introduction of the paper motivates skew-awareness with the "harmonic"
distribution ``Pr[x_k = 1] = 1/k``.  A single LSH-style search costs ``n^ρ``
with ``ρ = log(i1)/log(i2)``; the paper sketches a two-way *frequent/rare
split* of the query as an ad-hoc way to do better, and then observes that
"it remains unclear how to do this in a principled way.  This question was
the starting point for this paper."

This module reproduces all three quantities so benches and tests can show the
progression the paper describes:

* :func:`single_search_exponent` — ``ρ = log(i1)/log(i2)``, the skew-oblivious
  baseline of the introduction;
* :func:`split_query_exponents` — the best achievable exponent of the intro's
  two-way split heuristic (optimising the split parameter ``ℓ``).  Because
  ``(a + b)^ρ ≤ a^ρ + b^ρ`` for ``ρ ∈ (0, 1)``, the literal two-way split can
  at best match the single search on its own; its value is as a stepping
  stone, exactly as in the paper;
* :func:`skew_adaptive_exponent` — the exponent of the paper's actual data
  structure (the Theorem 2 equation) on the same query, which is the
  principled answer to the question and is strictly smaller whenever the
  query's item probabilities are skewed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.data.distributions import ItemDistribution
from repro.data.families import harmonic_probabilities
from repro.theory.rho import solve_adversarial_rho


def _lsh_exponent(close_fraction: float, far_fraction: float) -> float:
    """The ``ρ = log(i1)/log(i2)`` exponent of the introduction, clamped to [0, 1]."""
    if not 0.0 < far_fraction < 1.0 or not 0.0 < close_fraction <= 1.0:
        return 1.0
    if close_fraction <= far_fraction:
        return 1.0
    if close_fraction >= 1.0:
        return 0.0
    return min(1.0, max(0.0, math.log(close_fraction) / math.log(far_fraction)))


def single_search_exponent(query_probabilities: Sequence[float] | np.ndarray, i1: float) -> float:
    """The skew-oblivious exponent ``log(i1)/log(i2)`` with ``i2 = mean p_i``."""
    array = np.asarray(query_probabilities, dtype=np.float64)
    if array.ndim != 1 or array.size == 0:
        raise ValueError("query_probabilities must be a non-empty 1-d array")
    if not 0.0 < i1 <= 1.0:
        raise ValueError(f"i1 must be in (0, 1], got {i1}")
    return _lsh_exponent(i1, float(array.mean()))


def skew_adaptive_exponent(query_probabilities: Sequence[float] | np.ndarray, i1: float) -> float:
    """The paper's principled exponent: the Theorem 2 equation on the query."""
    return solve_adversarial_rho(query_probabilities, i1)


@dataclass(frozen=True)
class SplitExponents:
    """Exponents of the single search, the frequent/rare split, and the paper's structure."""

    single_rho: float
    split_rho_frequent: float
    split_rho_rare: float
    split_parameter: float
    skew_adaptive_rho: float
    i1: float
    i2: float
    i_frequent: float
    i_rare: float

    @property
    def split_cost_exponent(self) -> float:
        """Exponent of the combined split cost ``n^ρ_f + n^ρ_r`` (the max)."""
        return max(self.split_rho_frequent, self.split_rho_rare)

    @property
    def adaptive_speedup_exponent(self) -> float:
        """``ρ_single − ρ_adaptive``: the gain of the paper's principled method."""
        return self.single_rho - self.skew_adaptive_rho


def split_query_exponents(
    query_probabilities: Sequence[float] | np.ndarray,
    i1: float,
    num_split_candidates: int = 399,
) -> SplitExponents:
    """Single-search, split-search and skew-adaptive exponents for one query.

    The query is described by the probabilities of its items, ordered from
    most to least frequent (as in the harmonic example).  The split heuristic
    divides the items into a frequent half and a rare half, exactly as in the
    paper's introduction, and the split parameter ``ℓ`` is optimised by grid
    search.

    Parameters
    ----------
    query_probabilities:
        Item probabilities of the query's items, most frequent first.
    i1:
        The target intersection fraction (``|x* ∩ q| ≥ i1 |q|``).
    num_split_candidates:
        Resolution of the grid search over ``ℓ``.
    """
    array = np.asarray(query_probabilities, dtype=np.float64)
    if array.ndim != 1 or array.size < 2:
        raise ValueError("query_probabilities must contain at least two items")
    if not 0.0 < i1 <= 1.0:
        raise ValueError(f"i1 must be in (0, 1], got {i1}")
    if num_split_candidates < 1:
        raise ValueError(f"num_split_candidates must be positive, got {num_split_candidates}")

    query_size = float(array.size)
    i2 = float(array.sum()) / query_size
    half = array.size // 2
    i_frequent = float(array[:half].sum()) / query_size
    i_rare = float(array[half:].sum()) / query_size

    single_rho = _lsh_exponent(i1, i2)
    adaptive_rho = skew_adaptive_exponent(array, i1)

    best_frequent = single_rho
    best_rare = single_rho
    best_split = i1
    best_cost = float("inf")
    for split in np.linspace(i1 / (num_split_candidates + 1), i1, num_split_candidates, endpoint=False):
        split = float(split)
        rho_frequent = _lsh_exponent(split, i_frequent)
        rho_rare = _lsh_exponent(i1 - split, i_rare)
        cost = max(rho_frequent, rho_rare)
        if cost < best_cost:
            best_cost = cost
            best_frequent = rho_frequent
            best_rare = rho_rare
            best_split = split

    return SplitExponents(
        single_rho=single_rho,
        split_rho_frequent=best_frequent,
        split_rho_rare=best_rare,
        split_parameter=best_split,
        skew_adaptive_rho=adaptive_rho,
        i1=i1,
        i2=i2,
        i_frequent=i_frequent,
        i_rare=i_rare,
    )


def motivating_example_exponents(
    dimension: int = 4096,
    i1: float = 0.3,
    seed: int = 0,
) -> SplitExponents:
    """The concrete harmonic-distribution instance of the introduction.

    A query is sampled from the harmonic distribution (so its typical items
    are the frequent, small-index ones, with a long tail of rare items), and
    the three exponents are computed on the probabilities of its items.

    Parameters
    ----------
    dimension:
        Universe size ``d``; the expected query size is ``≈ ln d``.
    i1:
        Target intersection fraction.
    seed:
        Seed for sampling the query.
    """
    probabilities = harmonic_probabilities(dimension, maximum=1.0)
    distribution = ItemDistribution(np.minimum(probabilities, 1.0))
    rng = np.random.default_rng(seed)
    query = sorted(distribution.sample(rng))
    if len(query) < 2:
        query = [0, 1]
    query_probabilities = probabilities[np.asarray(query, dtype=np.int64)]
    order = np.argsort(-query_probabilities)
    return split_query_exponents(query_probabilities[order], i1)

"""Analytic cost models: the ρ exponents of the paper and its competitors.

The paper's performance bounds are stated as ``n^ρ`` where ``ρ`` solves an
equation in the item probabilities (Theorems 1 and 2).  This subpackage
provides numerical solvers for those equations, closed forms for the
baselines (Chosen Path, MinHash, prefix filtering), Chernoff-bound helpers
used in correctness arguments, and the comparison sweeps behind Figure 1 and
the Section 7 worked examples.
"""

from repro.theory.rho import (
    chosen_path_rho,
    minhash_rho,
    prefix_filter_exponent,
    solve_adversarial_rho,
    solve_adversarial_rho_weighted,
    solve_correlated_rho,
    solve_correlated_rho_weighted,
)
from repro.theory.bounds import (
    chernoff_upper_tail,
    chernoff_lower_tail,
    expected_filters_bound,
    required_expected_size,
)
from repro.theory.comparison import MethodComparison, compare_methods, figure1_curve
from repro.theory.motivating import motivating_example_exponents, split_query_exponents

__all__ = [
    "chosen_path_rho",
    "minhash_rho",
    "prefix_filter_exponent",
    "solve_adversarial_rho",
    "solve_adversarial_rho_weighted",
    "solve_correlated_rho",
    "solve_correlated_rho_weighted",
    "chernoff_upper_tail",
    "chernoff_lower_tail",
    "expected_filters_bound",
    "required_expected_size",
    "MethodComparison",
    "compare_methods",
    "figure1_curve",
    "motivating_example_exponents",
    "split_query_exponents",
]

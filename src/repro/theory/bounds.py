"""Probability bounds and resource predictions used by the analysis.

The module collects the quantitative ingredients of the paper's proofs that
are also useful at runtime:

* the weighted Chernoff bounds of Lemma 4 (used by tests that check the
  concentration claims of Lemma 10 empirically),
* the expected-filters bound of Lemma 6, giving a prediction for
  ``E[|F(x)|]`` that the evaluation harness compares against measurements,
* the "how large must ``Σ p_i`` be" helper implied by the paper's
  requirement ``Σ_i p_i ≥ C log n``.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np


def chernoff_upper_tail(expectation: float, epsilon: float, max_weight: float = 1.0) -> float:
    """Upper-tail bound of Lemma 4: ``Pr[S ≥ (1+ε)E[S]] ≤ exp(−ε²E[S]/(3a))``.

    Parameters
    ----------
    expectation:
        ``E[S]`` of the weighted sum.
    epsilon:
        The relative deviation ``ε ≥ 0``.
    max_weight:
        The bound ``a`` on the individual weights.
    """
    if expectation < 0.0:
        raise ValueError(f"expectation must be non-negative, got {expectation}")
    if epsilon < 0.0:
        raise ValueError(f"epsilon must be non-negative, got {epsilon}")
    if max_weight <= 0.0:
        raise ValueError(f"max_weight must be positive, got {max_weight}")
    return math.exp(-(epsilon**2) * expectation / (3.0 * max_weight))


def chernoff_lower_tail(expectation: float, epsilon: float, max_weight: float = 1.0) -> float:
    """Lower-tail bound of Lemma 4: ``Pr[S ≤ (1−ε)E[S]] ≤ exp(−ε²E[S]/(2a))``."""
    if expectation < 0.0:
        raise ValueError(f"expectation must be non-negative, got {expectation}")
    if epsilon < 0.0:
        raise ValueError(f"epsilon must be non-negative, got {epsilon}")
    if max_weight <= 0.0:
        raise ValueError(f"max_weight must be positive, got {max_weight}")
    return math.exp(-(epsilon**2) * expectation / (2.0 * max_weight))


def expected_filters_bound(num_vectors: int, rho: float, slack: float = 1.1) -> float:
    """The Lemma 6 style prediction ``E[|F(x)|] = O(n^ρ)`` with a slack factor.

    The constant hidden in the O() depends on ``c^{log n}`` with ``c`` close
    to 1 for large C; ``slack`` lets callers encode that constant when
    comparing against measurements.
    """
    if num_vectors <= 0:
        raise ValueError(f"num_vectors must be positive, got {num_vectors}")
    if rho < 0.0:
        raise ValueError(f"rho must be non-negative, got {rho}")
    if slack <= 0.0:
        raise ValueError(f"slack must be positive, got {slack}")
    return slack * float(num_vectors) ** rho


def required_expected_size(num_vectors: int, capital_c: float) -> float:
    """The paper's requirement ``Σ_i p_i ≥ C log n`` as an absolute number.

    Natural logarithm is used; the theorems hold for "sufficiently large C"
    so the base only shifts the constant.
    """
    if num_vectors <= 1:
        return 0.0
    if capital_c <= 0.0:
        raise ValueError(f"capital_c must be positive, got {capital_c}")
    return capital_c * math.log(num_vectors)


def correlated_pair_similarity_bounds(
    probabilities: Sequence[float] | np.ndarray, alpha: float
) -> tuple[float, float]:
    """The Lemma 10 concentration levels (close, far) for Braun-Blanquet similarity.

    Returns ``(α/1.3, α/1.5)``: with high probability a correlated pair has
    similarity at least the first value while an uncorrelated pair stays
    below the second, provided ``Σ p_i`` is large enough and ``p_i ≤ α/2``.
    The probabilities argument is accepted so callers can assert the
    precondition ``max p_i ≤ α/2`` in one place.
    """
    array = np.asarray(probabilities, dtype=np.float64)
    if not 0.0 < alpha <= 1.0:
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    if array.size and float(array.max()) > alpha / 2.0 + 1e-12:
        raise ValueError(
            "Lemma 10 requires all item probabilities to be at most alpha/2; "
            f"got max p_i = {float(array.max()):.4f} for alpha = {alpha}"
        )
    return alpha / 1.3, alpha / 1.5


def success_probability_lower_bound(num_vectors: int, repetitions: int) -> float:
    """Probability that at least one repetition succeeds, per Lemma 5.

    Each repetition succeeds (the similar pair shares a filter) with
    probability at least ``1/log n``; with ``r`` independent repetitions the
    failure probability is at most ``(1 − 1/log n)^r``.
    """
    if num_vectors <= 2:
        return 1.0
    if repetitions <= 0:
        raise ValueError(f"repetitions must be positive, got {repetitions}")
    per_repetition = 1.0 / math.log(num_vectors)
    per_repetition = min(1.0, per_repetition)
    return 1.0 - (1.0 - per_repetition) ** repetitions


def space_bound(num_vectors: int, rho: float, dimension: int, slack: float = 1.1) -> float:
    """Theorem 1/2 space prediction ``O(n^{1+ρ} + d n)`` with a slack factor."""
    if dimension <= 0:
        raise ValueError(f"dimension must be positive, got {dimension}")
    return slack * (float(num_vectors) ** (1.0 + rho) + float(dimension) * num_vectors)

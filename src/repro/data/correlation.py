"""Correlated-query and planted-pair generation.

Two generation tasks recur in the paper's evaluation of Theorem 1 and in the
light-bulb style examples:

* sampling a query ``q ~ D_α(x)`` for a dataset vector ``x`` (Definition 3),
  provided by :func:`correlated_query`, and
* planting α-correlated pairs inside an otherwise independent dataset,
  provided by :func:`plant_correlated_pairs` — the sparse-vector analogue of
  the light bulb problem used by join and recall experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.data.distributions import ItemDistribution
from repro.hashing.random_source import RandomSource


@dataclass(frozen=True)
class PlantedPair:
    """Indices of a planted correlated pair and the correlation used."""

    first_index: int
    second_index: int
    alpha: float


def correlated_query(
    distribution: ItemDistribution,
    x: frozenset[int],
    alpha: float,
    seed: int,
) -> frozenset[int]:
    """Draw one query α-correlated with ``x`` (Definition 3), reproducibly."""
    source = RandomSource(seed)
    return distribution.sample_correlated(x, alpha, source.generator)


def correlated_queries(
    distribution: ItemDistribution,
    targets: Sequence[frozenset[int]],
    alpha: float,
    seed: int,
) -> list[frozenset[int]]:
    """Draw one α-correlated query per target vector."""
    source = RandomSource(seed)
    return [
        distribution.sample_correlated(target, alpha, source.child(index).generator)
        for index, target in enumerate(targets)
    ]


def plant_correlated_pairs(
    distribution: ItemDistribution,
    count: int,
    num_pairs: int,
    alpha: float,
    seed: int,
) -> tuple[list[frozenset[int]], list[PlantedPair]]:
    """Sample a dataset of ``count`` vectors with ``num_pairs`` planted α-correlated pairs.

    The first ``count - num_pairs`` vectors are independent draws from the
    distribution.  Each planted pair consists of one of those vectors ``x``
    and an extra vector ``q ~ D_α(x)`` appended at the end, so the returned
    dataset has exactly ``count`` vectors.

    Parameters
    ----------
    distribution:
        The item distribution.
    count:
        Total number of vectors in the returned dataset.
    num_pairs:
        Number of planted pairs; must satisfy ``2 * num_pairs <= count``.
    alpha:
        Correlation level of the planted pairs.
    seed:
        Seed controlling all sampling.

    Returns
    -------
    (vectors, pairs):
        The dataset and the list of planted pair descriptors (indices into
        the returned list).
    """
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    if num_pairs < 0:
        raise ValueError(f"num_pairs must be non-negative, got {num_pairs}")
    if 2 * num_pairs > count:
        raise ValueError(
            f"cannot plant {num_pairs} pairs in a dataset of {count} vectors"
        )
    source = RandomSource(seed)
    base_count = count - num_pairs
    vectors = distribution.sample_many(base_count, source.child("base").generator)
    # Resample any empty vectors: correlated pairs with an empty anchor are
    # meaningless and the model makes them vanishingly unlikely anyway.
    for index, vector in enumerate(vectors):
        if not vector:
            vectors[index] = distribution.sample(source.child("resample", index).generator)

    pairs: list[PlantedPair] = []
    partner_rng = source.child("partners")
    anchor_indices = partner_rng.generator.choice(base_count, size=num_pairs, replace=False)
    for pair_number, anchor_index in enumerate(sorted(int(i) for i in anchor_indices)):
        partner = distribution.sample_correlated(
            vectors[anchor_index], alpha, partner_rng.child(pair_number).generator
        )
        vectors.append(partner)
        pairs.append(
            PlantedPair(first_index=anchor_index, second_index=len(vectors) - 1, alpha=alpha)
        )
    return vectors, pairs

"""The product distribution ``D[p_1, ..., p_d]`` of the paper (Section 2).

A data vector is a sparse boolean vector over a universe of ``d`` items; bit
``i`` is set independently with probability ``p_i``.  Vectors are represented
sparsely as frozensets of set-bit indices.

The class also implements α-correlated query sampling (Definition 3): given a
data vector ``x``, the query ``q`` copies ``x_i`` with probability ``α`` and
resamples ``q_i ~ Bernoulli(p_i)`` with probability ``1 − α``, independently
per coordinate.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.hashing.random_source import RandomSource


class ItemDistribution:
    """Product distribution over ``{0, 1}^d`` with known item probabilities.

    Parameters
    ----------
    probabilities:
        Sequence of item-level probabilities ``p_1, ..., p_d``.  The paper
        assumes ``p_i <= 1/2``; this class only requires ``0 <= p_i <= 1``
        and exposes :meth:`validate_paper_assumptions` for callers that want
        to enforce the stricter model.
    """

    def __init__(self, probabilities: Sequence[float] | np.ndarray):
        array = np.asarray(probabilities, dtype=np.float64)
        if array.ndim != 1:
            raise ValueError(f"probabilities must be a 1-d sequence, got shape {array.shape}")
        if array.size == 0:
            raise ValueError("probabilities must be non-empty")
        if np.any(array < 0.0) or np.any(array > 1.0):
            raise ValueError("all probabilities must lie in [0, 1]")
        self._probabilities = array.copy()
        self._probabilities.setflags(write=False)

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #

    @property
    def probabilities(self) -> np.ndarray:
        """Read-only array of item probabilities ``p_i``."""
        return self._probabilities

    @property
    def dimension(self) -> int:
        """The universe size ``d``."""
        return int(self._probabilities.size)

    @property
    def expected_size(self) -> float:
        """Expected Hamming weight ``Σ_i p_i`` of a sampled vector."""
        return float(self._probabilities.sum())

    @property
    def expected_intersection(self) -> float:
        """Expected intersection size ``Σ_i p_i^2`` of two independent vectors."""
        return float(np.square(self._probabilities).sum())

    def expected_similarity(self) -> float:
        """Expected Braun-Blanquet similarity of two *uncorrelated* vectors.

        Uses the concentration heuristic ``Σ p_i^2 / Σ p_i`` (both numerator
        and denominator concentrate when ``Σ p_i`` is large), which is the
        quantity the paper calls ``b2`` in Section 7.2.
        """
        expected_size = self.expected_size
        if expected_size == 0.0:
            return 0.0
        return self.expected_intersection / expected_size

    def expected_correlated_similarity(self, alpha: float) -> float:
        """Expected Braun-Blanquet similarity of an α-correlated pair.

        ``E[|x ∩ q|] = Σ_i (p_i^2 (1 − α) + p_i α)`` divided by the expected
        size; the paper calls this ``b1`` in Section 7.2.
        """
        _validate_alpha(alpha)
        expected_size = self.expected_size
        if expected_size == 0.0:
            return 0.0
        expected_intersection = float(
            np.sum(np.square(self._probabilities) * (1.0 - alpha) + self._probabilities * alpha)
        )
        return expected_intersection / expected_size

    def conditional_probabilities(self, alpha: float) -> np.ndarray:
        """The conditional probabilities ``p̂_i = Pr[x_i = 1 | q_i = 1]``.

        Equals ``p_i (1 − α) + α`` (Section 6), the quantity the
        correlated-query threshold function divides by.
        """
        _validate_alpha(alpha)
        return self._probabilities * (1.0 - alpha) + alpha

    def validate_paper_assumptions(self, maximum: float = 0.5) -> None:
        """Raise :class:`ValueError` unless all ``p_i <= maximum``.

        The paper assumes a constant bound ``M < 1`` (concretely 1/2) on all
        item probabilities; the data structures still *run* without it but
        the analytic guarantees do not apply.
        """
        if float(self._probabilities.max()) > maximum:
            raise ValueError(
                "item probability "
                f"{float(self._probabilities.max()):.4f} exceeds the assumed bound {maximum}"
            )

    # ------------------------------------------------------------------ #
    # Sampling
    # ------------------------------------------------------------------ #

    def sample(self, rng: np.random.Generator) -> frozenset[int]:
        """Draw one vector from the distribution as a frozenset of indices."""
        mask = rng.random(self.dimension) < self._probabilities
        return frozenset(np.flatnonzero(mask).tolist())

    def sample_many(self, count: int, rng: np.random.Generator) -> list[frozenset[int]]:
        """Draw ``count`` independent vectors."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        uniforms = rng.random((count, self.dimension))
        mask = uniforms < self._probabilities[np.newaxis, :]
        return [frozenset(np.flatnonzero(row).tolist()) for row in mask]

    def sample_correlated(
        self, x: Iterable[int], alpha: float, rng: np.random.Generator
    ) -> frozenset[int]:
        """Draw ``q ~ D_α(x)`` (Definition 3).

        For each coordinate independently: with probability ``α`` copy
        ``x_i``; with probability ``1 − α`` resample from ``Bernoulli(p_i)``.
        """
        _validate_alpha(alpha)
        x_set = frozenset(int(item) for item in x)
        if x_set and max(x_set) >= self.dimension:
            raise ValueError("vector x contains an index outside the universe")
        copy_mask = rng.random(self.dimension) < alpha
        noise_mask = rng.random(self.dimension) < self._probabilities
        x_mask = np.zeros(self.dimension, dtype=bool)
        if x_set:
            x_mask[np.fromiter(x_set, dtype=np.int64)] = True
        q_mask = np.where(copy_mask, x_mask, noise_mask)
        return frozenset(np.flatnonzero(q_mask).tolist())

    # ------------------------------------------------------------------ #
    # Convenience constructors and dunder methods
    # ------------------------------------------------------------------ #

    @classmethod
    def from_counts(cls, counts: Sequence[int], total: int) -> "ItemDistribution":
        """Build a distribution from item occurrence counts over ``total`` sets."""
        if total <= 0:
            raise ValueError(f"total must be positive, got {total}")
        array = np.asarray(counts, dtype=np.float64) / float(total)
        return cls(np.clip(array, 0.0, 1.0))

    def restricted_to(self, items: Iterable[int]) -> np.ndarray:
        """Probabilities of a subset of items, in the given iteration order."""
        indices = np.fromiter((int(item) for item in items), dtype=np.int64)
        if indices.size and (indices.min() < 0 or indices.max() >= self.dimension):
            raise ValueError("item index outside the universe")
        return self._probabilities[indices]

    def __len__(self) -> int:
        return self.dimension

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ItemDistribution):
            return NotImplemented
        return np.array_equal(self._probabilities, other._probabilities)  # noqa: SLF001 - same class

    def __repr__(self) -> str:
        return (
            f"ItemDistribution(dimension={self.dimension}, "
            f"expected_size={self.expected_size:.2f})"
        )


def sample_dataset(
    distribution: ItemDistribution,
    count: int,
    seed: int,
    drop_empty: bool = True,
) -> list[frozenset[int]]:
    """Sample ``count`` vectors from ``distribution`` with a fixed seed.

    Parameters
    ----------
    distribution:
        The product distribution to sample from.
    count:
        Number of vectors.
    seed:
        Seed for the numpy generator.
    drop_empty:
        If True (default), empty vectors are resampled once and then dropped
        if still empty — indexes and similarity measures treat empty sets as
        uninteresting, and the paper's model makes them vanishingly unlikely
        (``Σ p_i >= C log n``).
    """
    source = RandomSource(seed)
    vectors = distribution.sample_many(count, source.generator)
    if not drop_empty:
        return vectors
    result: list[frozenset[int]] = []
    for vector in vectors:
        if not vector:
            vector = distribution.sample(source.generator)
        if vector:
            result.append(vector)
    return result


def _validate_alpha(alpha: float) -> None:
    if not 0.0 <= alpha <= 1.0:
        raise ValueError(f"alpha must be in [0, 1], got {alpha}")

"""Data model: item-level probability distributions, datasets and analysis.

The paper's model (Section 2) draws each data vector ``x`` from a product
distribution ``D[p_1, ..., p_d]`` — bit ``i`` is set independently with
probability ``p_i`` — and draws an α-correlated query from ``D_α(x)``
(Definition 3).  This subpackage implements that model, a library of named
probability families (uniform, two-block, harmonic, Zipfian,
piecewise-Zipfian), synthetic stand-ins for the Mann et al. benchmark
datasets, transaction-format I/O and the frequency / independence analyses
of Section 8.
"""

from repro.data.distributions import ItemDistribution, sample_dataset
from repro.data.families import (
    harmonic_probabilities,
    piecewise_zipfian_probabilities,
    two_block_probabilities,
    uniform_probabilities,
    zipfian_probabilities,
)
from repro.data.correlation import correlated_query, plant_correlated_pairs
from repro.data.datasets import SetCollection
from repro.data.generators import (
    BENCHMARK_PROFILES,
    BenchmarkProfile,
    generate_benchmark_like,
    generate_topic_model,
)
from repro.data.io import read_transactions, write_transactions
from repro.data.analysis import (
    empirical_frequencies,
    frequency_profile,
    independence_ratio,
    skew_summary,
)
from repro.data.estimation import (
    ParameterRecommendation,
    estimate_probabilities,
    estimation_error_bound,
    recommend_parameters,
)

__all__ = [
    "ItemDistribution",
    "sample_dataset",
    "harmonic_probabilities",
    "piecewise_zipfian_probabilities",
    "two_block_probabilities",
    "uniform_probabilities",
    "zipfian_probabilities",
    "correlated_query",
    "plant_correlated_pairs",
    "SetCollection",
    "BENCHMARK_PROFILES",
    "BenchmarkProfile",
    "generate_benchmark_like",
    "generate_topic_model",
    "read_transactions",
    "write_transactions",
    "empirical_frequencies",
    "frequency_profile",
    "independence_ratio",
    "skew_summary",
    "ParameterRecommendation",
    "estimate_probabilities",
    "estimation_error_bound",
    "recommend_parameters",
]

"""The :class:`SetCollection` container used by indexes and analyses.

A :class:`SetCollection` is an immutable, ordered collection of sets over an
integer universe, together with cached empirical statistics (item frequencies,
set-size distribution).  It is the common currency between the data
generators, the search indexes, the join algorithms and the analysis code.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.data.distributions import ItemDistribution


class SetCollection:
    """An ordered, immutable collection of sets over the universe ``[0, d)``.

    Parameters
    ----------
    sets:
        Iterable of item-id collections.  Each set is stored as a frozenset.
    dimension:
        Universe size ``d``.  If omitted it is inferred as one plus the
        largest item id present (and 0 for an empty collection).
    """

    def __init__(self, sets: Iterable[Iterable[int]], dimension: int | None = None):
        self._sets: list[frozenset[int]] = [
            frozenset(int(item) for item in members) for members in sets
        ]
        inferred = 0
        for members in self._sets:
            if members:
                largest = max(members)
                if largest + 1 > inferred:
                    inferred = largest + 1
                if min(members) < 0:
                    raise ValueError("item ids must be non-negative")
        if dimension is None:
            dimension = inferred
        elif dimension < inferred:
            raise ValueError(
                f"dimension {dimension} is smaller than required by the data ({inferred})"
            )
        self._dimension = int(dimension)
        self._frequencies: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    # Container protocol
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._sets)

    def __iter__(self) -> Iterator[frozenset[int]]:
        return iter(self._sets)

    def __getitem__(self, index: int) -> frozenset[int]:
        return self._sets[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SetCollection):
            return NotImplemented
        return (  # noqa: SLF001 - same-class comparison
            self._dimension == other._dimension and self._sets == other._sets
        )

    def __repr__(self) -> str:
        return (
            f"SetCollection(num_sets={len(self._sets)}, dimension={self._dimension}, "
            f"average_size={self.average_size():.2f})"
        )

    # ------------------------------------------------------------------ #
    # Basic statistics
    # ------------------------------------------------------------------ #

    @property
    def dimension(self) -> int:
        """Universe size ``d``."""
        return self._dimension

    @property
    def sets(self) -> Sequence[frozenset[int]]:
        """The underlying list of frozensets (do not mutate)."""
        return self._sets

    def sizes(self) -> np.ndarray:
        """Array of set sizes (Hamming weights)."""
        return np.asarray([len(members) for members in self._sets], dtype=np.int64)

    def average_size(self) -> float:
        """Mean set size; 0.0 for an empty collection."""
        if not self._sets:
            return 0.0
        return float(self.sizes().mean())

    def item_counts(self) -> np.ndarray:
        """Occurrence count of every item in the universe."""
        counts = np.zeros(self._dimension, dtype=np.int64)
        for members in self._sets:
            for item in members:
                counts[item] += 1
        return counts

    def item_frequencies(self) -> np.ndarray:
        """Empirical item frequencies ``p_i = count_i / n`` (cached)."""
        if self._frequencies is None:
            if not self._sets:
                self._frequencies = np.zeros(self._dimension, dtype=np.float64)
            else:
                self._frequencies = self.item_counts() / float(len(self._sets))
            self._frequencies.setflags(write=False)
        return self._frequencies

    def empirical_distribution(self) -> ItemDistribution:
        """The :class:`ItemDistribution` with the empirical frequencies.

        This is the standard way to instantiate the paper's data structures
        on real data where the true ``p_i`` are unknown (Section 9 notes the
        estimation approach).
        """
        return ItemDistribution(np.clip(self.item_frequencies(), 0.0, 1.0))

    # ------------------------------------------------------------------ #
    # Transformations
    # ------------------------------------------------------------------ #

    def subset(self, indices: Sequence[int]) -> "SetCollection":
        """New collection containing the sets at the given positions."""
        return SetCollection([self._sets[index] for index in indices], dimension=self._dimension)

    def filter_min_size(self, minimum_size: int) -> "SetCollection":
        """New collection dropping sets smaller than ``minimum_size``."""
        return SetCollection(
            [members for members in self._sets if len(members) >= minimum_size],
            dimension=self._dimension,
        )

    def remap_by_frequency(self, descending: bool = True) -> tuple["SetCollection", np.ndarray]:
        """Relabel items so item 0 is the most (or least) frequent.

        Returns the relabelled collection and the permutation array ``perm``
        mapping old item id to new item id.  Useful for prefix filtering
        (ascending order) and for the Figure 2 frequency plots (descending).
        """
        frequencies = self.item_frequencies()
        order = np.argsort(-frequencies if descending else frequencies, kind="stable")
        permutation = np.empty(self._dimension, dtype=np.int64)
        permutation[order] = np.arange(self._dimension)
        remapped = [
            frozenset(int(permutation[item]) for item in members) for members in self._sets
        ]
        return SetCollection(remapped, dimension=self._dimension), permutation

    def concatenate(self, other: "SetCollection") -> "SetCollection":
        """Concatenate two collections over the union of their universes."""
        dimension = max(self._dimension, other.dimension)
        return SetCollection(list(self._sets) + list(other.sets), dimension=dimension)

    @classmethod
    def from_distribution(
        cls, distribution: ItemDistribution, count: int, seed: int
    ) -> "SetCollection":
        """Sample a collection of ``count`` vectors from a product distribution."""
        from repro.data.distributions import sample_dataset

        vectors = sample_dataset(distribution, count, seed)
        return cls(vectors, dimension=distribution.dimension)

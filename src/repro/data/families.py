"""Named families of item-probability vectors used throughout the paper.

Each function returns a plain :class:`numpy.ndarray` of probabilities that
can be wrapped in :class:`repro.data.distributions.ItemDistribution`.

* ``uniform``            — the light-bulb / no-skew setting (all ``p_i = p``).
* ``two_block``          — the Figure 1 / Section 7 setting: one block of
                            frequent items and one block of rare items.
* ``harmonic``           — the Section 1 motivating example ``p_k = 1/k``.
* ``zipfian``            — ``p_k ∝ k^(−s)`` scaled to a target maximum.
* ``piecewise_zipfian``  — the "piecewise Zipfian" shape observed for the
                            real datasets in Section 8 / Figure 2.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def _validate_dimension(dimension: int) -> None:
    if dimension <= 0:
        raise ValueError(f"dimension must be positive, got {dimension}")


def _validate_probability(value: float, name: str) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")


def uniform_probabilities(dimension: int, probability: float) -> np.ndarray:
    """All items share the same probability (the balanced, no-skew case)."""
    _validate_dimension(dimension)
    _validate_probability(probability, "probability")
    return np.full(dimension, probability, dtype=np.float64)


def two_block_probabilities(
    dimension: int,
    frequent_probability: float,
    rare_probability: float,
    frequent_fraction: float = 0.5,
) -> np.ndarray:
    """Two blocks of items: a frequent block and a rare block.

    This is the workload of Figure 1 (half the bits at ``p``, half at
    ``p/8``) and of the Section 7 worked examples (``p_a = 1/4``,
    ``p_b = n^{-0.9}``).

    Parameters
    ----------
    dimension:
        Total number of items ``d``.
    frequent_probability:
        Probability of the items in the frequent block.
    rare_probability:
        Probability of the items in the rare block.
    frequent_fraction:
        Fraction of the universe belonging to the frequent block (first
        ``round(frequent_fraction * d)`` items).
    """
    _validate_dimension(dimension)
    _validate_probability(frequent_probability, "frequent_probability")
    _validate_probability(rare_probability, "rare_probability")
    if not 0.0 <= frequent_fraction <= 1.0:
        raise ValueError(f"frequent_fraction must be in [0, 1], got {frequent_fraction}")
    frequent_count = int(round(frequent_fraction * dimension))
    probabilities = np.full(dimension, rare_probability, dtype=np.float64)
    probabilities[:frequent_count] = frequent_probability
    return probabilities


def block_probabilities(block_sizes: Sequence[int], block_values: Sequence[float]) -> np.ndarray:
    """General multi-block profile: ``block_sizes[k]`` items at ``block_values[k]``.

    Used by the Section 7.2 example (``4 C log n`` items at ``1/4`` plus
    ``n^{0.9} C log n`` items at ``n^{-0.9}``) and by ablation benches.
    """
    if len(block_sizes) != len(block_values):
        raise ValueError(
            f"block_sizes and block_values must have equal length, got "
            f"{len(block_sizes)} and {len(block_values)}"
        )
    if not block_sizes:
        raise ValueError("at least one block is required")
    pieces = []
    for size, value in zip(block_sizes, block_values):
        if size < 0:
            raise ValueError(f"block size must be non-negative, got {size}")
        _validate_probability(value, "block value")
        pieces.append(np.full(int(size), value, dtype=np.float64))
    probabilities = np.concatenate(pieces) if pieces else np.empty(0)
    if probabilities.size == 0:
        raise ValueError("the blocks must contain at least one item in total")
    return probabilities


def harmonic_probabilities(dimension: int, scale: float = 1.0, maximum: float = 0.5) -> np.ndarray:
    """The motivating example of Section 1: ``p_k = scale / k`` capped at ``maximum``.

    The paper's introduction uses ``p_k = 1/k``; we cap at ``maximum`` (default
    1/2) to respect the model's bound on item probabilities.
    """
    _validate_dimension(dimension)
    if scale <= 0.0:
        raise ValueError(f"scale must be positive, got {scale}")
    _validate_probability(maximum, "maximum")
    ranks = np.arange(1, dimension + 1, dtype=np.float64)
    return np.minimum(scale / ranks, maximum)


def zipfian_probabilities(
    dimension: int,
    exponent: float = 1.0,
    maximum: float = 0.5,
    minimum: float = 0.0,
) -> np.ndarray:
    """Zipfian profile ``p_k = maximum * k^(−exponent)``, floored at ``minimum``.

    A plain Zipf profile appears as a straight line on the right-hand plot of
    Figure 2; the real datasets are "piecewise Zipfian", see
    :func:`piecewise_zipfian_probabilities`.
    """
    _validate_dimension(dimension)
    if exponent < 0.0:
        raise ValueError(f"exponent must be non-negative, got {exponent}")
    _validate_probability(maximum, "maximum")
    _validate_probability(minimum, "minimum")
    ranks = np.arange(1, dimension + 1, dtype=np.float64)
    probabilities = maximum * np.power(ranks, -exponent)
    return np.maximum(probabilities, minimum)


def piecewise_zipfian_probabilities(
    dimension: int,
    breakpoints: Sequence[float],
    exponents: Sequence[float],
    maximum: float = 0.5,
    minimum: float = 1e-7,
) -> np.ndarray:
    """Piecewise Zipfian profile matching the shape observed in Figure 2.

    The universe is split at relative ranks ``breakpoints`` (fractions of
    ``d`` in increasing order); within segment ``k`` the log-frequency decays
    linearly in ``log(rank)`` with slope ``-exponents[k]``, and segments are
    glued continuously.

    Parameters
    ----------
    dimension:
        Universe size ``d``.
    breakpoints:
        Increasing fractions in (0, 1) marking segment boundaries.  With
        ``len(exponents) == len(breakpoints) + 1``.
    exponents:
        Zipf exponent per segment (typically increasing: the tail decays
        faster than the head).
    maximum:
        Probability of the most frequent item.
    minimum:
        Floor applied after construction, so that no probability underflows
        to zero.
    """
    _validate_dimension(dimension)
    if len(exponents) != len(breakpoints) + 1:
        raise ValueError(
            "expected one more exponent than breakpoints, got "
            f"{len(exponents)} exponents and {len(breakpoints)} breakpoints"
        )
    if any(not 0.0 < b < 1.0 for b in breakpoints):
        raise ValueError("breakpoints must lie strictly inside (0, 1)")
    if list(breakpoints) != sorted(breakpoints):
        raise ValueError("breakpoints must be increasing")
    _validate_probability(maximum, "maximum")

    ranks = np.arange(1, dimension + 1, dtype=np.float64)
    log_ranks = np.log(ranks)
    boundaries = [1.0] + [max(1.0, b * dimension) for b in breakpoints] + [float(dimension)]
    log_probabilities = np.empty(dimension, dtype=np.float64)

    level = np.log(maximum)
    for segment_index, exponent in enumerate(exponents):
        low = boundaries[segment_index]
        high = boundaries[segment_index + 1]
        mask = (ranks >= low) & (ranks <= high) if segment_index == 0 else (
            (ranks > low) & (ranks <= high)
        )
        log_low = np.log(low)
        log_probabilities[mask] = level - exponent * (log_ranks[mask] - log_low)
        # Continue the next segment from the level reached at its left end.
        level = level - exponent * (np.log(high) - log_low)

    probabilities = np.exp(log_probabilities)
    probabilities = np.clip(probabilities, minimum, maximum)
    return probabilities

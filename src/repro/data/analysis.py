"""Dataset analyses used in Section 8 of the paper (Figure 2 and Table 1).

Three analyses are provided:

* :func:`empirical_frequencies` / :func:`frequency_profile` — the sorted
  item-frequency curves plotted in Figure 2, in both normalisations used by
  the paper (``x = j/d`` and ``x = log_d j``, ``y = 1 + log_n p_j``).
* :func:`independence_ratio` — the Table 1 statistic: the ratio between the
  observed number of sets containing a random item subset ``I`` and the
  number predicted under independence (``n · ∏_{j∈I} p_j``), averaged over
  random subsets of size 2 and 3.
* :func:`skew_summary` — scalar summaries of skew (Gini coefficient, top-k
  mass, fitted Zipf exponent) used by examples and reporting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.datasets import SetCollection
from repro.hashing.random_source import RandomSource


def empirical_frequencies(collection: SetCollection, descending: bool = True) -> np.ndarray:
    """Item frequencies sorted in decreasing (default) or increasing order.

    Items that never occur (frequency 0) are retained so the curve covers the
    whole universe, matching the paper's plots over ``j ∈ [d]``.
    """
    frequencies = collection.item_frequencies()
    order = np.sort(frequencies)
    return order[::-1] if descending else order


@dataclass(frozen=True)
class FrequencyProfile:
    """The Figure 2 curves for one dataset.

    Attributes
    ----------
    name:
        Dataset label.
    relative_rank:
        Left-plot x-axis, ``j / d`` for ``j = 1..d``.
    log_rank:
        Right-plot x-axis, ``log_d j``.
    normalized_log_frequency:
        The y-axis of both plots, ``1 + log_n p_j`` (so 1 means an item
        present in every set and 0 means an item occurring once in n sets).
    """

    name: str
    relative_rank: np.ndarray
    log_rank: np.ndarray
    normalized_log_frequency: np.ndarray

    def sampled(self, num_points: int = 50) -> "FrequencyProfile":
        """Evenly subsample the curves for compact text reporting."""
        if num_points <= 0:
            raise ValueError(f"num_points must be positive, got {num_points}")
        total = self.relative_rank.size
        if total <= num_points:
            return self
        indices = np.unique(np.linspace(0, total - 1, num_points).astype(np.int64))
        return FrequencyProfile(
            name=self.name,
            relative_rank=self.relative_rank[indices],
            log_rank=self.log_rank[indices],
            normalized_log_frequency=self.normalized_log_frequency[indices],
        )


def frequency_profile(
    collection: SetCollection,
    name: str = "dataset",
    floor_frequency: float | None = None,
) -> FrequencyProfile:
    """Compute the Figure 2 curves for a collection.

    Items with zero frequency are clamped to ``floor_frequency`` (default
    ``1/(2n)``, i.e. "less than one occurrence") so the logarithms are
    defined; the paper's plots only cover observed items, so the clamp only
    affects the extreme tail.
    """
    num_sets = len(collection)
    if num_sets == 0:
        raise ValueError("cannot profile an empty collection")
    dimension = collection.dimension
    if dimension == 0:
        raise ValueError("cannot profile a collection over an empty universe")
    if floor_frequency is None:
        floor_frequency = 1.0 / (2.0 * num_sets)
    frequencies = np.maximum(empirical_frequencies(collection), floor_frequency)
    ranks = np.arange(1, dimension + 1, dtype=np.float64)
    log_n = np.log(max(num_sets, 2))
    log_d = np.log(max(dimension, 2))
    return FrequencyProfile(
        name=name,
        relative_rank=ranks / dimension,
        log_rank=np.log(ranks) / log_d,
        normalized_log_frequency=1.0 + np.log(frequencies) / log_n,
    )


def independence_ratio(
    collection: SetCollection,
    subset_size: int,
    num_samples: int = 2000,
    seed: int = 0,
    restrict_to_observed: bool = True,
    method: str = "importance",
) -> float:
    """The Table 1 statistic for subsets of the given size.

    Estimates the ratio::

        E_I[ observed number of sets containing all of I ]
        ---------------------------------------------------
        E_I[ n * prod_{j in I} p_j ]

    over random item subsets ``I`` of the given size, i.e. the average
    constant factor by which the independence assumption (equation (2) of the
    paper) is violated.  Values close to 1 indicate near-independence; large
    values indicate strong positive dependence between items.

    Parameters
    ----------
    collection:
        The dataset.
    subset_size:
        Size of the random subsets ``|I|`` (the paper uses 2 and 3).
    num_samples:
        Number of random subsets averaged over.
    seed:
        Sampling seed.
    restrict_to_observed:
        Sample ``I`` only among items that occur at least once (default).
        Subsets containing a never-observed item contribute zero to both the
        numerator and the denominator expectation and only add noise.
    method:
        ``"importance"`` (default) samples subsets with probability
        proportional to their independence-predicted mass ``∏ p_j`` and
        reweights, which estimates the same ratio of expectations with far
        lower variance on sparse data; ``"uniform"`` samples subsets
        uniformly, exactly as the quantity is defined.
    """
    if subset_size <= 0:
        raise ValueError(f"subset_size must be positive, got {subset_size}")
    if num_samples <= 0:
        raise ValueError(f"num_samples must be positive, got {num_samples}")
    if method not in ("importance", "uniform"):
        raise ValueError(f"method must be 'importance' or 'uniform', got {method!r}")
    num_sets = len(collection)
    if num_sets == 0:
        raise ValueError("cannot analyse an empty collection")

    frequencies = collection.item_frequencies()
    if restrict_to_observed:
        candidate_items = np.flatnonzero(frequencies > 0.0)
    else:
        candidate_items = np.arange(collection.dimension)
    if candidate_items.size < subset_size:
        raise ValueError(
            f"not enough items ({candidate_items.size}) to draw subsets of size {subset_size}"
        )

    # Build an inverted index once: item -> set of row indices containing it.
    postings: dict[int, set[int]] = {}
    for row_index, members in enumerate(collection):
        for item in members:
            postings.setdefault(item, set()).add(row_index)

    def observed_support(subset: np.ndarray) -> float:
        rows: set[int] | None = None
        for item in subset:
            item_rows = postings.get(int(item), set())
            rows = set(item_rows) if rows is None else rows & item_rows
            if not rows:
                return 0.0
        return float(len(rows) if rows else 0)

    rng = RandomSource(seed).generator
    candidate_frequencies = frequencies[candidate_items]
    observed_total = 0.0
    predicted_total = 0.0

    if method == "uniform":
        for _ in range(num_samples):
            subset = rng.choice(candidate_items, size=subset_size, replace=False)
            observed_total += observed_support(subset)
            predicted_total += float(num_sets * np.prod(frequencies[subset]))
    else:
        # Importance sampling: draw the items of I proportionally to their
        # frequency, so the sampled subsets are the ones that dominate both
        # the numerator and the denominator; reweighting by 1/∏ q_j makes the
        # estimator a consistent self-normalised estimate of the same ratio.
        sampling_weights = candidate_frequencies / candidate_frequencies.sum()
        drawn = 0
        attempts = 0
        max_attempts = 50 * num_samples
        while drawn < num_samples and attempts < max_attempts:
            attempts += 1
            subset = rng.choice(
                candidate_items, size=subset_size, replace=False, p=sampling_weights
            )
            proposal_mass = float(np.prod(frequencies[subset]))
            if proposal_mass <= 0.0:
                continue
            drawn += 1
            inverse_weight = 1.0 / proposal_mass
            observed_total += observed_support(subset) * inverse_weight
            predicted_total += float(num_sets * proposal_mass) * inverse_weight

    if predicted_total == 0.0:
        raise ValueError("independence prediction is zero; the dataset is degenerate")
    return observed_total / predicted_total


@dataclass(frozen=True)
class SkewSummary:
    """Scalar skew statistics of a dataset's item-frequency distribution."""

    gini: float
    top_1_percent_mass: float
    top_10_percent_mass: float
    zipf_exponent: float
    max_frequency: float
    median_frequency: float


def skew_summary(collection: SetCollection) -> SkewSummary:
    """Summarise how skewed the item-frequency distribution of a dataset is."""
    frequencies = empirical_frequencies(collection)
    positive = frequencies[frequencies > 0.0]
    if positive.size == 0:
        return SkewSummary(0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    total_mass = float(positive.sum())

    # Gini coefficient of the frequency distribution.
    sorted_ascending = np.sort(positive)
    cumulative = np.cumsum(sorted_ascending)
    count = sorted_ascending.size
    gini = float(
        (count + 1 - 2.0 * np.sum(cumulative) / cumulative[-1]) / count
    ) if count > 1 else 0.0

    def top_mass(fraction: float) -> float:
        top_count = max(1, int(round(fraction * positive.size)))
        return float(positive[:top_count].sum() / total_mass)

    # Fit a Zipf exponent by least squares on log-log ranks vs frequencies.
    ranks = np.arange(1, positive.size + 1, dtype=np.float64)
    log_ranks = np.log(ranks)
    log_frequencies = np.log(positive)
    if positive.size > 1 and np.ptp(log_ranks) > 0:
        slope = float(np.polyfit(log_ranks, log_frequencies, deg=1)[0])
    else:
        slope = 0.0

    return SkewSummary(
        gini=max(0.0, gini),
        top_1_percent_mass=top_mass(0.01),
        top_10_percent_mass=top_mass(0.10),
        zipf_exponent=-slope,
        max_frequency=float(positive[0]),
        median_frequency=float(np.median(positive)),
    )

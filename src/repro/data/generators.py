"""Synthetic stand-ins for the Mann et al. set-similarity benchmark datasets.

The paper's Section 8 (Figure 2 and Table 1) analyses ten real datasets
(AOL, BMS-POS, DBLP, ENRON, FLICKR, KOSARAK, LIVEJOURNAL, NETFLIX, ORKUT,
SPOTIFY).  Those datasets are not redistributable and are not available in
this offline environment, so we substitute *generators* that reproduce the
two statistics the paper actually uses:

* the marginal item-frequency profile (skew shape) driving Figure 2, modelled
  as a piecewise-Zipfian curve parameterised per dataset, and
* the positive dependence between items driving Table 1, modelled with a
  topic-mixture component whose strength is tuned per dataset (SPOTIFY and
  KOSARAK strongly dependent, DBLP and AOL nearly independent).

Scaled-down sizes are used by default so that the experiment harness runs in
seconds; the generator accepts a ``scale`` argument to grow them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.datasets import SetCollection
from repro.data.families import piecewise_zipfian_probabilities
from repro.hashing.random_source import RandomSource


@dataclass(frozen=True)
class BenchmarkProfile:
    """Shape parameters of one synthetic benchmark-like dataset.

    Attributes
    ----------
    name:
        Dataset name as used in the paper (upper case).
    num_sets:
        Number of sets to generate at ``scale = 1.0``.
    dimension:
        Universe size at ``scale = 1.0``.
    average_size:
        Target average set size.
    head_exponent, tail_exponent:
        Zipf exponents of the head and tail segments of the frequency
        profile (the real profiles are "piecewise Zipfian", Section 8).
    head_fraction:
        Fraction of the universe covered by the head segment.
    dependence:
        Strength of the topic-mixture component in [0, 1); 0 means fully
        independent items, larger values produce larger Table 1 ratios.
    num_topics:
        Number of latent topics in the mixture component.
    topic_activation:
        Probability that any given topic is active in a set.  Smaller values
        concentrate the topic mass into fewer sets, which strengthens the
        pairwise dependence for the same marginal frequencies (roughly, the
        average Table 1 pair ratio is
        ``1 + dependence² (1/activation − 1) / num_topics``).  ``None`` means
        ``1 / num_topics``.
    """

    name: str
    num_sets: int
    dimension: int
    average_size: float
    head_exponent: float
    tail_exponent: float
    head_fraction: float
    dependence: float
    num_topics: int = 50
    topic_activation: float | None = None


#: Profiles loosely matching the published statistics of the Mann et al.
#: datasets (n, d, average size) scaled down by roughly three orders of
#: magnitude, with dependence levels ordered like the paper's Table 1
#: (SPOTIFY and KOSARAK strongly dependent, AOL and DBLP nearly independent).
BENCHMARK_PROFILES: dict[str, BenchmarkProfile] = {
    "AOL": BenchmarkProfile("AOL", 4000, 6000, 3.0, 0.55, 1.3, 0.02, 0.10, 50),
    "BMS-POS": BenchmarkProfile("BMS-POS", 3000, 1700, 6.5, 0.5, 1.2, 0.05, 0.25, 30, 0.05),
    "DBLP": BenchmarkProfile("DBLP", 3500, 3500, 5.6, 0.5, 1.25, 0.03, 0.20, 40, 0.05),
    "ENRON": BenchmarkProfile("ENRON", 2500, 5000, 30.0, 0.6, 1.4, 0.02, 0.50, 20, 0.03),
    "FLICKR": BenchmarkProfile("FLICKR", 3000, 4000, 10.0, 0.55, 1.35, 0.03, 0.35, 30, 0.04),
    "KOSARAK": BenchmarkProfile("KOSARAK", 3000, 4000, 8.0, 0.7, 1.5, 0.01, 0.70, 12, 0.02),
    "LIVEJOURNAL": BenchmarkProfile("LIVEJOURNAL", 3500, 5000, 35.0, 0.6, 1.4, 0.02, 0.40, 30, 0.04),
    "NETFLIX": BenchmarkProfile("NETFLIX", 2500, 1700, 200.0, 0.4, 1.1, 0.10, 0.50, 20, 0.04),
    "ORKUT": BenchmarkProfile("ORKUT", 3000, 6000, 100.0, 0.5, 1.3, 0.03, 0.55, 20, 0.03),
    "SPOTIFY": BenchmarkProfile("SPOTIFY", 2500, 4000, 15.0, 0.65, 1.5, 0.02, 0.85, 8, 0.01),
}


def _frequency_profile(profile: BenchmarkProfile, dimension: int) -> np.ndarray:
    """Piecewise-Zipfian marginal probabilities matching the profile."""
    probabilities = piecewise_zipfian_probabilities(
        dimension,
        breakpoints=[max(1.0 / dimension, min(profile.head_fraction, 0.99))],
        exponents=[profile.head_exponent, profile.tail_exponent],
        maximum=0.5,
    )
    # Rescale so the expected set size matches the target average size, while
    # never exceeding the model's 1/2 bound on item probabilities.
    target = profile.average_size
    current = float(probabilities.sum())
    if current > 0.0:
        probabilities = probabilities * (target / current)
    return np.clip(probabilities, 1e-7, 0.5)


def generate_topic_model(
    probabilities: np.ndarray,
    num_sets: int,
    dependence: float,
    num_topics: int,
    seed: int,
    topic_activation: float | None = None,
) -> SetCollection:
    """Generate sets with item dependence via a latent topic mixture.

    Each set draws its items in two stages: an *independent* component in
    which item ``i`` is included with probability ``(1 − dependence)·p_i``
    (as in the paper's model), and a *topic* component in which every topic
    is activated independently with probability ``topic_activation`` and,
    when active, includes its items with probability
    ``dependence · p_i / topic_activation`` (clamped to 1).  Marginals are
    approximately preserved; items sharing a topic become positively
    correlated while items in different topics stay independent, so the
    average Table 1 ratio exceeds 1, growing with ``dependence`` and with
    ``1 / topic_activation`` — the mechanism behind the >1 ratios observed
    on real data.

    Parameters
    ----------
    probabilities:
        Marginal item probabilities.
    num_sets:
        Number of sets to generate.
    dependence:
        Fraction of each item's inclusion probability routed through the
        topic component; 0 gives exact independence.
    num_topics:
        Number of latent topics.
    seed:
        Seed controlling all sampling.
    topic_activation:
        Per-set activation probability of each topic; ``None`` means
        ``1 / num_topics``.
    """
    if not 0.0 <= dependence < 1.0:
        raise ValueError(f"dependence must be in [0, 1), got {dependence}")
    if num_topics <= 0:
        raise ValueError(f"num_topics must be positive, got {num_topics}")
    if num_sets < 0:
        raise ValueError(f"num_sets must be non-negative, got {num_sets}")
    if topic_activation is None:
        topic_activation = 1.0 / num_topics
    if not 0.0 < topic_activation <= 1.0:
        raise ValueError(f"topic_activation must be in (0, 1], got {topic_activation}")

    probabilities = np.asarray(probabilities, dtype=np.float64)
    dimension = probabilities.size
    source = RandomSource(seed)
    rng = source.generator

    # Assign every item to one topic; within its topic an item's conditional
    # probability is scaled so that the marginal probability is preserved in
    # expectation:
    #   p_i = (1 - dependence) * p_i
    #         + topic_activation * min(1, dependence * p_i / topic_activation)
    # (the min() introduces a slight marginal deflation for very frequent
    #  items, which is irrelevant for the dependence analysis).
    topic_of_item = rng.integers(0, num_topics, size=dimension)
    independent_probabilities = (1.0 - dependence) * probabilities
    boosted_probabilities = np.minimum(1.0, dependence * probabilities / topic_activation)
    activation_probability = float(topic_activation)

    sets: list[frozenset[int]] = []
    for set_index in range(num_sets):
        set_rng = source.fresh_generator("set", set_index)
        independent_mask = set_rng.random(dimension) < independent_probabilities
        members = set(np.flatnonzero(independent_mask).tolist())
        if dependence > 0.0:
            active_topics = np.flatnonzero(set_rng.random(num_topics) < activation_probability)
            for topic in active_topics:
                in_topic = np.flatnonzero(topic_of_item == topic)
                if in_topic.size:
                    topic_mask = set_rng.random(in_topic.size) < boosted_probabilities[in_topic]
                    members.update(int(item) for item in in_topic[topic_mask])
        sets.append(frozenset(members))
    return SetCollection(sets, dimension=dimension)


def generate_benchmark_like(
    name: str,
    scale: float = 1.0,
    seed: int = 0,
    profile: BenchmarkProfile | None = None,
) -> SetCollection:
    """Generate a synthetic dataset shaped like one of the Mann et al. datasets.

    Parameters
    ----------
    name:
        One of the keys of :data:`BENCHMARK_PROFILES` (case-insensitive).
        Ignored if ``profile`` is given explicitly.
    scale:
        Multiplier applied to the number of sets and the universe size.
    seed:
        Seed controlling all sampling.
    profile:
        Explicit profile overriding the named one.
    """
    if profile is None:
        key = name.upper()
        if key not in BENCHMARK_PROFILES:
            raise KeyError(
                f"unknown benchmark profile {name!r}; expected one of "
                f"{sorted(BENCHMARK_PROFILES)}"
            )
        profile = BENCHMARK_PROFILES[key]
    if scale <= 0.0:
        raise ValueError(f"scale must be positive, got {scale}")
    num_sets = max(1, int(round(profile.num_sets * scale)))
    dimension = max(2, int(round(profile.dimension * scale)))
    # Scale the target average set size together with the universe so that
    # the density (and therefore the shape of the Figure 2 frequency curve)
    # is preserved at reduced scale.
    scaled_profile = BenchmarkProfile(
        name=profile.name,
        num_sets=profile.num_sets,
        dimension=profile.dimension,
        average_size=max(2.0, profile.average_size * min(scale, 1.0)),
        head_exponent=profile.head_exponent,
        tail_exponent=profile.tail_exponent,
        head_fraction=profile.head_fraction,
        dependence=profile.dependence,
        num_topics=profile.num_topics,
        topic_activation=profile.topic_activation,
    )
    probabilities = _frequency_profile(scaled_profile, dimension)
    return generate_topic_model(
        probabilities,
        num_sets=num_sets,
        dependence=profile.dependence,
        num_topics=profile.num_topics,
        seed=seed,
        topic_activation=profile.topic_activation,
    )


def all_benchmark_names() -> list[str]:
    """Names of all built-in benchmark profiles, in the paper's Table 1 order."""
    return list(BENCHMARK_PROFILES)

"""Estimating the item-level probabilities from data (Section 9).

The data structures assume the item probabilities ``p_i`` are known.  The
paper's conclusion notes that in practice one would estimate them from the
dataset itself ("it seems likely that one can estimate each p_i to very high
precision by counting the occurrences in the dataset itself, leading to the
same asymptotic bounds").  This module provides that estimation step with the
statistical care a production system needs:

* :func:`estimate_probabilities` — smoothed frequency estimates (additive /
  Laplace smoothing) clipped to the model's ``p_i ≤ 1/2`` assumption;
* :func:`estimation_error_bound` — a per-item high-probability error bound,
  so callers can check whether ``n`` is large enough for the estimates to be
  trustworthy;
* :func:`recommend_parameters` — turns a dataset and a target correlation /
  similarity level into concrete index parameters (repetitions for a target
  success probability, a check of the ``Σ p_i ≥ C log n`` requirement).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.data.datasets import SetCollection
from repro.data.distributions import ItemDistribution
from repro.theory.bounds import required_expected_size, success_probability_lower_bound
from repro.theory.rho import solve_correlated_rho


def estimate_probabilities(
    collection: SetCollection | Iterable[Iterable[int]],
    smoothing: float = 0.5,
    maximum: float = 0.5,
    dimension: int | None = None,
) -> ItemDistribution:
    """Estimate item probabilities from a dataset with additive smoothing.

    Parameters
    ----------
    collection:
        The dataset (a :class:`SetCollection` or any iterable of item sets).
    smoothing:
        Additive (Laplace) smoothing constant ``s``: the estimate is
        ``(count_i + s) / (n + 2s)``.  Smoothing keeps never-observed items at
        a small positive probability, which the stopping rule and the
        correlated thresholds handle gracefully, and avoids over-confident
        zero estimates on small samples.
    maximum:
        Upper clip enforcing the model assumption ``p_i ≤ 1/2``.
    dimension:
        Universe size override when the collection is a plain iterable.
    """
    if smoothing < 0.0:
        raise ValueError(f"smoothing must be non-negative, got {smoothing}")
    if not 0.0 < maximum <= 1.0:
        raise ValueError(f"maximum must be in (0, 1], got {maximum}")
    if not isinstance(collection, SetCollection):
        collection = SetCollection(collection, dimension=dimension)
    num_sets = len(collection)
    if num_sets == 0:
        raise ValueError("cannot estimate probabilities from an empty collection")
    counts = collection.item_counts().astype(np.float64)
    estimates = (counts + smoothing) / (num_sets + 2.0 * smoothing)
    return ItemDistribution(np.clip(estimates, 0.0, maximum))


def estimation_error_bound(num_sets: int, confidence: float = 0.99) -> float:
    """Additive error ``ε`` such that ``|p̂_i − p_i| ≤ ε`` with the given confidence.

    By Hoeffding's inequality a single item's frequency estimate over ``n``
    independent sets deviates by more than ``ε`` with probability at most
    ``2 exp(−2 n ε²)``; solving for ``ε`` at the requested confidence gives
    the returned bound (per item, not simultaneously over all items).
    """
    if num_sets <= 0:
        raise ValueError(f"num_sets must be positive, got {num_sets}")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    failure = 1.0 - confidence
    return math.sqrt(math.log(2.0 / failure) / (2.0 * num_sets))


@dataclass(frozen=True)
class ParameterRecommendation:
    """Concrete index parameters derived from a dataset and a target workload.

    Attributes
    ----------
    distribution:
        The estimated item distribution to build the index with.
    repetitions:
        Number of repetitions needed for the requested success probability.
    expected_rho:
        The Theorem 1 exponent predicted for the estimated distribution.
    expected_size:
        ``Σ_i p̂_i`` of the estimated distribution.
    required_size:
        The ``C log n`` level the paper's analysis asks for (with the given
        ``capital_c``); if ``expected_size`` is far below this, the formal
        guarantees are not in force even though the index still works as a
        heuristic.
    meets_size_requirement:
        Whether ``expected_size >= required_size``.
    estimation_error:
        Per-item estimation error bound at 99% confidence.
    """

    distribution: ItemDistribution
    repetitions: int
    expected_rho: float
    expected_size: float
    required_size: float
    meets_size_requirement: bool
    estimation_error: float


def recommend_parameters(
    collection: SetCollection | Iterable[Iterable[int]],
    alpha: float,
    target_success: float = 0.9,
    capital_c: float = 5.0,
    dimension: int | None = None,
) -> ParameterRecommendation:
    """Derive index parameters for a correlated-query workload on real data.

    Parameters
    ----------
    collection:
        The dataset to be indexed.
    alpha:
        The correlation level of the queries the index should serve.
    target_success:
        Desired probability that at least one repetition succeeds (the
        per-repetition bound of Lemma 5 is ``1/log n``).
    capital_c:
        The constant in the ``Σ p_i ≥ C log n`` requirement used for the
        size check.
    dimension:
        Universe size override when the collection is a plain iterable.
    """
    if not 0.0 < alpha <= 1.0:
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    if not 0.0 < target_success < 1.0:
        raise ValueError(f"target_success must be in (0, 1), got {target_success}")
    if not isinstance(collection, SetCollection):
        collection = SetCollection(collection, dimension=dimension)
    num_sets = max(len(collection), 2)

    distribution = estimate_probabilities(collection)
    expected_size = distribution.expected_size
    required = required_expected_size(num_sets, capital_c)

    # Smallest repetition count whose success lower bound reaches the target.
    repetitions = 1
    while (
        success_probability_lower_bound(num_sets, repetitions) < target_success
        and repetitions < 10_000
    ):
        repetitions += 1

    return ParameterRecommendation(
        distribution=distribution,
        repetitions=repetitions,
        expected_rho=solve_correlated_rho(distribution.probabilities, alpha),
        expected_size=expected_size,
        required_size=required,
        meets_size_requirement=expected_size >= required,
        estimation_error=estimation_error_bound(len(collection)),
    )

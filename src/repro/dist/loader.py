"""Open a saved v3 index in router-backed (multi-process) execution mode.

:func:`load_routed_index` is the distributed sibling of
``load_index(path, mode="mmap")``: the router process mmaps only the
*store* container (vectors, tombstones, probabilities — verification and
the engine run here), while the postings shards are served by shard
workers behind a pluggable transport.  Everything above the probe layer
is the standard engine, so results are bit-identical to single-process
modes on every query surface.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Any, Sequence

import numpy as np

from repro.core.mmap_store import LazyVectorStore
from repro.core.serialization import (
    _construct_index,
    _read_manifest,
    _read_raw_container,
    _restore_engine,
)
from repro.core.stats import BuildStats
from repro.dist.faults import FaultSpec, FaultyTransport, fault_spec_from_env
from repro.dist.router import RouterBackedFilterIndex, ShardRouter
from repro.dist.transport import (
    DEFAULT_TIMEOUT_SECONDS,
    build_transport,
    shard_to_worker_map,
)


def default_shard_procs(num_shards: int) -> int:
    """Default fan-out width: one worker per core, capped at the shard count."""
    cores = os.cpu_count() or 1
    return max(1, min(num_shards, cores))


def load_routed_index(
    path: str | Path,
    transport: str = "spawn",
    shard_procs: int | None = None,
    shard_addrs: Sequence[str] | None = None,
    timeout: float = DEFAULT_TIMEOUT_SECONDS,
    fault_spec: str | FaultSpec | None = None,
) -> Any:
    """Load a v3 index with probes fanned out to shard workers.

    Parameters
    ----------
    path:
        A format v3 index directory (v1/v2 files have no shard layout to
        distribute; convert them first).
    transport:
        ``"spawn"`` (default) starts ``shard_procs`` worker processes,
        ``"inproc"`` keeps the workers in-process (useful for equivalence
        testing — same code path, no IPC), ``"socket"`` connects to
        pre-started ``repro shard-worker`` servers at ``shard_addrs``.
    shard_procs:
        Worker count for ``spawn``/``inproc``; defaults to
        ``min(num_shards, cpu_count)``.  Ignored for ``socket``, where the
        worker set is the address list.
    shard_addrs:
        Worker addresses for ``socket`` (``host:port``, a unix socket
        path, or ``unix:PATH``).  Shard ownership is discovered from each
        worker's ``describe`` response and validated to cover every shard
        exactly once.
    timeout:
        Bound on one worker round-trip; a worker that exceeds it is
        treated as dead (killed + respawned once for ``spawn``,
        reconnected once for ``socket``) before
        :class:`~repro.dist.transport.ShardUnavailableError` escapes.
    fault_spec:
        Optional chaos schedule (a :class:`~repro.dist.faults.FaultSpec`,
        a spec string, or a preset name like ``"crash-one-worker"``) that
        wraps the transport in a
        :class:`~repro.dist.faults.FaultyTransport`.  When unset, the
        ``REPRO_FAULTS`` environment variable is consulted, so chaos
        smoke runs can break an unmodified serving process from outside.

    Returns the same index type ``load_index`` would, with its engine's
    ``shard_router`` set; close the router (``shard_router_of(index).close()``)
    to stop the workers.
    """
    path = Path(path)
    if not path.is_dir():
        raise ValueError(
            f"{path} is not a v3 index directory; router-backed loading needs "
            "the sharded v3 layout (use `repro convert` to upgrade v1/v2 files)"
        )
    if shard_addrs is not None and transport != "socket":
        if transport == "spawn":  # the implied default; addresses win
            transport = "socket"
        else:
            raise ValueError(
                f"shard_addrs were given but transport is {transport!r}; "
                "addresses are only meaningful for the 'socket' transport"
            )
    manifest = _read_manifest(path)
    num_shards = int(manifest["num_shards"])
    repetitions = int(manifest["repetitions"])
    num_vectors = int(manifest["num_vectors"])
    fences = np.asarray([int(fence) for fence in manifest["fences"]], dtype=np.uint64)
    if shard_procs is None:
        shard_procs = default_shard_procs(num_shards)

    transport_obj = build_transport(
        path,
        transport,
        num_shards=num_shards,
        shard_procs=shard_procs,
        shard_addrs=shard_addrs,
        timeout=timeout,
    )
    spec = FaultSpec.from_spec(fault_spec)
    if spec is None:
        spec = fault_spec_from_env()
    if spec is not None:
        transport_obj = FaultyTransport(transport_obj, spec)
    try:
        if transport == "socket":
            # Remote workers must be serving a compatible index.
            for worker in range(transport_obj.num_workers):
                info = transport_obj.describe(worker)
                if int(info["num_shards"]) != num_shards or int(
                    info["repetitions"]
                ) != repetitions:
                    raise ValueError(
                        f"shard worker {worker} serves an index with "
                        f"{info['num_shards']} shards / {info['repetitions']} "
                        f"repetitions but {path} has {num_shards} / {repetitions}; "
                        "the worker was started on a different index"
                    )
        owner = shard_to_worker_map(transport_obj.assignments, num_shards)
        router = ShardRouter(transport_obj, fences, owner)
    except BaseException:
        transport_obj.close()
        raise

    try:
        store = _read_raw_container(path / str(manifest["store_file"]), "mmap")
        missing_store = [
            name
            for name in ("vector_items", "vector_offsets", "removed")
            if name not in store
        ]
        if missing_store:
            raise ValueError(f"{path} store file is missing arrays {missing_store}")
        probabilities = (
            np.asarray(store["probabilities"], dtype=np.float64)
            if "probabilities" in store
            else None
        )
        index = _construct_index(manifest["config"], probabilities)
        build_stats = BuildStats.from_dict(manifest["build_stats"], strict=True)
        vector_items = store["vector_items"]
        vector_offsets = np.asarray(store["vector_offsets"], dtype=np.int64)
        if (
            vector_offsets.size != num_vectors + 1
            or (vector_offsets.size and int(vector_offsets[0]) != 0)
            or np.any(np.diff(vector_offsets) < 0)
            or int(vector_offsets[-1]) != vector_items.size
        ):
            raise ValueError(f"{path} has a malformed stored-vector layout")
        removed = np.asarray(store["removed"]).tolist()
        vectors = LazyVectorStore(vector_items, store["vector_offsets"])

        counts_by_rep = [
            [
                manifest["shards"][shard]["repetitions"][repetition]
                for shard in range(num_shards)
            ]
            for repetition in range(repetitions)
        ]
        filter_indexes = [
            RouterBackedFilterIndex(
                router,
                repetition,
                slot_counts=[
                    int(counts["num_slots"]) for counts in counts_by_rep[repetition]
                ],
                posting_counts=[
                    int(counts["num_postings"]) for counts in counts_by_rep[repetition]
                ],
                has_duplicate_keys=any(
                    bool(counts["has_duplicate_keys"])
                    for counts in counts_by_rep[repetition]
                ),
            )
            for repetition in range(repetitions)
        ]

        restored = _restore_engine(
            index,
            int(manifest["num_vectors_hint"]),
            vectors,
            removed,
            build_stats,
            filter_indexes,
        )
        engine = restored._engine  # noqa: SLF001 - loader is a friend of the engine
        assert engine is not None
        engine.shard_router = router
        return restored
    except BaseException:
        router.close()
        raise


def shard_router_of(index: Any) -> ShardRouter | None:
    """The :class:`ShardRouter` behind a routed index (None otherwise)."""
    engine = getattr(index, "_engine", None)
    if engine is None:
        return None
    router = getattr(engine, "shard_router", None)
    return router if isinstance(router, ShardRouter) else None

"""Pluggable transports between the shard router and its workers.

One small interface, three implementations:

* :class:`InprocTransport` — workers are plain objects in the router's
  process.  Zero copies, zero frames; the degenerate case that makes the
  cross-transport equivalence suite cheap and exact.
* :class:`SpawnTransport` — ``multiprocessing`` *spawn* children, one per
  worker, each mmap-loading only its own shard files.  Frames travel as
  raw buffers over pipes (``send_bytes``/``recv_bytes`` — pickle-free),
  requests are bounded by a timeout, and a worker that dies or hangs is
  killed and respawned once before :class:`ShardUnavailableError` escapes.
* :class:`SocketTransport` — pre-started ``repro shard-worker`` servers
  reached over TCP or unix-domain sockets with length-prefixed frames.
  Same bounded timeout; recovery is one reconnect instead of a respawn.

The router never knows which one it holds: every transport exposes
``probe``/``contains``/``describe``/``close``, per-worker shard
assignments, and cumulative failure/recovery counters.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import socket
import threading
import time
from pathlib import Path as FilePath
from typing import Any, Sequence

import numpy as np

from repro.core.engine import DeadlineExceededError
from repro.dist import protocol
from repro.dist.worker import ShardWorkerState, pipe_worker_main

#: Default bound on one worker round-trip; generous because a cold worker
#: may be faulting in its first shard pages, but finite so a dead worker
#: surfaces as an error instead of a hang.
DEFAULT_TIMEOUT_SECONDS = 30.0


class ShardWorkerError(RuntimeError):
    """The worker answered, but with an application error (a bug, not an outage)."""


class ShardUnavailableError(RuntimeError):
    """A shard worker is gone (died, hung past the timeout, or unreachable).

    The serving layer maps this to ``503`` + ``Retry-After``: the request
    may succeed on retry once the worker is respawned or reconnected.
    ``retry_after`` carries the worker's actual backoff state in seconds
    when the router's circuit breaker produced (or annotated) the error;
    ``None`` means "no schedule known — retry whenever".
    """

    def __init__(self, message: str, retry_after: float | None = None) -> None:
        super().__init__(message)
        self.retry_after = retry_after


def worker_shard_ranges(num_shards: int, num_workers: int) -> list[tuple[int, ...]]:
    """Contiguous shard assignment: worker ``w`` owns ``[wS/N, (w+1)S/N)``.

    Contiguous ranges keep each worker's key space an interval, so its mmap
    page locality matches the single-process layout.  ``num_workers`` above
    ``num_shards`` is clamped (a worker with zero shards would be dead
    weight).
    """
    if num_shards <= 0:
        raise ValueError(f"num_shards must be positive, got {num_shards}")
    if num_workers <= 0:
        raise ValueError(f"num_workers must be positive, got {num_workers}")
    num_workers = min(num_workers, num_shards)
    return [
        tuple(range((worker * num_shards) // num_workers, ((worker + 1) * num_shards) // num_workers))
        for worker in range(num_workers)
    ]


def shard_to_worker_map(
    assignments: Sequence[Sequence[int]], num_shards: int
) -> np.ndarray:
    """Invert per-worker shard lists into a dense shard→worker array.

    Validates the assignment is a disjoint cover of ``range(num_shards)``:
    a missing shard would silently drop its postings, an overlap would
    double-count them.
    """
    owner = np.full(num_shards, -1, dtype=np.int64)
    for worker, shards in enumerate(assignments):
        for shard in shards:
            if not 0 <= shard < num_shards:
                raise ValueError(f"shard {shard} out of range (num_shards={num_shards})")
            if owner[shard] != -1:
                raise ValueError(
                    f"shard {shard} assigned to both worker {owner[shard]} and "
                    f"worker {worker}"
                )
            owner[shard] = worker
    missing = np.flatnonzero(owner == -1)
    if missing.size:
        raise ValueError(
            f"shards {missing.tolist()} are assigned to no worker; the "
            "assignment must cover every shard"
        )
    return owner


class ShardTransport:
    """Shared request/response plumbing; subclasses provide `_request`."""

    kind = "abstract"

    def __init__(self, assignments: Sequence[Sequence[int]]) -> None:
        self._assignments = tuple(tuple(int(s) for s in shards) for shards in assignments)
        self._counter_lock = threading.Lock()
        self._failures = [0] * len(self._assignments)
        self._recoveries = [0] * len(self._assignments)

    @property
    def num_workers(self) -> int:
        return len(self._assignments)

    @property
    def assignments(self) -> tuple[tuple[int, ...], ...]:
        return self._assignments

    # -- counters ------------------------------------------------------- #

    def _record_failure(self, worker: int, recovered: bool) -> None:
        with self._counter_lock:
            self._failures[worker] += 1
            if recovered:
                self._recoveries[worker] += 1

    def counters(self) -> tuple[list[int], list[int]]:
        """Cumulative per-worker ``(failures, recoveries)`` snapshots."""
        with self._counter_lock:
            return list(self._failures), list(self._recoveries)

    # -- request plumbing ----------------------------------------------- #

    def _request(self, worker: int, payload: bytes) -> bytes:
        raise NotImplementedError

    @staticmethod
    def _decode_response(payload: bytes) -> tuple[dict[str, Any], dict[str, np.ndarray]]:
        meta, arrays = protocol.decode_message(payload)
        if meta.get("status") != protocol.STATUS_OK:
            message = str(meta.get("error", "worker reported an error"))
            if meta.get("code") == protocol.ERROR_CODE_DEADLINE:
                # The worker aborted because the request's own budget ran
                # out — not a worker fault, so it must not look like one.
                raise DeadlineExceededError(message)
            raise ShardWorkerError(message)
        return meta, arrays

    def probe(
        self,
        worker: int,
        repetition: int,
        keys: np.ndarray,
        probe_items: np.ndarray,
        probe_offsets: np.ndarray,
        deadline: float | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        if deadline is not None and time.time() >= deadline:
            raise DeadlineExceededError(
                f"deadline expired before the probe request to worker {worker} "
                "was sent"
            )
        payload = protocol.encode_probe_request(
            repetition, keys, probe_items, probe_offsets, deadline=deadline
        )
        _meta, arrays = self._decode_response(self._request(worker, payload))
        return arrays["lengths"], arrays["ids"]

    def contains(self, worker: int, repetition: int, key: int, items: np.ndarray) -> bool:
        payload = protocol.encode_message(
            {
                "kind": protocol.MESSAGE_CONTAINS,
                "repetition": int(repetition),
                "key": int(key),
            },
            {"items": np.ascontiguousarray(items, dtype=np.int64)},
        )
        meta, _arrays = self._decode_response(self._request(worker, payload))
        return bool(meta["stored"])

    def describe(self, worker: int) -> dict[str, Any]:
        payload = protocol.encode_message({"kind": protocol.MESSAGE_DESCRIBE})
        meta, _arrays = self._decode_response(self._request(worker, payload))
        return meta

    def health(self) -> list[dict[str, Any]]:
        """Per-worker liveness + counters (shape shared by every transport)."""
        failures, recoveries = self.counters()
        return [
            {
                "worker": worker,
                "shards": list(self._assignments[worker]),
                "alive": self._alive(worker),
                "failures": failures[worker],
                "recoveries": recoveries[worker],
            }
            for worker in range(self.num_workers)
        ]

    def _alive(self, worker: int) -> bool:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError


class InprocTransport(ShardTransport):
    """Workers as in-process objects: the zero-copy degenerate case."""

    kind = "inproc"

    def __init__(self, path: str | FilePath, assignments: Sequence[Sequence[int]]) -> None:
        super().__init__(assignments)
        self._states = [ShardWorkerState(path, shards) for shards in self.assignments]

    def probe(
        self,
        worker: int,
        repetition: int,
        keys: np.ndarray,
        probe_items: np.ndarray,
        probe_offsets: np.ndarray,
        deadline: float | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        return self._states[worker].probe(
            repetition, keys, probe_items, probe_offsets, deadline=deadline
        )

    def contains(self, worker: int, repetition: int, key: int, items: np.ndarray) -> bool:
        return self._states[worker].contains(repetition, key, np.asarray(items, dtype=np.int64))

    def describe(self, worker: int) -> dict[str, Any]:
        return self._states[worker].describe()

    def _alive(self, worker: int) -> bool:
        return True

    def close(self) -> None:
        self._states = []


class SpawnTransport(ShardTransport):
    """One spawned child process per worker, frames over pipes.

    Each request holds the worker's lock (workers answer sequentially; the
    router's fan-out parallelism is *across* workers), sends one frame, and
    waits at most ``timeout`` seconds.  A broken pipe, EOF, or timeout
    marks the worker dead: it is killed, respawned up to ``max_respawns``
    times per request, and the request retried; past that the caller gets
    :class:`ShardUnavailableError`.
    """

    kind = "spawn"

    def __init__(
        self,
        path: str | FilePath,
        assignments: Sequence[Sequence[int]],
        timeout: float = DEFAULT_TIMEOUT_SECONDS,
        max_respawns: int = 1,
    ) -> None:
        super().__init__(assignments)
        if timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        self._path = str(path)
        self._timeout = float(timeout)
        self._max_respawns = int(max_respawns)
        self._ctx = multiprocessing.get_context("spawn")
        count = self.num_workers
        self._locks = [threading.Lock() for _ in range(count)]
        self._procs: list[Any] = [None] * count
        self._conns: list[Any] = [None] * count
        self._closed = False
        try:
            for worker in range(count):
                self._start_worker(worker)
        except BaseException:
            self.close()
            raise

    def _start_worker(self, worker: int) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=pipe_worker_main,
            args=(child_conn, self._path, self.assignments[worker]),
            daemon=True,
            name=f"repro-shard-worker-{worker}",
        )
        process.start()
        child_conn.close()
        self._procs[worker] = process
        self._conns[worker] = parent_conn

    def _kill_worker(self, worker: int) -> None:
        connection = self._conns[worker]
        if connection is not None:
            try:
                connection.close()
            except OSError:
                pass
        process = self._procs[worker]
        if process is not None:
            process.kill()
            process.join(timeout=5.0)
        self._conns[worker] = None
        self._procs[worker] = None

    def _request(self, worker: int, payload: bytes) -> bytes:
        with self._locks[worker]:
            respawns_left = self._max_respawns
            while True:
                connection = self._conns[worker]
                try:
                    if connection is None:
                        raise OSError("worker connection is down")
                    connection.send_bytes(payload)
                    if not connection.poll(self._timeout):
                        raise OSError(
                            f"no response within {self._timeout:g}s "
                            "(worker hung or died mid-request)"
                        )
                    return bytes(connection.recv_bytes())
                except (BrokenPipeError, EOFError, OSError) as error:
                    recovered = respawns_left > 0 and not self._closed
                    self._record_failure(worker, recovered)
                    self._kill_worker(worker)
                    if not recovered:
                        raise ShardUnavailableError(
                            f"shard worker {worker} (shards "
                            f"{list(self.assignments[worker])}) is unavailable: {error}"
                        ) from error
                    respawns_left -= 1
                    self._start_worker(worker)

    def _alive(self, worker: int) -> bool:
        process = self._procs[worker]
        return process is not None and bool(process.is_alive())

    def pid_of(self, worker: int) -> int | None:
        """The worker's current OS pid (None while down); for fault tests."""
        process = self._procs[worker]
        return None if process is None else process.pid

    def close(self) -> None:
        self._closed = True
        for worker in range(self.num_workers):
            with self._locks[worker]:
                connection = self._conns[worker]
                if connection is not None:
                    try:
                        connection.send_bytes(
                            protocol.encode_message({"kind": protocol.MESSAGE_SHUTDOWN})
                        )
                    except (BrokenPipeError, OSError):
                        pass
                self._kill_worker(worker)


class SocketTransport(ShardTransport):
    """Pre-started shard servers reached over TCP or unix-domain sockets.

    ``addresses`` entries are ``host:port``, a filesystem path, or
    ``unix:PATH`` (anything containing ``/`` is treated as a unix socket).
    Shard assignments are discovered from each server's ``describe``
    response, so the router needs no out-of-band topology file.  Failure
    recovery is one reconnect per request; the remote process's lifecycle
    is not ours to manage.
    """

    kind = "socket"

    def __init__(
        self,
        addresses: Sequence[str],
        timeout: float = DEFAULT_TIMEOUT_SECONDS,
        max_reconnects: int = 1,
    ) -> None:
        if not addresses:
            raise ValueError("at least one shard worker address is required")
        if timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        self._addresses = [str(address) for address in addresses]
        self._timeout = float(timeout)
        self._max_reconnects = int(max_reconnects)
        count = len(self._addresses)
        self._locks = [threading.Lock() for _ in range(count)]
        self._socks: list[socket.socket | None] = [None] * count
        # Assignments come from the live workers; ask before wiring counters.
        super().__init__([[] for _ in range(count)])
        try:
            described = [self.describe(worker) for worker in range(count)]
        except BaseException:
            self.close()
            raise
        self._assignments = tuple(
            tuple(int(shard) for shard in info["shards"]) for info in described
        )
        self._described = described

    @property
    def addresses(self) -> list[str]:
        return list(self._addresses)

    def _connect(self, worker: int) -> socket.socket:
        address = self._addresses[worker]
        target: Any
        if address.startswith("unix:"):
            family, target = socket.AF_UNIX, address[len("unix:") :]
        elif "/" in address:
            family, target = socket.AF_UNIX, address
        else:
            host, _sep, port = address.rpartition(":")
            if not _sep:
                raise ValueError(
                    f"address {address!r} is neither host:port nor a unix socket path"
                )
            family, target = socket.AF_INET, (host or "127.0.0.1", int(port))
        sock = socket.socket(family, socket.SOCK_STREAM)
        sock.settimeout(self._timeout)
        sock.connect(target)
        return sock

    def _request(self, worker: int, payload: bytes) -> bytes:
        with self._locks[worker]:
            reconnects_left = self._max_reconnects
            while True:
                try:
                    sock = self._socks[worker]
                    if sock is None:
                        sock = self._connect(worker)
                        self._socks[worker] = sock
                    protocol.send_frame(sock, payload)
                    return protocol.recv_frame(sock)
                except (protocol.ConnectionClosed, ConnectionError, OSError) as error:
                    self._drop_connection(worker)
                    recovered = reconnects_left > 0
                    self._record_failure(worker, recovered)
                    if not recovered:
                        raise ShardUnavailableError(
                            f"shard worker {worker} at {self._addresses[worker]} "
                            f"is unavailable: {error}"
                        ) from error
                    reconnects_left -= 1

    def _drop_connection(self, worker: int) -> None:
        sock = self._socks[worker]
        self._socks[worker] = None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def _alive(self, worker: int) -> bool:
        # A live cached connection is the best cheap signal we have; a
        # worker with no cached connection is probed on next use.
        return self._socks[worker] is not None

    def close(self) -> None:
        for worker in range(len(self._addresses)):
            with self._locks[worker]:
                self._drop_connection(worker)


def build_transport(
    path: str | FilePath,
    name: str,
    num_shards: int,
    shard_procs: int,
    shard_addrs: Sequence[str] | None = None,
    timeout: float = DEFAULT_TIMEOUT_SECONDS,
) -> ShardTransport:
    """Construct a transport by name (the loader/CLI entry point)."""
    if name == "socket":
        if not shard_addrs:
            raise ValueError("transport 'socket' requires shard worker addresses")
        return SocketTransport(shard_addrs, timeout=timeout)
    assignments = worker_shard_ranges(num_shards, shard_procs)
    if name == "inproc":
        return InprocTransport(path, assignments)
    if name == "spawn":
        return SpawnTransport(path, assignments, timeout=timeout)
    raise ValueError(
        f"unknown shard transport {name!r}; expected 'inproc', 'spawn', or 'socket'"
    )

"""Per-worker circuit breakers for the shard router.

The transports recover from a single failure transparently (one respawn
for spawned workers, one reconnect for sockets), but a worker that keeps
failing must not keep eating a full timeout per request: the breaker
turns repeated failures into fast failures with an honest retry hint.

State machine (the classic three states)::

    closed ──failure──▶ open ──backoff elapsed──▶ half-open
      ▲                   ▲                            │
      │                   └───────probe fails──────────┤
      └───────────────────probe succeeds───────────────┘

* **closed** — requests flow; a failure opens the breaker.
* **open** — requests fast-fail without touching the transport until the
  backoff expires.  The backoff doubles with each consecutive incident
  (``base * 2^(n-1)``, capped at ``max``) plus deterministic seeded
  jitter so a fleet of routers does not thunder-herd a recovering worker.
* **half-open** — exactly one in-flight probe request is let through; its
  success closes the breaker and resets the backoff, its failure re-opens
  with a doubled backoff.

The clock and jitter source are injectable so tests (and the fault
harness) can drive the state machine deterministically.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Any, Callable

#: Breaker states, with the numeric encoding ``/metrics`` exposes as
#: ``repro_shard_breaker_state`` (0 is healthy so dashboards can alert on
#: ``> 0``).
STATE_CLOSED = "closed"
STATE_HALF_OPEN = "half_open"
STATE_OPEN = "open"

STATE_CODES = {STATE_CLOSED: 0, STATE_HALF_OPEN: 1, STATE_OPEN: 2}

#: First backoff after a failure; doubles per consecutive incident.
DEFAULT_BASE_BACKOFF_SECONDS = 0.25

#: Backoff growth cap — a worker that has been dead for an hour is still
#: probed every ``max`` seconds, so recovery is never more than one
#: backoff away.
DEFAULT_MAX_BACKOFF_SECONDS = 30.0


class CircuitBreaker:
    """One worker's failure gate: closed → open → half-open probing.

    Thread-safe; every method takes the internal lock, and the router
    calls them from its fan-out pool threads.

    Parameters
    ----------
    base_backoff_seconds / max_backoff_seconds:
        Exponential backoff schedule for the open state: the ``n``-th
        consecutive incident waits ``min(base * 2^(n-1), max)`` seconds
        (plus jitter) before the next half-open probe.
    jitter_ratio:
        Each backoff is stretched by ``U[0, jitter_ratio]`` of itself,
        drawn from a ``seed``-deterministic RNG.
    seed:
        Jitter RNG seed; the router seeds each worker's breaker with the
        worker index so schedules are reproducible but not in lockstep.
    clock:
        Monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        *,
        base_backoff_seconds: float = DEFAULT_BASE_BACKOFF_SECONDS,
        max_backoff_seconds: float = DEFAULT_MAX_BACKOFF_SECONDS,
        jitter_ratio: float = 0.1,
        seed: int = 0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if base_backoff_seconds <= 0:
            raise ValueError(
                f"base_backoff_seconds must be positive, got {base_backoff_seconds}"
            )
        if max_backoff_seconds < base_backoff_seconds:
            raise ValueError(
                f"max_backoff_seconds ({max_backoff_seconds}) must be at least "
                f"base_backoff_seconds ({base_backoff_seconds})"
            )
        if not 0.0 <= jitter_ratio <= 1.0:
            raise ValueError(f"jitter_ratio must be in [0, 1], got {jitter_ratio}")
        self._base = float(base_backoff_seconds)
        self._max = float(max_backoff_seconds)
        self._jitter_ratio = float(jitter_ratio)
        self._rng = random.Random(seed)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = STATE_CLOSED
        self._consecutive_incidents = 0
        self._open_until = 0.0
        self._last_backoff = 0.0
        self._probe_inflight = False

    # ------------------------------------------------------------------ #
    # Gate
    # ------------------------------------------------------------------ #

    def acquire(self) -> bool:
        """Whether a request may reach the worker right now.

        In the open state this returns ``False`` until the backoff
        elapses, then transitions to half-open and admits exactly one
        probe; concurrent requests keep fast-failing until the probe's
        outcome is recorded.
        """
        with self._lock:
            if self._state == STATE_CLOSED:
                return True
            if self._state == STATE_OPEN:
                if self._clock() < self._open_until:
                    return False
                self._state = STATE_HALF_OPEN
                self._probe_inflight = True
                return True
            # Half-open: one probe at a time.
            if self._probe_inflight:
                return False
            self._probe_inflight = True
            return True

    @property
    def probing(self) -> bool:
        """True while a half-open recovery probe is in flight."""
        with self._lock:
            return self._state == STATE_HALF_OPEN and self._probe_inflight

    # ------------------------------------------------------------------ #
    # Outcomes
    # ------------------------------------------------------------------ #

    def record_success(self) -> None:
        """The worker answered: close the breaker, reset the backoff."""
        with self._lock:
            self._state = STATE_CLOSED
            self._consecutive_incidents = 0
            self._open_until = 0.0
            self._last_backoff = 0.0
            self._probe_inflight = False

    def record_failure(self) -> None:
        """The worker failed: (re-)open with a doubled, jittered backoff."""
        with self._lock:
            self._consecutive_incidents += 1
            backoff = min(
                self._max, self._base * (2.0 ** (self._consecutive_incidents - 1))
            )
            backoff *= 1.0 + self._jitter_ratio * self._rng.random()
            self._last_backoff = backoff
            self._open_until = self._clock() + backoff
            self._state = STATE_OPEN
            self._probe_inflight = False

    def record_neutral(self) -> None:
        """Outcome that says nothing about worker health (e.g. a deadline
        expiring mid-probe): release the half-open probe slot so the next
        request can probe, without closing or re-opening the breaker."""
        with self._lock:
            self._probe_inflight = False

    # ------------------------------------------------------------------ #
    # Observability
    # ------------------------------------------------------------------ #

    @property
    def state(self) -> str:
        """Current state name; an elapsed open backoff reads as half-open
        (the next request would be admitted as the probe)."""
        with self._lock:
            if self._state == STATE_OPEN and self._clock() >= self._open_until:
                return STATE_HALF_OPEN
            return self._state

    @property
    def state_code(self) -> int:
        """Numeric state for the ``repro_shard_breaker_state`` gauge."""
        return STATE_CODES[self.state]

    @property
    def consecutive_incidents(self) -> int:
        with self._lock:
            return self._consecutive_incidents

    def retry_after(self) -> float:
        """Seconds until the next request could be admitted (0 if now)."""
        with self._lock:
            if self._state == STATE_CLOSED:
                return 0.0
            return max(0.0, self._open_until - self._clock())

    def snapshot(self) -> dict[str, Any]:
        """JSON-friendly state for ``router.snapshot()`` / ``/stats``."""
        with self._lock:
            state = self._state
            if state == STATE_OPEN and self._clock() >= self._open_until:
                state = STATE_HALF_OPEN
            return {
                "state": state,
                "state_code": STATE_CODES[state],
                "consecutive_incidents": self._consecutive_incidents,
                "retry_after_seconds": (
                    0.0
                    if self._state == STATE_CLOSED
                    else max(0.0, self._open_until - self._clock())
                ),
                "last_backoff_seconds": self._last_backoff,
            }

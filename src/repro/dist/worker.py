"""Shard worker: owns a subset of a v3 index's shards and answers probes.

A worker is the *data plane* of the distributed layer.  It mmap-loads only
the shard files it owns (lazily, via the same container cache the
single-process mmap loader uses), resolves probe batches with the exact
:func:`~repro.core.mmap_store.probe_sorted_arrays` path every other mode
runs, and returns per-probe CSR slices.  Because the resolution code is
shared — not reimplemented — results are bit-identical to single-process
mmap mode by construction.

The same :class:`ShardWorkerState` backs all three transports:

* ``inproc`` calls :meth:`ShardWorkerState.probe` directly (zero copy);
* ``spawn`` runs :func:`pipe_worker_main` in a spawned child, exchanging
  :mod:`repro.dist.protocol` frames over a multiprocessing pipe
  (``send_bytes``/``recv_bytes`` — raw buffers, never pickle);
* ``tcp``/unix-socket runs :class:`ShardServer`, which frames the same
  messages with a length prefix (``repro shard-worker`` is its CLI face).
"""

from __future__ import annotations

import os
import socket
import threading
import time
from pathlib import Path as FilePath
from typing import Any

import numpy as np

from repro.core.engine import DeadlineExceededError
from repro.core.inverted_index import _segment_gather
from repro.core.mmap_store import ShardSlice, probe_sorted_arrays, route_keys
from repro.core.serialization import (
    _read_manifest,
    _shard_slice_from_container,
    _ShardContainerCache,
)
from repro.dist import protocol


class ShardWorkerState:
    """One worker's owned shards of a saved v3 index, opened lazily.

    ``shards`` is the set of shard indices this worker answers for; a probe
    whose keys route outside that set is a router bug and fails loudly.
    """

    def __init__(self, path: str | FilePath, shards: list[int] | tuple[int, ...]) -> None:
        self._path = FilePath(path)
        manifest = _read_manifest(self._path)
        self._num_shards = int(manifest["num_shards"])
        self._repetitions = int(manifest["repetitions"])
        owned = sorted(int(shard) for shard in shards)
        for shard in owned:
            if not 0 <= shard < self._num_shards:
                raise ValueError(
                    f"shard {shard} out of range for an index with "
                    f"{self._num_shards} shards"
                )
        if not owned:
            raise ValueError("a shard worker must own at least one shard")
        self._owned = frozenset(owned)
        self._shards = tuple(owned)
        self._fences = np.asarray(manifest["fences"], dtype=np.uint64)
        self._counts = [
            [shard_entry["repetitions"][rep] for rep in range(self._repetitions)]
            for shard_entry in manifest["shards"]
        ]
        self._containers = _ShardContainerCache(self._path, list(manifest["shard_files"]))
        self._slices: dict[tuple[int, int], ShardSlice] = {}
        self._lock = threading.Lock()

    @property
    def shards(self) -> tuple[int, ...]:
        return self._shards

    @property
    def repetitions(self) -> int:
        return self._repetitions

    def _slice(self, repetition: int, shard: int) -> ShardSlice:
        if shard not in self._owned:
            raise ValueError(
                f"worker owns shards {sorted(self._owned)} but was asked for "
                f"shard {shard}; the router's worker map is inconsistent"
            )
        if not 0 <= repetition < self._repetitions:
            raise ValueError(
                f"repetition {repetition} out of range (index has "
                f"{self._repetitions})"
            )
        key = (repetition, shard)
        # Double-checked locking: slices are add-only, so a racy hit returns
        # the same immutable ShardSlice the locked path would.
        cached = self._slices.get(key)  # repro-lint: disable=RPL002 -- double-checked fast path; re-read under the lock below
        if cached is not None:
            return cached
        with self._lock:
            cached = self._slices.get(key)
            if cached is None:
                cached = _shard_slice_from_container(
                    self._containers.arrays(shard),
                    self._containers.path_of(shard),
                    repetition,
                    self._counts[shard][repetition],
                )
                self._slices[key] = cached
        return cached

    # ------------------------------------------------------------------ #
    # Request handlers
    # ------------------------------------------------------------------ #

    def probe(
        self,
        repetition: int,
        keys: np.ndarray,
        probe_items: np.ndarray,
        probe_offsets: np.ndarray,
        deadline: float | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Resolve a CSR probe batch against the owned shards.

        Returns ``(lengths, ids)``: per-probe posting counts plus the
        concatenated posting ids in probe order — the worker-local half of
        the scatter-merge that ``probe_batch_routed`` performs globally.

        ``deadline`` is an absolute wall-clock epoch; it is checked before
        any work and again between owned shards, so a spent budget stops
        the worker working, not just the router waiting.
        """
        if deadline is not None and time.time() >= deadline:
            raise DeadlineExceededError(
                "request deadline expired before the worker started probing"
            )
        keys_arr = np.ascontiguousarray(keys, dtype=np.uint64)
        num_probes = keys_arr.size
        empty = np.empty(0, dtype=np.int64)
        if num_probes == 0:
            return np.zeros(0, dtype=np.int64), empty
        items = np.ascontiguousarray(probe_items, dtype=np.int64)
        offsets = np.ascontiguousarray(probe_offsets, dtype=np.int64)
        if offsets.size != num_probes + 1:
            raise ValueError(
                f"probe_offsets has {offsets.size} entries for {num_probes} keys"
            )
        probe_starts = offsets[:-1]
        probe_lengths = np.diff(offsets)
        route = route_keys(self._fences, keys_arr)
        parts: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        for shard in np.unique(route).tolist():
            if deadline is not None and time.time() >= deadline:
                raise DeadlineExceededError(
                    f"request deadline expired mid-probe (before shard {shard})"
                )
            members = np.flatnonzero(route == shard)
            part = self._slice(shard=int(shard), repetition=repetition)
            slots, lengths = probe_sorted_arrays(
                keys_arr[members],
                items,
                probe_starts[members],
                probe_lengths[members],
                part.keys,
                part.path_items,
                part.path_offsets,
                part.posting_offsets,
                part.has_duplicate_keys,
            )
            gathered = _segment_gather(
                part.posting_ids, part.posting_offsets[slots], lengths
            ).astype(np.int64, copy=False)
            parts.append((members, lengths, gathered))
        per_probe = np.zeros(num_probes, dtype=np.int64)
        for members, lengths, _gathered in parts:
            per_probe[members] = lengths
        out_offsets = np.zeros(num_probes + 1, dtype=np.int64)
        np.cumsum(per_probe, out=out_offsets[1:])
        total = int(out_offsets[-1])
        if total == 0:
            return per_probe, empty
        ids = np.empty(total, dtype=np.int64)
        for members, lengths, gathered in parts:
            if not gathered.size:
                continue
            starts = out_offsets[:-1][members]
            destination = np.arange(gathered.size, dtype=np.int64) + np.repeat(
                starts - (np.cumsum(lengths) - lengths), lengths
            )
            ids[destination] = gathered
        return per_probe, ids

    def contains(self, repetition: int, key: int, items: np.ndarray) -> bool:
        """Exact is-this-path-stored check (empty posting lists included)."""
        key64 = np.uint64(key)
        shard = int(route_keys(self._fences, np.asarray([key64]))[0])
        part = self._slice(repetition=repetition, shard=shard)
        if part.keys.size == 0:
            return False
        path_items = np.ascontiguousarray(items, dtype=np.int64)
        slots, _lengths = probe_sorted_arrays(
            np.asarray([key64], dtype=np.uint64),
            path_items,
            np.zeros(1, dtype=np.int64),
            np.asarray([path_items.size], dtype=np.int64),
            part.keys,
            part.path_items,
            part.path_offsets,
            part.posting_offsets,
            part.has_duplicate_keys,
        )
        slot = int(slots[0])
        if part.keys[slot] != key64:
            return False
        start = int(part.path_offsets[slot])
        end = int(part.path_offsets[slot + 1])
        return bool(np.array_equal(part.path_items[start:end], path_items))

    def describe(self) -> dict[str, Any]:
        """Topology and liveness facts for router validation and /stats."""
        return {
            "path": str(self._path),
            "shards": list(self._shards),
            "num_shards": self._num_shards,
            "repetitions": self._repetitions,
            "pid": os.getpid(),
        }

    # ------------------------------------------------------------------ #
    # Frame dispatch (shared by the pipe and socket servers)
    # ------------------------------------------------------------------ #

    def handle_frame(self, payload: bytes) -> tuple[bytes, bool]:
        """Decode one request frame, run it, encode the response.

        Never raises: every failure becomes a status-``error`` response so a
        malformed request cannot take the worker down.  The second element
        is ``True`` when the request was a clean shutdown.
        """
        kind = "unknown"
        try:
            meta, arrays = protocol.decode_message(payload)
            kind = str(meta.get("kind", "unknown"))
            if kind == protocol.MESSAGE_PROBE:
                raw_deadline = meta.get("deadline")
                lengths, ids = self.probe(
                    int(meta["repetition"]),
                    arrays["keys"],
                    arrays["probe_items"],
                    arrays["probe_offsets"],
                    deadline=None if raw_deadline is None else float(raw_deadline),
                )
                return protocol.encode_probe_response(lengths, ids), False
            if kind == protocol.MESSAGE_CONTAINS:
                stored = self.contains(
                    int(meta["repetition"]), int(meta["key"]), arrays["items"]
                )
                return (
                    protocol.encode_message(
                        {
                            "kind": kind,
                            "status": protocol.STATUS_OK,
                            "stored": stored,
                        }
                    ),
                    False,
                )
            if kind == protocol.MESSAGE_DESCRIBE:
                meta_out = {"kind": kind, "status": protocol.STATUS_OK}
                meta_out.update(self.describe())
                return protocol.encode_message(meta_out), False
            if kind == protocol.MESSAGE_SHUTDOWN:
                return (
                    protocol.encode_message(
                        {"kind": kind, "status": protocol.STATUS_OK}
                    ),
                    True,
                )
            return protocol.encode_error(kind, f"unknown message kind {kind!r}"), False
        except DeadlineExceededError as error:
            # Deadline-coded so the transport re-raises it as a deadline,
            # not as a worker fault — the breaker must not trip on it.
            return (
                protocol.encode_error(
                    kind, str(error), code=protocol.ERROR_CODE_DEADLINE
                ),
                False,
            )
        except Exception as error:  # noqa: BLE001 - worker must answer, not die
            return protocol.encode_error(kind, f"{type(error).__name__}: {error}"), False


def pipe_worker_main(connection: Any, path: str, shards: tuple[int, ...]) -> None:
    """Entry point of a spawned shard worker (module-level for spawn pickling).

    Loops over request frames on the pipe until the parent closes its end,
    the process is killed, or a clean ``shutdown`` message arrives.  Frames
    travel via ``send_bytes``/``recv_bytes``, so no pickle is ever involved
    in the data path — only the (str, tuple) arguments of this function
    cross via the spawn machinery.
    """
    state = ShardWorkerState(path, shards)
    try:
        while True:
            try:
                payload = connection.recv_bytes()
            except (EOFError, OSError):
                break
            response, shutdown = state.handle_frame(payload)
            try:
                connection.send_bytes(response)
            except (BrokenPipeError, OSError):
                break
            if shutdown:
                break
    finally:
        connection.close()


class ShardServer:
    """Length-prefix-framed socket front end around a shard worker.

    Listens on TCP (``host``/``port``, port 0 picks a free one) or a unix
    domain socket (``socket_path``), one thread per connection, each
    connection a sequential request/response loop over the same frames the
    pipe transport uses.  This is what ``repro shard-worker`` runs.
    """

    def __init__(
        self,
        state: ShardWorkerState,
        host: str = "127.0.0.1",
        port: int = 0,
        socket_path: str | None = None,
    ) -> None:
        self._state = state
        self._host = host
        self._port = port
        self._socket_path = socket_path
        self._listener: socket.socket | None = None
        self._closed = threading.Event()

    def start(self) -> str:
        """Bind and listen; returns the resolved address string."""
        if self._socket_path is not None:
            listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            listener.bind(self._socket_path)
            address = self._socket_path
        else:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((self._host, self._port))
            self._port = listener.getsockname()[1]
            address = f"{self._host}:{self._port}"
        listener.listen()
        self._listener = listener
        return address

    @property
    def address(self) -> str:
        if self._listener is None:
            raise RuntimeError("server not started")
        if self._socket_path is not None:
            return self._socket_path
        return f"{self._host}:{self._port}"

    def serve_forever(self) -> None:
        """Accept connections until :meth:`close`; blocks the calling thread."""
        listener = self._listener
        if listener is None:
            raise RuntimeError("call start() before serve_forever()")
        while not self._closed.is_set():
            try:
                connection, _peer = listener.accept()
            except OSError:
                break  # listener closed
            thread = threading.Thread(
                target=self._serve_connection, args=(connection,), daemon=True
            )
            thread.start()

    def _serve_connection(self, connection: socket.socket) -> None:
        with connection:
            while not self._closed.is_set():
                try:
                    payload = protocol.recv_frame(connection)
                except (protocol.ConnectionClosed, OSError):
                    return
                response, shutdown = self._state.handle_frame(payload)
                try:
                    protocol.send_frame(connection, response)
                except OSError:
                    return
                if shutdown:
                    self.close()
                    return

    def close(self) -> None:
        """Stop accepting; in-flight connections finish their current frame."""
        self._closed.set()
        listener = self._listener
        if listener is not None:
            try:
                listener.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
        if self._socket_path is not None:
            try:
                os.unlink(self._socket_path)
            except OSError:
                pass

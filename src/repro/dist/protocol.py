"""Wire format of the shard-serving layer.

Every message between the :class:`~repro.dist.router.ShardRouter` and a
shard worker — whatever the transport — is one *frame*: a small JSON
header describing the message kind plus named raw numpy arrays, laid out
back to back.  The format deliberately mirrors the v3 on-disk container
(JSON header + little-endian raw arrays) so the whole stack speaks one
idiom, and it is pickle-free by construction: a hostile or corrupt frame
can fail decoding, but it can never execute code.

Frame layout::

    magic   4 bytes  b"RPD1"
    header  u32 little-endian length, then that many JSON bytes
    arrays  raw little-endian bytes at the offsets the header declares

The header is ``{"meta": {...}, "arrays": {name: {dtype, shape, offset}},
"data_len": N, "crc32": C}`` with offsets relative to the end of the
header.  ``data_len``/``crc32`` protect the array bytes against a faulty
network: a flipped payload byte (or a declared array that runs past the
received bytes) raises an actionable :class:`ProtocolError` instead of
decoding garbage.  :func:`decode_message` returns zero-copy
``np.frombuffer`` views into the received buffer, so a worker's probe
response is never copied again on the router side.

Socket transports add one more u32 length prefix around the frame
(:func:`send_frame` / :func:`recv_frame`); the multiprocessing pipe
transport relies on ``send_bytes`` framing instead and ships the frame
as-is.

Message kinds (the ``meta["kind"]`` field):

=========== ==========================================================
``probe``    resolve a CSR batch of probes for one repetition
``contains`` exact is-this-path-stored check for one key
``describe`` worker topology/health (owned shards, repetitions, pid)
``shutdown`` finish the current request loop and exit cleanly
=========== ==========================================================
"""

from __future__ import annotations

import json
import socket
import struct
import zlib
from typing import Any, Mapping

import numpy as np

MESSAGE_PROBE = "probe"
MESSAGE_CONTAINS = "contains"
MESSAGE_DESCRIBE = "describe"
MESSAGE_SHUTDOWN = "shutdown"

STATUS_OK = "ok"
STATUS_ERROR = "error"

#: ``meta["code"]`` of an error response meaning "the request's deadline
#: expired before the worker finished" — an outcome of the request's own
#: budget, not a worker fault, so transports surface it as
#: :class:`~repro.core.engine.DeadlineExceededError` and the router does
#: not count it against the worker's circuit breaker.
ERROR_CODE_DEADLINE = "deadline"

_MAGIC = b"RPD1"
_PREFIX = struct.Struct("<4sI")  # magic, header length
_FRAME_PREFIX = struct.Struct("<I")  # socket-level frame length

#: Upper bound on a single frame over a socket (guards a garbage length
#: prefix from a mis-speaking peer; probe batches are far smaller).
MAX_FRAME_BYTES = 1 << 30


class ProtocolError(ValueError):
    """A frame that does not decode as a shard-protocol message."""


class ConnectionClosed(ConnectionError):
    """The peer closed the connection mid-frame (or before one)."""


def encode_message(
    meta: Mapping[str, Any], arrays: Mapping[str, np.ndarray] | None = None
) -> bytes:
    """Serialise one message (header metadata + named arrays) to a frame."""
    entries: dict[str, dict[str, Any]] = {}
    contiguous: list[np.ndarray] = []
    cursor = 0
    for name, array in (arrays or {}).items():
        array = np.ascontiguousarray(array)
        if array.dtype.byteorder == ">":  # pragma: no cover - big-endian hosts
            array = array.astype(array.dtype.newbyteorder("<"))
        entries[name] = {
            "dtype": np.dtype(array.dtype).str,
            "shape": list(array.shape),
            "offset": cursor,
        }
        contiguous.append(array)
        cursor += array.nbytes
    checksum = 0
    for array in contiguous:
        checksum = zlib.crc32(memoryview(array).cast("B"), checksum)
    header = json.dumps(
        {
            "meta": dict(meta),
            "arrays": entries,
            "data_len": cursor,
            "crc32": checksum,
        }
    ).encode("utf-8")
    parts = [_PREFIX.pack(_MAGIC, len(header)), header]
    parts.extend(memoryview(array).cast("B") for array in contiguous)
    return b"".join(parts)


def decode_message(payload: bytes) -> tuple[dict[str, Any], dict[str, np.ndarray]]:
    """Inverse of :func:`encode_message`; arrays are zero-copy views.

    The returned arrays alias ``payload`` (and are therefore read-only
    when it is a ``bytes`` object); callers that need to mutate must copy.
    Every malformed input raises :class:`ProtocolError`.
    """
    if len(payload) < _PREFIX.size:
        raise ProtocolError("frame too short to hold a message prefix")
    magic, header_len = _PREFIX.unpack_from(payload)
    if magic != _MAGIC:
        raise ProtocolError(f"bad frame magic {magic!r}")
    if header_len > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"declared header length {header_len} exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame cap (corrupt length prefix?)"
        )
    data_start = _PREFIX.size + header_len
    if len(payload) < data_start:
        raise ProtocolError(
            f"frame truncated inside its header: the prefix declares "
            f"{header_len} header bytes but only "
            f"{len(payload) - _PREFIX.size} follow"
        )
    try:
        header = json.loads(payload[_PREFIX.size : data_start].decode("utf-8"))
        meta = header["meta"]
        entries = header["arrays"]
        assert isinstance(meta, dict) and isinstance(entries, dict)
    except (ValueError, KeyError, AssertionError) as error:
        raise ProtocolError(f"corrupt message header: {error}") from error
    declared_len: int | None = None
    if "data_len" in header:
        try:
            declared_len = int(header["data_len"])
        except (TypeError, ValueError) as error:
            raise ProtocolError(f"corrupt data_len in header: {error}") from error
        if declared_len < 0 or declared_len > MAX_FRAME_BYTES:
            raise ProtocolError(
                f"declared payload length {declared_len} is outside "
                f"[0, {MAX_FRAME_BYTES}]"
            )
        if data_start + declared_len > len(payload):
            raise ProtocolError(
                f"frame truncated: the header declares {declared_len} array "
                f"bytes but only {len(payload) - data_start} arrived"
            )
    if "crc32" in header:
        if declared_len is None:
            raise ProtocolError("header carries crc32 but no data_len to check it over")
        received = zlib.crc32(memoryview(payload)[data_start : data_start + declared_len])
        expected = int(header["crc32"]) & 0xFFFFFFFF
        if received != expected:
            raise ProtocolError(
                f"payload checksum mismatch: header declares crc32 "
                f"{expected:#010x} but the received bytes hash to "
                f"{received:#010x} (corrupt frame)"
            )
    arrays: dict[str, np.ndarray] = {}
    for name, entry in entries.items():
        try:
            dtype = np.dtype(entry["dtype"])
            shape = tuple(int(axis) for axis in entry["shape"])
            offset = int(entry["offset"])
        except (KeyError, TypeError, ValueError) as error:
            raise ProtocolError(f"corrupt entry for array {name!r}: {error}") from error
        count = int(np.prod(shape, dtype=np.int64)) if shape else 1
        nbytes = dtype.itemsize * count
        if nbytes > MAX_FRAME_BYTES:
            raise ProtocolError(
                f"array {name!r} declares {nbytes} bytes, above the "
                f"{MAX_FRAME_BYTES}-byte frame cap (corrupt shape?)"
            )
        end = data_start + offset + nbytes
        if offset < 0 or end > len(payload):
            raise ProtocolError(
                f"frame truncated: array {name!r} needs bytes up to {end} "
                f"but the frame holds {len(payload)}"
            )
        if declared_len is not None and offset + nbytes > declared_len:
            raise ProtocolError(
                f"array {name!r} runs past the declared payload "
                f"({offset + nbytes} > data_len {declared_len})"
            )
        arrays[name] = np.frombuffer(
            payload, dtype=dtype, count=count, offset=data_start + offset
        ).reshape(shape)
    return meta, arrays


def encode_error(kind: str, message: str, code: str | None = None) -> bytes:
    """An error response frame carrying a human-readable reason.

    ``code`` is an optional machine-readable discriminator (e.g.
    :data:`ERROR_CODE_DEADLINE`) the transport can dispatch on without
    parsing the message text.
    """
    meta: dict[str, Any] = {"kind": kind, "status": STATUS_ERROR, "error": message}
    if code is not None:
        meta["code"] = code
    return encode_message(meta)


def encode_probe_request(
    repetition: int,
    keys: np.ndarray,
    probe_items: np.ndarray,
    probe_offsets: np.ndarray,
    deadline: float | None = None,
) -> bytes:
    """A probe request: folded keys plus the probes' paths in CSR form.

    ``deadline`` is an absolute wall-clock epoch (``time.time()`` scale —
    the only clock that crosses process and host boundaries); a worker
    that sees it in the past answers a deadline-coded error instead of
    doing the work.
    """
    meta: dict[str, Any] = {"kind": MESSAGE_PROBE, "repetition": int(repetition)}
    if deadline is not None:
        meta["deadline"] = float(deadline)
    return encode_message(
        meta,
        {
            "keys": np.ascontiguousarray(keys, dtype=np.uint64),
            "probe_items": np.ascontiguousarray(probe_items, dtype=np.int64),
            "probe_offsets": np.ascontiguousarray(probe_offsets, dtype=np.int64),
        },
    )


def encode_probe_response(lengths: np.ndarray, ids: np.ndarray) -> bytes:
    """A probe response: per-probe posting counts + concatenated ids."""
    return encode_message(
        {"kind": MESSAGE_PROBE, "status": STATUS_OK},
        {
            "lengths": np.ascontiguousarray(lengths, dtype=np.int64),
            "ids": np.ascontiguousarray(ids, dtype=np.int64),
        },
    )


# --------------------------------------------------------------------- #
# Socket framing
# --------------------------------------------------------------------- #


def send_frame(sock: socket.socket, payload: bytes) -> None:
    """Write one length-prefixed frame to a connected socket."""
    sock.sendall(_FRAME_PREFIX.pack(len(payload)) + payload)


def _recv_exactly(sock: socket.socket, count: int) -> bytes:
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionClosed(
                f"peer closed the connection with {remaining} of {count} bytes unread"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> bytes:
    """Read one length-prefixed frame; raises :class:`ConnectionClosed` on EOF."""
    prefix = _recv_exactly(sock, _FRAME_PREFIX.size)
    (length,) = _FRAME_PREFIX.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {length} bytes exceeds the {MAX_FRAME_BYTES} cap")
    return _recv_exactly(sock, length)

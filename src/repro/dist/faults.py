"""Deterministic fault injection for the shard-serving stack.

Chaos testing only works when the chaos is reproducible: the same fault
spec against the same store must produce the same failure sequence, or a
red CI run cannot be replayed locally.  This module provides

* :class:`FaultSpec` — a tiny declarative grammar for *what* to break,
  parsed from a string (CLI flag, ``REPRO_FAULTS`` env var, or the
  ``fault_spec=`` argument of ``load_routed_index``), and
* :class:`FaultyTransport` — a :class:`~repro.dist.transport.ShardTransport`
  wrapper that sits between the router and any real transport and injects
  the scheduled faults, so the full ``serve → batcher → router →
  transport → worker`` stack is driven through failure paths with zero
  test-only hooks inside the production code.

Spec grammar
------------

A spec is comma-separated *clauses*; each clause is colon-separated
fields whose first token names the fault kind and whose remaining tokens
are ``key=value`` options::

    crash:worker=0:count=2
    delay:seconds=0.05:worker=1,drop:probability=0.1:seed=7

========== ===========================================================
``delay``      sleep ``seconds`` (default 0.05) before the real call
``slow-start`` like ``delay`` but only the first ``count`` (default 1)
               matching requests per clause — a cold worker warming up
``hang``       sleep ``seconds`` (default 0.2), then fail as a timeout
``drop``       fail immediately, as a dropped connection
``corrupt``    deliver a corrupt frame (fails the payload checksum)
``crash``      kill the worker process (when the transport exposes its
               pid) and fail the request
========== ===========================================================

Common options: ``worker=N`` targets one worker (default: any),
``count=N`` limits how many times the clause fires (default: forever;
``slow-start`` defaults to once), ``probability=P`` fires the clause on
a seeded coin flip, and a standalone ``seed=N`` clause seeds that RNG.

Named presets map to full specs; ``crash-one-worker`` is the CI chaos
scenario: worker 0 crashes on first contact and again on the breaker's
first half-open probe, then stays healthy, so a smoke run observes
degradation, backoff, and recovery in one pass.
"""

from __future__ import annotations

import os
import random
import signal
import threading
import time
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.dist import protocol
from repro.dist.transport import ShardTransport, ShardUnavailableError

#: Named scenarios accepted anywhere a spec string is (CLI, env, loader).
FAULT_PRESETS: dict[str, str] = {
    # Crash on first contact and once more on the recovery probe: two
    # breaker openings with growing backoff, then full recovery.
    "crash-one-worker": "crash:worker=0:count=2",
}

_KINDS = ("delay", "slow-start", "hang", "drop", "corrupt", "crash")


@dataclass(frozen=True)
class FaultClause:
    """One scheduled fault: what breaks, where, how often."""

    kind: str
    worker: int | None = None
    count: int | None = None
    probability: float = 1.0
    seconds: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {_KINDS}"
            )
        if self.count is not None and self.count < 0:
            raise ValueError(f"count must be non-negative, got {self.count}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {self.probability}")
        if self.seconds is not None and self.seconds < 0:
            raise ValueError(f"seconds must be non-negative, got {self.seconds}")

    @property
    def sleep_seconds(self) -> float:
        if self.seconds is not None:
            return self.seconds
        return 0.2 if self.kind == "hang" else 0.05


@dataclass(frozen=True)
class FaultSpec:
    """A parsed fault schedule: clauses plus the coin-flip RNG seed."""

    clauses: tuple[FaultClause, ...]
    seed: int = 0

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse the spec grammar (or a preset name) into a schedule."""
        text = text.strip()
        if not text:
            raise ValueError("empty fault spec")
        text = FAULT_PRESETS.get(text, text)
        clauses: list[FaultClause] = []
        seed = 0
        for raw_clause in text.split(","):
            raw_clause = raw_clause.strip()
            if not raw_clause:
                continue
            fields = raw_clause.split(":")
            head = fields[0].strip()
            if "=" in head:
                # A standalone option clause (currently only seed=N).
                key, _, value = head.partition("=")
                if key.strip() != "seed":
                    raise ValueError(
                        f"clause {raw_clause!r} starts with option "
                        f"{key.strip()!r}; only 'seed' may stand alone"
                    )
                seed = int(value)
                if len(fields) > 1:
                    raise ValueError(f"seed clause {raw_clause!r} takes no options")
                continue
            options: dict[str, Any] = {}
            for field in fields[1:]:
                key, sep, value = field.partition("=")
                key = key.strip()
                if not sep:
                    raise ValueError(
                        f"option {field!r} in clause {raw_clause!r} is not key=value"
                    )
                if key == "worker":
                    options["worker"] = int(value)
                elif key == "count":
                    options["count"] = int(value)
                elif key == "probability":
                    options["probability"] = float(value)
                elif key == "seconds":
                    options["seconds"] = float(value)
                else:
                    raise ValueError(
                        f"unknown option {key!r} in clause {raw_clause!r}; "
                        "expected worker=, count=, probability=, or seconds="
                    )
            if head == "slow-start" and "count" not in options:
                options["count"] = 1
            clauses.append(FaultClause(kind=head, **options))
        if not clauses:
            raise ValueError(f"fault spec {text!r} contains no fault clauses")
        return cls(clauses=tuple(clauses), seed=seed)

    @classmethod
    def from_spec(cls, value: "str | FaultSpec | None") -> "FaultSpec | None":
        """Normalise the loader-facing argument (string, spec, or None)."""
        if value is None:
            return None
        if isinstance(value, FaultSpec):
            return value
        return cls.parse(value)


def fault_spec_from_env(environ: Any | None = None) -> FaultSpec | None:
    """The ``REPRO_FAULTS`` hook: a spec every routed load picks up.

    Lets the chaos smoke (and an operator reproducing an incident) inject
    faults into an unmodified serving process purely from the environment.
    """
    env = os.environ if environ is None else environ
    raw = env.get("REPRO_FAULTS", "").strip()
    return FaultSpec.parse(raw) if raw else None


class FaultyTransport(ShardTransport):
    """Any transport, wrapped so a :class:`FaultSpec` can break it.

    Wraps the high-level operations (``probe``/``contains``) rather than
    the frame plumbing because :class:`InprocTransport` has no frame
    plumbing to wrap; ``describe`` is left fault-free so topology
    discovery during load keeps working.  Injected failures are folded
    into ``counters()``/``health()`` so the router's observability shows
    them exactly like organic ones.
    """

    def __init__(self, inner: ShardTransport, spec: FaultSpec) -> None:
        super().__init__(inner.assignments)
        self._inner = inner
        self._spec = spec
        self._rng = random.Random(spec.seed)
        self._fault_lock = threading.Lock()
        self._remaining: list[int | None] = [
            clause.count for clause in spec.clauses
        ]
        self._injected = [0] * self.num_workers
        self.kind = f"faulty+{inner.kind}"

    @property
    def inner(self) -> ShardTransport:
        return self._inner

    # -- fault engine --------------------------------------------------- #

    def _next_fault(self, worker: int) -> FaultClause | None:
        """Claim the first matching clause for this request, if any."""
        with self._fault_lock:
            for index, clause in enumerate(self._spec.clauses):
                if clause.worker is not None and clause.worker != worker:
                    continue
                remaining = self._remaining[index]
                if remaining == 0:
                    continue
                if clause.probability < 1.0 and self._rng.random() >= clause.probability:
                    continue
                if remaining is not None:
                    self._remaining[index] = remaining - 1
                self._injected[worker] += 1
                return clause
        return None

    def _inject(self, worker: int, clause: FaultClause) -> None:
        """Apply one claimed clause; raising means the request fails."""
        kind = clause.kind
        if kind in ("delay", "slow-start"):
            time.sleep(clause.sleep_seconds)
            return
        if kind == "hang":
            time.sleep(clause.sleep_seconds)
            raise ShardUnavailableError(
                f"injected hang: worker {worker} gave no response within "
                f"{clause.sleep_seconds:g}s"
            )
        if kind == "drop":
            raise ShardUnavailableError(
                f"injected connection drop to worker {worker}"
            )
        if kind == "corrupt":
            # Build a real frame, flip a payload byte, and decode: the
            # checksum failure path raises the same ProtocolError a
            # faulty network would produce.
            frame = bytearray(
                protocol.encode_probe_response(
                    np.zeros(1, dtype=np.int64), np.zeros(0, dtype=np.int64)
                )
            )
            frame[-1] ^= 0xFF
            protocol.decode_message(bytes(frame))
            raise AssertionError("corrupt frame unexpectedly decoded")
        if kind == "crash":
            pid_of = getattr(self._inner, "pid_of", None)
            if callable(pid_of):
                pid = pid_of(worker)
                if pid is not None:
                    try:
                        os.kill(int(pid), signal.SIGKILL)
                    except (OSError, ProcessLookupError):  # pragma: no cover
                        pass
            raise ShardUnavailableError(f"injected crash of worker {worker}")
        raise AssertionError(f"unhandled fault kind {kind!r}")  # pragma: no cover

    def _before(self, worker: int) -> None:
        clause = self._next_fault(worker)
        if clause is None:
            return
        try:
            self._inject(worker, clause)
        except Exception:
            self._record_failure(worker, recovered=False)
            raise

    # -- transport interface -------------------------------------------- #

    def probe(
        self,
        worker: int,
        repetition: int,
        keys: np.ndarray,
        probe_items: np.ndarray,
        probe_offsets: np.ndarray,
        deadline: float | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        self._before(worker)
        return self._inner.probe(
            worker, repetition, keys, probe_items, probe_offsets, deadline=deadline
        )

    def contains(self, worker: int, repetition: int, key: int, items: np.ndarray) -> bool:
        self._before(worker)
        return self._inner.contains(worker, repetition, key, items)

    def describe(self, worker: int) -> dict[str, Any]:
        return self._inner.describe(worker)

    def pid_of(self, worker: int) -> int | None:
        pid_of = getattr(self._inner, "pid_of", None)
        return pid_of(worker) if callable(pid_of) else None

    def counters(self) -> tuple[list[int], list[int]]:
        failures, recoveries = self._inner.counters()
        with self._counter_lock:
            injected = list(self._failures)
        return (
            [organic + extra for organic, extra in zip(failures, injected)],
            recoveries,
        )

    def injected_counts(self) -> list[int]:
        """Per-worker number of faults this wrapper has injected."""
        with self._fault_lock:
            return list(self._injected)

    def _alive(self, worker: int) -> bool:
        return bool(self._inner.health()[worker]["alive"])

    def health(self) -> list[dict[str, Any]]:
        entries = self._inner.health()
        failures, recoveries = self.counters()
        injected = self.injected_counts()
        for worker, entry in enumerate(entries):
            entry["failures"] = failures[worker]
            entry["recoveries"] = recoveries[worker]
            entry["injected_faults"] = injected[worker]
        return entries

    def close(self) -> None:
        self._inner.close()

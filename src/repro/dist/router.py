"""Shard router: fan probe batches out to shard workers, merge CSR slices.

:class:`ShardRouter` owns the v3 manifest's partition contract — the
key-range fences plus a shard→worker map — and a transport.  For each
probe batch it routes every folded key **once** (one ``searchsorted``
over the fences, exactly as single-process mmap mode does), groups the
probes by owning worker, sends each worker one compact CSR sub-request,
and scatter-merges the returned ``(lengths, ids)`` slices back into
probe order.  The merged output is bit-identical to
:meth:`ShardedInvertedFilterIndex.probe_batch_routed` because the
resolution *and* the scatter are the same algorithms over the same
arrays — only the process boundary moved.

:class:`RouterBackedFilterIndex` wraps one repetition of the routed index
in the store interface the engine already speaks, so the entire query
pipeline above the probe layer (dedupe, merges, verification, stats) is
untouched — that is what makes all five query surfaces equivalent for
free.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Iterable, Iterator, Sequence

import numpy as np

from repro.core.engine import DeadlineExceededError
from repro.core.inverted_index import _segment_gather
from repro.core.mmap_store import MmapReadOnlyError, route_keys
from repro.core.paths import paths_to_csr
from repro.core.stats import ShardFanoutStats
from repro.dist import protocol
from repro.dist.breaker import CircuitBreaker
from repro.dist.transport import (
    ShardTransport,
    ShardUnavailableError,
    ShardWorkerError,
)
from repro.hashing.pairwise import fold_path

Path = tuple[int, ...]

_ROUTER_READ_ONLY_ERROR = (
    "a router-backed index is read-only: shard workers serve mmap views and "
    "cannot accept postings; reload the index with load_index(path, "
    "mode='ram') to insert (removals are fine — tombstones overlay at the "
    "engine level in the router process and never reach the workers)"
)


class ShardRouter:
    """Routes probe batches across shard workers and accounts the fan-out.

    One router serves every repetition of a loaded index (repetitions
    share fences, so the routing table is repetition-independent); the
    per-repetition :class:`RouterBackedFilterIndex` views carry their
    repetition number into each request.

    Fan-out accounting is two-tier: ``take_fanout_stats`` drains a pending
    delta (folded into each ``BatchQueryStats`` by the engine), while
    ``snapshot`` reports lifetime totals plus transport health for
    ``/stats`` and ``/metrics``.
    """

    def __init__(
        self,
        transport: ShardTransport,
        fences: np.ndarray,
        shard_to_worker: np.ndarray,
    ) -> None:
        self._transport = transport
        self._fences = np.ascontiguousarray(fences, dtype=np.uint64)
        self._shard_to_worker = np.ascontiguousarray(shard_to_worker, dtype=np.int64)
        if self._shard_to_worker.size != self._fences.size + 1:
            raise ValueError(
                f"shard_to_worker maps {self._shard_to_worker.size} shards but the "
                f"fences define {self._fences.size + 1}"
            )
        workers = transport.num_workers
        self._stats_lock = threading.Lock()
        self._pending = ShardFanoutStats.sized(workers)
        self._lifetime = ShardFanoutStats.sized(workers)
        self._seen_failures = [0] * workers
        self._seen_recoveries = [0] * workers
        # One breaker per worker, seeded by index: jitter schedules are
        # reproducible but the workers never back off in lockstep.
        self._breakers = [CircuitBreaker(seed=worker) for worker in range(workers)]
        self._retries = [0] * workers
        # Per-request execution scope (degraded mode + deadline), set by
        # the engine around each batch it executes through this router.
        self._scope_allow_partial = False
        self._scope_deadline: float | None = None
        self._pool = (
            ThreadPoolExecutor(max_workers=workers, thread_name_prefix="repro-router")
            if workers > 1
            else None
        )
        self._closed = False

    @property
    def transport(self) -> ShardTransport:
        return self._transport

    @property
    def num_workers(self) -> int:
        return self._transport.num_workers

    @property
    def num_shards(self) -> int:
        return self._shard_to_worker.size

    @property
    def fences(self) -> np.ndarray:
        return self._fences

    @property
    def breakers(self) -> list[CircuitBreaker]:
        """Per-worker circuit breakers (index-aligned with workers)."""
        return self._breakers

    # ------------------------------------------------------------------ #
    # Request scope (degraded mode + deadline)
    # ------------------------------------------------------------------ #

    def set_request_scope(
        self, *, allow_partial: bool = False, deadline: float | None = None
    ) -> None:
        """Arm degraded-mode / deadline handling for the next fan-outs.

        The engine sets this around each batch it executes through the
        router (and clears it in a ``finally``).  It is instance-level
        rather than thread-local because the engine's chunk *threads*
        perform the fan-outs — they must all see the scope the batch's
        submitting thread set.  The serving layer serialises engine calls
        on a single executor lane, so concurrent batches with different
        scopes do not occur there; direct multi-threaded engine users
        should dedicate a routed index per thread.
        """
        self._scope_allow_partial = bool(allow_partial)
        self._scope_deadline = None if deadline is None else float(deadline)

    def clear_request_scope(self) -> None:
        """Reset the request scope to strict/full-answer semantics."""
        self._scope_allow_partial = False
        self._scope_deadline = None

    # ------------------------------------------------------------------ #
    # Fan-out accounting
    # ------------------------------------------------------------------ #

    def _record(self, worker: int, rows: int, seconds: float) -> None:
        with self._stats_lock:
            for record in (self._pending, self._lifetime):
                record.requests[worker] += 1
                record.rows[worker] += rows
                record.seconds[worker] += seconds

    def _record_abort(self, worker: int) -> None:
        with self._stats_lock:
            for record in (self._pending, self._lifetime):
                record.aborts[worker] += 1

    def _record_missing(self, shards: np.ndarray) -> None:
        """Mark shards whose postings are absent from the current batch."""
        shard_list = [int(shard) for shard in np.unique(shards)]
        with self._stats_lock:
            merged = set(self._pending.shards_missing)
            merged.update(shard_list)
            self._pending.shards_missing = sorted(merged)

    def _record_retry(self, worker: int) -> None:
        with self._stats_lock:
            self._retries[worker] += 1

    def _fold_transport_counters(self) -> None:
        """Fold new transport failures/recoveries into both accumulators."""
        failures, recoveries = self._transport.counters()
        for worker in range(len(failures)):
            new_failures = failures[worker] - self._seen_failures[worker]
            new_recoveries = recoveries[worker] - self._seen_recoveries[worker]
            if new_failures:
                self._pending.failures[worker] += new_failures  # repro-lint: disable=RPL002 -- private helper, every caller already holds _stats_lock
                self._lifetime.failures[worker] += new_failures
                self._seen_failures[worker] = failures[worker]
            if new_recoveries:
                self._pending.respawns[worker] += new_recoveries  # repro-lint: disable=RPL002 -- private helper, every caller already holds _stats_lock
                self._lifetime.respawns[worker] += new_recoveries
                self._seen_recoveries[worker] = recoveries[worker]

    def take_fanout_stats(self) -> ShardFanoutStats:
        """Drain the pending per-worker delta since the previous take.

        The engine calls this once per batch and folds the result into that
        batch's ``BatchQueryStats.fanout``; lifetime totals are unaffected.
        """
        with self._stats_lock:
            self._fold_transport_counters()
            taken = self._pending
            self._pending = ShardFanoutStats.sized(self.num_workers)
        if taken.shards_missing:
            taken.completeness = 1.0 - len(taken.shards_missing) / self.num_shards
        return taken

    def snapshot(self) -> dict[str, Any]:
        """Lifetime fan-out totals + per-worker transport health (/stats)."""
        with self._stats_lock:
            self._fold_transport_counters()
            lifetime = ShardFanoutStats()
            lifetime.add(self._lifetime)
        with self._stats_lock:
            retries = list(self._retries)
        health = self._transport.health()
        per_worker = []
        for worker in range(self.num_workers):
            entry = dict(health[worker]) if worker < len(health) else {"worker": worker}
            entry.update(
                requests=lifetime.requests[worker],
                rows=lifetime.rows[worker],
                seconds=lifetime.seconds[worker],
                failures=lifetime.failures[worker],
                respawns=lifetime.respawns[worker],
                aborts=lifetime.aborts[worker],
                retries=retries[worker],
                breaker=self._breakers[worker].snapshot(),
            )
            per_worker.append(entry)
        return {
            "transport": self._transport.kind,
            "workers": self.num_workers,
            "num_shards": self.num_shards,
            "per_worker": per_worker,
        }

    # ------------------------------------------------------------------ #
    # The probe fan-out itself
    # ------------------------------------------------------------------ #

    def probe_batch_routed(
        self,
        repetition: int,
        paths: Sequence[Path],
        keys: Sequence[int] | np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Route, fan out, and merge one probe batch for one repetition.

        Returns ``(ids, offsets, route)`` with the identical contract —
        including the *shard-level* route array — as the single-process
        :meth:`ShardedInvertedFilterIndex.probe_batch_routed`, so every
        stats counter derived from the route (``shards_probed``) agrees
        bit-for-bit across execution modes.
        """
        num_probes = len(paths)
        empty = np.empty(0, dtype=np.int64)
        if num_probes == 0:
            return empty, np.zeros(1, dtype=np.int64), np.zeros(0, dtype=np.int64)
        keys_arr = np.ascontiguousarray(keys, dtype=np.uint64)
        probe_items, probe_offsets = paths_to_csr(paths)
        probe_starts = probe_offsets[:-1]
        probe_lengths = np.diff(probe_offsets)
        route = route_keys(self._fences, keys_arr)
        worker_route = self._shard_to_worker[route]
        touched = np.unique(worker_route).tolist()
        # Snapshot the request scope once: the fan-out threads below must
        # all run under the scope of the batch that submitted them.
        allow_partial = self._scope_allow_partial
        deadline = self._scope_deadline

        def skip(worker: int, members: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
            """A degraded part: this worker's probes answer zero postings."""
            self._record_missing(route[members])
            return members, np.zeros(members.size, dtype=np.int64), empty

        def call(worker: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
            members = np.flatnonzero(worker_route == worker)
            if deadline is not None and time.time() >= deadline:
                self._record_abort(worker)
                raise DeadlineExceededError(
                    f"deadline expired before the fan-out to worker {worker}"
                )
            breaker = self._breakers[worker]
            if not breaker.acquire():
                if allow_partial:
                    return skip(worker, members)
                raise ShardUnavailableError(
                    f"shard worker {worker} circuit breaker is "
                    f"{breaker.state}: failing fast instead of waiting on a "
                    "known-bad worker",
                    retry_after=breaker.retry_after(),
                )
            if breaker.probing:
                # This admission is a half-open recovery probe.
                self._record_retry(worker)
            sub_keys = keys_arr[members]
            sub_lengths = probe_lengths[members]
            sub_items = _segment_gather(probe_items, probe_starts[members], sub_lengths)
            sub_offsets = np.zeros(members.size + 1, dtype=np.int64)
            np.cumsum(sub_lengths, out=sub_offsets[1:])
            started = time.perf_counter()
            try:
                lengths, gathered = self._transport.probe(
                    worker, repetition, sub_keys, sub_items, sub_offsets,
                    deadline=deadline,
                )
            except DeadlineExceededError:
                # The request's budget ran out, which says nothing about
                # the worker's health: release the breaker slot untouched.
                breaker.record_neutral()
                self._record_abort(worker)
                raise
            except ShardWorkerError:
                # The worker answered (an application error): it is alive,
                # so the incident streak resets before the error surfaces.
                breaker.record_success()
                raise
            except (ShardUnavailableError, protocol.ProtocolError) as error:
                breaker.record_failure()
                if allow_partial:
                    return skip(worker, members)
                if isinstance(error, ShardUnavailableError):
                    if error.retry_after is None:
                        error.retry_after = breaker.retry_after()
                    raise
                raise ShardUnavailableError(
                    f"shard worker {worker} answered an undecodable frame: "
                    f"{error}",
                    retry_after=breaker.retry_after(),
                ) from error
            breaker.record_success()
            self._record(
                worker, rows=int(gathered.size), seconds=time.perf_counter() - started
            )
            lengths = np.ascontiguousarray(lengths, dtype=np.int64)
            gathered = np.ascontiguousarray(gathered, dtype=np.int64)
            return members, lengths, gathered

        if self._pool is not None and len(touched) > 1:
            parts = list(self._pool.map(call, touched))
        else:
            parts = [call(worker) for worker in touched]

        per_probe = np.zeros(num_probes, dtype=np.int64)
        for members, lengths, _gathered in parts:
            per_probe[members] = lengths
        offsets = np.zeros(num_probes + 1, dtype=np.int64)
        np.cumsum(per_probe, out=offsets[1:])
        total = int(offsets[-1])
        route64 = route.astype(np.int64, copy=False)
        if total == 0:
            return empty, offsets, route64
        ids = np.empty(total, dtype=np.int64)
        for members, lengths, gathered in parts:
            if not gathered.size:
                continue
            starts = offsets[:-1][members]
            destination = np.arange(gathered.size, dtype=np.int64) + np.repeat(
                starts - (np.cumsum(lengths) - lengths), lengths
            )
            ids[destination] = gathered
        return ids, offsets, route64

    def contains(self, repetition: int, path: Path) -> bool:
        """Exact stored-path check, answered by the owning worker."""
        key = fold_path(path)
        shard = int(route_keys(self._fences, np.asarray([key], dtype=np.uint64))[0])
        worker = int(self._shard_to_worker[shard])
        return self._transport.contains(
            worker, repetition, key, np.asarray(path, dtype=np.int64)
        )

    def close(self) -> None:
        """Shut the transport down (idempotent); workers stop or disconnect."""
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=False)
        self._transport.close()


class RouterBackedFilterIndex:
    """One repetition of a routed index, speaking the engine's store contract.

    Drop-in for :class:`~repro.core.mmap_store.ShardedInvertedFilterIndex`
    on the read path; statistics answer from the manifest counts exactly as
    the mmap store does, and mutation raises the same read-only error
    family.  ``shard_workers`` arguments are accepted and ignored — the
    router's fan-out is process-level and always on.
    """

    is_sharded = True

    def __init__(
        self,
        router: ShardRouter,
        repetition: int,
        slot_counts: Sequence[int],
        posting_counts: Sequence[int],
        has_duplicate_keys: bool,
    ) -> None:
        self._router = router
        self._repetition = int(repetition)
        self._slot_counts = [int(count) for count in slot_counts]
        self._posting_counts = [int(count) for count in posting_counts]
        self._has_duplicate_keys = bool(has_duplicate_keys)

    @property
    def router(self) -> ShardRouter:
        return self._router

    @property
    def num_shards(self) -> int:
        return self._router.num_shards

    @property
    def fences(self) -> np.ndarray:
        return self._router.fences

    def count_probe_shards(self, keys: Sequence[int] | np.ndarray) -> int:
        """Distinct shards the given probe keys route to."""
        if len(keys) == 0:
            return 0
        return int(
            np.unique(route_keys(self._router.fences, np.asarray(keys, dtype=np.uint64))).size
        )

    def probe_batch(
        self,
        paths: Sequence[Path],
        keys: Sequence[int] | np.ndarray,
        shard_workers: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """:meth:`probe_batch_routed` without the per-probe shard routes."""
        ids, offsets, _route = self.probe_batch_routed(paths, keys, shard_workers)
        return ids, offsets

    def probe_batch_routed(
        self,
        paths: Sequence[Path],
        keys: Sequence[int] | np.ndarray,
        shard_workers: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Resolve many probes across the shard workers; CSR slices + route."""
        del shard_workers  # process-level fan-out is the router's own knob
        return self._router.probe_batch_routed(self._repetition, paths, keys)

    def lookup(self, path: Path) -> list[int]:
        """Vector ids that chose ``path`` (empty list if none)."""
        path = tuple(path)
        return self.lookup_keyed(path, fold_path(path))

    def lookup_keyed(self, path: Path, key: int) -> list[int]:
        """:meth:`lookup` with the path's folded key already in hand."""
        ids, _offsets = self.probe_batch([tuple(path)], [int(key)])
        return ids.tolist()

    def candidates(
        self, paths: Iterable[Path], keys: Sequence[int] | None = None
    ) -> Iterator[int]:
        """Yield every (vector id) collision for the given query filters."""
        paths = [tuple(path) for path in paths]
        if keys is None:
            keys = [fold_path(path) for path in paths]
        ids, _offsets = self.probe_batch(paths, keys)
        yield from ids.tolist()

    def __contains__(self, path: Path) -> bool:
        return self._router.contains(self._repetition, tuple(path))

    # ------------------------------------------------------------------ #
    # Mutation (rejected) and compaction (no-op)
    # ------------------------------------------------------------------ #

    def add(self, *_args: Any, **_kwargs: Any) -> int:
        raise MmapReadOnlyError(_ROUTER_READ_ONLY_ERROR)

    def add_many(self, *_args: Any, **_kwargs: Any) -> int:
        raise MmapReadOnlyError(_ROUTER_READ_ONLY_ERROR)

    def add_postings(self, *_args: Any, **_kwargs: Any) -> None:
        raise MmapReadOnlyError(_ROUTER_READ_ONLY_ERROR)

    def compact(self) -> None:
        """No-op: the workers' mapped shards are always compact."""

    # ------------------------------------------------------------------ #
    # Statistics and serialisation
    # ------------------------------------------------------------------ #

    @property
    def num_filters(self) -> int:
        """Number of distinct filters stored (from the manifest counts)."""
        return sum(self._slot_counts)

    @property
    def total_entries(self) -> int:
        """Total number of (filter, vector) postings (manifest counts)."""
        return sum(self._posting_counts)

    def __len__(self) -> int:
        return self.num_filters

    @property
    def has_duplicate_keys(self) -> bool:
        """Whether any shard carries a forced 64-bit key collision."""
        return self._has_duplicate_keys

    def to_state(self) -> dict[str, np.ndarray]:
        raise TypeError(
            "a router-backed index cannot be materialised: its shards live in "
            "worker processes; reload with load_index(path, mode='mmap') or "
            "mode='ram' to export or convert"
        )

    def to_sorted_state(self) -> tuple[dict[str, np.ndarray], np.ndarray]:
        raise TypeError(
            "a router-backed index cannot be materialised: its shards live in "
            "worker processes; reload with load_index(path, mode='mmap') or "
            "mode='ram' to export or convert"
        )

    def __repr__(self) -> str:
        return (
            f"RouterBackedFilterIndex(repetition={self._repetition}, "
            f"num_shards={self.num_shards}, workers={self._router.num_workers}, "
            f"num_filters={self.num_filters}, total_entries={self.total_entries})"
        )

"""Multi-process / multi-host shard serving on the v3 partition contract.

The v3 manifest's key-range fences are a partitioning contract: every
probe key routes to exactly one shard with one ``searchsorted``.  This
package turns that contract into an execution layer — a
:class:`~repro.dist.router.ShardRouter` that fans probe batches out to
shard workers over a pluggable transport (in-process, spawned processes,
TCP/unix sockets) and merges the returned CSR slices bit-identically to
single-process mmap mode.  See ``docs/distributed.md``.
"""

from repro.core.engine import DeadlineExceededError
from repro.dist import protocol
from repro.dist.breaker import CircuitBreaker
from repro.dist.faults import FAULT_PRESETS, FaultClause, FaultSpec, FaultyTransport
from repro.dist.loader import default_shard_procs, load_routed_index, shard_router_of
from repro.dist.router import RouterBackedFilterIndex, ShardRouter
from repro.dist.transport import (
    DEFAULT_TIMEOUT_SECONDS,
    InprocTransport,
    ShardTransport,
    ShardUnavailableError,
    ShardWorkerError,
    SocketTransport,
    SpawnTransport,
    build_transport,
    shard_to_worker_map,
    worker_shard_ranges,
)
from repro.dist.worker import ShardServer, ShardWorkerState, pipe_worker_main

__all__ = [
    "CircuitBreaker",
    "DEFAULT_TIMEOUT_SECONDS",
    "DeadlineExceededError",
    "FAULT_PRESETS",
    "FaultClause",
    "FaultSpec",
    "FaultyTransport",
    "InprocTransport",
    "RouterBackedFilterIndex",
    "ShardRouter",
    "ShardServer",
    "ShardTransport",
    "ShardUnavailableError",
    "ShardWorkerError",
    "ShardWorkerState",
    "SocketTransport",
    "SpawnTransport",
    "build_transport",
    "default_shard_procs",
    "load_routed_index",
    "pipe_worker_main",
    "protocol",
    "shard_router_of",
    "shard_to_worker_map",
    "worker_shard_ranges",
]

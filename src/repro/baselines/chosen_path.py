"""The Chosen Path baseline (Christiani & Pagh, STOC 2017).

Chosen Path solves the (b1, b2)-approximate Braun-Blanquet similarity search
problem with query exponent ``ρ = log(b1)/log(b2)``, which is optimal in the
worst case.  Its construction is the template the paper builds on, with two
crucial differences (paper footnote 7):

* the sampling threshold is the *constant* ``1/(b1 |x|)``, independent of the
  item identity and of the recursion depth, and
* the recursion depth is the *fixed* ``k = ceil(log n / log(1/b2))``
  independent of which items ended up on the path, so Chosen Path cannot stop
  early on paths through rare items.

Because of these differences its performance is the same regardless of the
skew of the data distribution — which is exactly the gap the paper closes.
The implementation reuses the shared :class:`~repro.core.engine.FilterEngine`
with a :class:`~repro.core.thresholds.ConstantThreshold` policy, a disabled
product stopping rule and ``collect_at_max_depth=True``.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from repro.core.engine import FilterEngine
from repro.core.stats import BatchQueryStats, BuildStats, QueryStats
from repro.core.thresholds import ConstantThreshold

SetLike = Iterable[int]


def chosen_path_depth(num_vectors: int, b2: float) -> int:
    """The fixed recursion depth ``k = ceil(ln n / ln(1/b2))``."""
    if num_vectors <= 1:
        return 1
    if not 0.0 < b2 < 1.0:
        raise ValueError(f"b2 must be in (0, 1), got {b2}")
    return max(1, int(math.ceil(math.log(num_vectors) / math.log(1.0 / b2))))


class ChosenPathIndex:
    """Worst-case optimal Chosen Path similarity search (baseline).

    Parameters
    ----------
    dimension:
        Universe size ``d`` (needed to size internal arrays; the structure
        itself is distribution-oblivious).
    b1:
        Similarity threshold of sought-for vectors.
    b2:
        The "far" similarity level of the (b1, b2)-approximate problem; the
        fixed depth is ``ceil(ln n / ln(1/b2))``.
    repetitions:
        Number of independent structures (``None`` = ``ceil(log2 n) + 1``).
    max_paths_per_vector:
        Safety cap on filters per vector.
    seed:
        Hash seed.
    """

    def __init__(
        self,
        dimension: int,
        b1: float,
        b2: float,
        repetitions: int | None = None,
        max_paths_per_vector: int | None = 50_000,
        seed: int = 0,
    ):
        if dimension <= 0:
            raise ValueError(f"dimension must be positive, got {dimension}")
        if not 0.0 < b1 <= 1.0:
            raise ValueError(f"b1 must be in (0, 1], got {b1}")
        if not 0.0 < b2 < 1.0:
            raise ValueError(f"b2 must be in (0, 1), got {b2}")
        if b2 >= b1:
            raise ValueError(f"b2 ({b2}) must be smaller than b1 ({b1})")
        self._dimension = int(dimension)
        self._b1 = float(b1)
        self._b2 = float(b2)
        self._repetitions = repetitions
        self._max_paths_per_vector = max_paths_per_vector
        self._seed = int(seed)
        self._engine: FilterEngine | None = None

    # ------------------------------------------------------------------ #
    # Properties
    # ------------------------------------------------------------------ #

    @property
    def dimension(self) -> int:
        """Universe size ``d`` the structure was sized for."""
        return self._dimension

    @property
    def b1(self) -> float:
        return self._b1

    @property
    def b2(self) -> float:
        return self._b2

    @property
    def rho(self) -> float:
        """The worst-case exponent ``log(b1)/log(b2)`` of Chosen Path."""
        return math.log(self._b1) / math.log(self._b2)

    @property
    def num_indexed(self) -> int:
        return len(self._engine.vectors) if self._engine is not None else 0

    @property
    def build_stats(self) -> BuildStats:
        self._require_built()
        assert self._engine is not None
        return self._engine.build_stats

    @property
    def total_stored_filters(self) -> int:
        self._require_built()
        assert self._engine is not None
        return self._engine.total_stored_filters

    # ------------------------------------------------------------------ #
    # Build / query
    # ------------------------------------------------------------------ #

    def build(self, collection: Iterable[SetLike]) -> BuildStats:
        """Index a dataset."""
        vectors = [frozenset(int(item) for item in members) for members in collection]
        self._engine = self._create_engine(max(len(vectors), 1))
        return self._engine.build(vectors)

    def _create_engine(self, num_vectors: int) -> FilterEngine:
        """A fresh, empty engine for a dataset of the given size.

        Exposed so that :mod:`repro.core.serialization` can reconstruct the
        engine from the saved configuration and restore the saved state
        directly, without a placeholder build.
        """
        depth = chosen_path_depth(num_vectors, self._b2)
        # The engine needs per-item probabilities only for its stopping rule,
        # which Chosen Path does not use; pass a uniform placeholder.
        placeholder = np.full(self._dimension, 0.5, dtype=np.float64)
        return FilterEngine(
            probabilities=placeholder,
            threshold_policy=ConstantThreshold(self._b1),
            acceptance_threshold=self._b1,
            num_vectors_hint=num_vectors,
            repetitions=self._repetitions,
            max_depth=depth,
            collect_at_max_depth=True,
            stop_product_enabled=False,
            max_paths_per_vector=self._max_paths_per_vector,
            seed=self._seed,
        )

    def query(self, query: SetLike, mode: str = "first") -> tuple[int | None, QueryStats]:
        """Return a stored vector with ``B(x, q) >= b1``, or ``None``."""
        self._require_built()
        assert self._engine is not None
        return self._engine.query(query, mode=mode)

    def query_batch(
        self,
        queries: Sequence[SetLike],
        mode: str = "first",
        batch_size: int | None = None,
        max_workers: int | None = None,
        deduplicate: bool = True,
        shard_workers: int | None = None,
        allow_partial: bool = False,
        deadline: float | None = None,
    ) -> tuple[list[int | None], BatchQueryStats]:
        """Batched queries through the shared vectorised engine subsystem."""
        self._require_built()
        assert self._engine is not None
        return self._engine.query_batch(
            queries,
            mode=mode,
            batch_size=batch_size,
            max_workers=max_workers,
            deduplicate=deduplicate,
            shard_workers=shard_workers,
            allow_partial=allow_partial,
            deadline=deadline,
        )

    def query_candidates(self, query: SetLike) -> tuple[set[int], QueryStats]:
        self._require_built()
        assert self._engine is not None
        return self._engine.query_candidates(query)

    def query_candidates_batch(
        self,
        queries: Sequence[SetLike],
        batch_size: int | None = None,
        max_workers: int | None = None,
        deduplicate: bool = True,
        shard_workers: int | None = None,
        allow_partial: bool = False,
        deadline: float | None = None,
    ) -> tuple[list[set[int]], BatchQueryStats]:
        """Batched candidate enumeration (used by the similarity join)."""
        self._require_built()
        assert self._engine is not None
        return self._engine.query_candidates_batch(
            queries,
            batch_size=batch_size,
            max_workers=max_workers,
            deduplicate=deduplicate,
            shard_workers=shard_workers,
            allow_partial=allow_partial,
            deadline=deadline,
        )

    def query_candidates_arrays_batch(
        self,
        queries: Sequence[SetLike],
        batch_size: int | None = None,
        max_workers: int | None = None,
        deduplicate: bool = True,
        shard_workers: int | None = None,
        allow_partial: bool = False,
        deadline: float | None = None,
    ) -> tuple[list[np.ndarray], BatchQueryStats]:
        """Batched candidate enumeration as sorted id arrays (read-only)."""
        self._require_built()
        assert self._engine is not None
        return self._engine.query_candidates_arrays_batch(
            queries,
            batch_size=batch_size,
            max_workers=max_workers,
            deduplicate=deduplicate,
            shard_workers=shard_workers,
            allow_partial=allow_partial,
            deadline=deadline,
        )

    @property
    def shard_workers(self) -> int | None:
        """Default per-probe shard fan-out (mmap-loaded indexes only)."""
        self._require_built()
        assert self._engine is not None
        return self._engine.shard_workers

    @shard_workers.setter
    def shard_workers(self, workers: int | None) -> None:
        self._require_built()
        assert self._engine is not None
        self._engine.shard_workers = workers

    def get_vector(self, vector_id: int) -> frozenset[int]:
        self._require_built()
        assert self._engine is not None
        return self._engine.vectors[vector_id]

    def insert(self, members: SetLike) -> int:
        """Insert one vector into the built index and return its id.

        Note that the fixed Chosen Path depth was derived from the dataset
        size at build time; as with the paper indexes, large growth warrants
        a rebuild.
        """
        self._require_built()
        assert self._engine is not None
        return self._engine.insert(members)

    def remove(self, vector_id: int) -> None:
        """Remove a stored vector by id (it stops appearing in results)."""
        self._require_built()
        assert self._engine is not None
        self._engine.remove(vector_id)

    def _require_built(self) -> None:
        if self._engine is None:
            raise RuntimeError("the index has not been built yet; call build() first")

    def __repr__(self) -> str:
        return (
            f"ChosenPathIndex(b1={self._b1:g}, b2={self._b2:g}, "
            f"indexed={self.num_indexed})"
        )

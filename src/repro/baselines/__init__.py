"""Baseline set-similarity search indexes the paper compares against.

* :class:`~repro.baselines.chosen_path.ChosenPathIndex` — the worst-case
  optimal Chosen Path structure of Christiani & Pagh (STOC 2017), which the
  paper generalises; it cannot exploit skew.
* :class:`~repro.baselines.prefix_filter.PrefixFilterIndex` — the exact
  prefix-filtering heuristic (Bayardo et al., WWW 2007) that dominates
  practice on highly skewed data but offers no worst-case guarantee.
* :class:`~repro.baselines.minhash.MinHashIndex` — classic MinHash LSH
  banding.
* :class:`~repro.baselines.brute_force.BruteForceIndex` — exact linear scan,
  used as ground truth by the evaluation harness.

All baselines expose the same ``build`` / ``query`` / ``query_candidates`` /
``get_vector`` surface as the paper's indexes so the harness and the join can
drive them interchangeably.
"""

from repro.baselines.brute_force import BruteForceIndex
from repro.baselines.chosen_path import ChosenPathIndex
from repro.baselines.minhash import MinHashIndex
from repro.baselines.prefix_filter import PrefixFilterIndex

__all__ = [
    "BruteForceIndex",
    "ChosenPathIndex",
    "MinHashIndex",
    "PrefixFilterIndex",
]

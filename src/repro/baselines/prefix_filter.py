"""Prefix filtering baseline (Bayardo, Ma, Srikant — WWW 2007).

Prefix filtering is the dominant *exact* heuristic for set similarity search
and join on skewed data, and the method the paper benchmarks its bounds
against in the extreme-skew regime.  The idea: order the universe by
increasing item frequency and index, for every set, only a short *prefix* of
its rarest items.  Two sets meeting the similarity threshold must share at
least one prefix item, so scanning the posting lists of the query's prefix
items finds every answer; candidates are then verified exactly.

For Braun-Blanquet threshold ``b1`` and a set of size ``m``, any qualifying
partner shares at least ``ceil(b1 * m)`` items with it, so indexing the first
``m - ceil(b1 * m) + 1`` items in ascending frequency order is sufficient for
correctness (the standard prefix-length argument).

The work of a query is dominated by the posting lists of its prefix items;
on heavily skewed data prefixes consist of very rare items and the method is
extremely fast, but with little skew the posting lists approach ``n`` and the
method degenerates to a near-linear scan (exactly the behaviour the paper
describes, e.g. the ``Ω(n^0.1)`` lower bounds in Section 7).
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from repro.core.batch import run_loop_batch
from repro.core.stats import BatchQueryStats, BuildStats, QueryStats
from repro.similarity.measures import braun_blanquet

SetLike = Iterable[int]


def prefix_length(set_size: int, threshold: float) -> int:
    """Number of (rarest-first) items that must be indexed for one set.

    ``|x| − ceil(b1 |x|) + 1``, clamped to ``[1, |x|]`` for non-empty sets.
    """
    if set_size <= 0:
        return 0
    if not 0.0 < threshold <= 1.0:
        raise ValueError(f"threshold must be in (0, 1], got {threshold}")
    required_overlap = int(math.ceil(threshold * set_size))
    return max(1, min(set_size, set_size - required_overlap + 1))


class PrefixFilterIndex:
    """Exact prefix-filtering index for Braun-Blanquet similarity search.

    Parameters
    ----------
    threshold:
        Braun-Blanquet similarity threshold ``b1``.
    item_frequencies:
        Optional global item frequencies used for the rarest-first ordering.
        When omitted, :meth:`build` computes empirical frequencies from the
        indexed data (the standard practice).
    """

    def __init__(
        self,
        threshold: float,
        item_frequencies: Sequence[float] | np.ndarray | None = None,
    ):
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"threshold must be in (0, 1], got {threshold}")
        self._threshold = float(threshold)
        self._given_frequencies = (
            np.asarray(item_frequencies, dtype=np.float64)
            if item_frequencies is not None
            else None
        )
        self._rank: dict[int, int] = {}
        self._postings: dict[int, list[int]] = {}
        self._vectors: list[frozenset[int]] = []

    # ------------------------------------------------------------------ #
    # Properties
    # ------------------------------------------------------------------ #

    @property
    def threshold(self) -> float:
        return self._threshold

    @property
    def num_indexed(self) -> int:
        return len(self._vectors)

    @property
    def total_postings(self) -> int:
        """Number of (prefix item, vector) entries — the index space usage."""
        return sum(len(vector_ids) for vector_ids in self._postings.values())

    # ------------------------------------------------------------------ #
    # Build
    # ------------------------------------------------------------------ #

    def _frequency_order(self, vectors: Sequence[frozenset[int]]) -> dict[int, int]:
        """Rank of every item in ascending frequency order (rarest first)."""
        if self._given_frequencies is not None:
            frequencies = self._given_frequencies
            dimension = frequencies.size
        else:
            dimension = 0
            for members in vectors:
                if members:
                    dimension = max(dimension, max(members) + 1)
            counts = np.zeros(dimension, dtype=np.int64)
            for members in vectors:
                for item in members:
                    counts[item] += 1
            frequencies = counts.astype(np.float64)
        order = np.argsort(frequencies, kind="stable")
        return {int(item): rank for rank, item in enumerate(order)}

    def _prefix_of(self, members: frozenset[int]) -> list[int]:
        """The prefix (rarest items first) of one set under the global order."""
        size = len(members)
        if size == 0:
            return []
        length = prefix_length(size, self._threshold)
        # Items missing from the rank map (out-of-vocabulary for supplied
        # frequencies) are treated as maximally rare: they sort first.
        ordered = sorted(members, key=lambda item: self._rank.get(item, -1))
        return ordered[:length]

    def build(self, collection: Iterable[SetLike]) -> BuildStats:
        """Index a dataset."""
        self._vectors = [frozenset(int(item) for item in members) for members in collection]
        self._rank = self._frequency_order(self._vectors)
        self._postings = {}
        stats = BuildStats(num_vectors=len(self._vectors), repetitions=1)
        for vector_id, members in enumerate(self._vectors):
            for item in self._prefix_of(members):
                self._postings.setdefault(item, []).append(vector_id)
                stats.total_filters += 1
        return stats

    # ------------------------------------------------------------------ #
    # Query
    # ------------------------------------------------------------------ #

    def query(self, query: SetLike, mode: str = "first") -> tuple[int | None, QueryStats]:
        """Return a stored vector with ``B(x, q) >= threshold``, or ``None``.

        Prefix filtering is exact: if a qualifying vector exists it is always
        found (recall 1), at the price of candidate lists that grow with the
        frequency of the query's prefix items.
        """
        if mode not in ("first", "best"):
            raise ValueError(f"mode must be 'first' or 'best', got {mode!r}")
        query_set = frozenset(int(item) for item in query)
        stats = QueryStats(repetitions_used=1)
        if not query_set or not self._vectors:
            return None, stats
        best_id: int | None = None
        best_similarity = -1.0
        evaluated: set[int] = set()
        prefix = self._prefix_of(query_set)
        stats.filters_generated = len(prefix)
        for item in prefix:
            for candidate_id in self._postings.get(item, []):
                stats.candidates_examined += 1
                if candidate_id in evaluated:
                    continue
                evaluated.add(candidate_id)
                stats.unique_candidates += 1
                similarity = braun_blanquet(self._vectors[candidate_id], query_set)
                stats.similarity_evaluations += 1
                if similarity >= self._threshold:
                    if mode == "first":
                        stats.found = True
                        return candidate_id, stats
                    if similarity > best_similarity:
                        best_similarity = similarity
                        best_id = candidate_id
        stats.found = best_id is not None
        return best_id, stats

    def query_candidates(self, query: SetLike) -> tuple[set[int], QueryStats]:
        """All candidates sharing a prefix item with the query."""
        query_set = frozenset(int(item) for item in query)
        stats = QueryStats(repetitions_used=1)
        candidates: set[int] = set()
        if not query_set or not self._vectors:
            return candidates, stats
        prefix = self._prefix_of(query_set)
        stats.filters_generated = len(prefix)
        for item in prefix:
            for candidate_id in self._postings.get(item, []):
                stats.candidates_examined += 1
                candidates.add(candidate_id)
        stats.unique_candidates = len(candidates)
        return candidates, stats

    def query_batch(
        self,
        queries: Sequence[SetLike],
        mode: str = "first",
        batch_size: int | None = None,
        max_workers: int | None = None,
        deduplicate: bool = True,
    ) -> tuple[list[int | None], BatchQueryStats]:
        """Batched queries (loop-based executor with query deduplication)."""
        del batch_size, max_workers
        return run_loop_batch(
            lambda query_set: self.query(query_set, mode=mode), queries, deduplicate
        )

    def query_candidates_batch(
        self,
        queries: Sequence[SetLike],
        batch_size: int | None = None,
        max_workers: int | None = None,
        deduplicate: bool = True,
    ) -> tuple[list[set[int]], BatchQueryStats]:
        """Batched candidate enumeration (loop-based executor)."""
        del batch_size, max_workers
        return run_loop_batch(self.query_candidates, queries, deduplicate)

    def get_vector(self, vector_id: int) -> frozenset[int]:
        return self._vectors[vector_id]

    def __repr__(self) -> str:
        return (
            f"PrefixFilterIndex(threshold={self._threshold:g}, "
            f"indexed={len(self._vectors)}, postings={self.total_postings})"
        )

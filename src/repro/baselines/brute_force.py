"""Exact brute-force similarity search (ground truth baseline).

The brute-force index stores the dataset as-is and answers every query by a
linear scan, evaluating the similarity of every stored vector.  It is the
reference the evaluation harness uses to compute ground truth and recall for
all approximate indexes, and the degenerate baseline that skew-exploiting
heuristics collapse to when there is no skew (Section 1 of the paper).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.batch import run_loop_batch
from repro.core.stats import BatchQueryStats, BuildStats, QueryStats
from repro.similarity.measures import braun_blanquet
from repro.similarity.predicates import SimilarityPredicate

SetLike = Iterable[int]


class BruteForceIndex:
    """Exact linear-scan index.

    Parameters
    ----------
    predicate:
        Similarity predicate used by :meth:`query`; defaults to
        Braun-Blanquet at threshold 0.5.
    """

    def __init__(self, predicate: SimilarityPredicate | None = None):
        self._predicate = predicate or SimilarityPredicate("braun_blanquet", 0.5)
        self._vectors: list[frozenset[int]] = []

    @property
    def predicate(self) -> SimilarityPredicate:
        return self._predicate

    @property
    def num_indexed(self) -> int:
        return len(self._vectors)

    def build(self, collection: Iterable[SetLike]) -> BuildStats:
        """Store the dataset.  Returns trivial build statistics."""
        self._vectors = [frozenset(int(item) for item in members) for members in collection]
        return BuildStats(num_vectors=len(self._vectors), total_filters=0, repetitions=1)

    def query(self, query: SetLike, mode: str = "best") -> tuple[int | None, QueryStats]:
        """Return the most similar stored vector meeting the predicate.

        ``mode`` is accepted for interface compatibility; a linear scan
        always examines everything, so ``"first"`` and ``"best"`` only differ
        in which qualifying vector is returned (first hit versus best hit).
        """
        if mode not in ("first", "best"):
            raise ValueError(f"mode must be 'first' or 'best', got {mode!r}")
        query_set = frozenset(int(item) for item in query)
        stats = QueryStats(repetitions_used=1)
        best_id: int | None = None
        best_similarity = -1.0
        for vector_id, stored in enumerate(self._vectors):
            stats.candidates_examined += 1
            stats.unique_candidates += 1
            similarity = self._predicate.similarity(stored, query_set)
            stats.similarity_evaluations += 1
            if similarity >= self._predicate.threshold:
                if mode == "first":
                    stats.found = True
                    return vector_id, stats
                if similarity > best_similarity:
                    best_similarity = similarity
                    best_id = vector_id
        stats.found = best_id is not None
        return best_id, stats

    def query_candidates(self, query: SetLike) -> tuple[set[int], QueryStats]:
        """Every stored id is a candidate (that is what brute force means)."""
        stats = QueryStats(
            candidates_examined=len(self._vectors),
            unique_candidates=len(self._vectors),
            repetitions_used=1,
        )
        return set(range(len(self._vectors))), stats

    def query_batch(
        self,
        queries: Sequence[SetLike],
        mode: str = "best",
        batch_size: int | None = None,
        max_workers: int | None = None,
        deduplicate: bool = True,
    ) -> tuple[list[int | None], BatchQueryStats]:
        """Batched queries (loop-based executor with query deduplication)."""
        del batch_size, max_workers
        return run_loop_batch(
            lambda query_set: self.query(query_set, mode=mode), queries, deduplicate
        )

    def query_candidates_batch(
        self,
        queries: Sequence[SetLike],
        batch_size: int | None = None,
        max_workers: int | None = None,
        deduplicate: bool = True,
    ) -> tuple[list[set[int]], BatchQueryStats]:
        """Batched candidate enumeration (every stored id, per query)."""
        del batch_size, max_workers
        return run_loop_batch(self.query_candidates, queries, deduplicate)

    def get_vector(self, vector_id: int) -> frozenset[int]:
        return self._vectors[vector_id]

    def all_matches(
        self, query: SetLike, predicate: SimilarityPredicate | None = None
    ) -> list[tuple[int, float]]:
        """All stored vectors meeting the predicate, sorted by similarity.

        This is the ground-truth primitive used by the evaluation metrics.
        """
        active_predicate = predicate or self._predicate
        query_set = frozenset(int(item) for item in query)
        matches = []
        for vector_id, stored in enumerate(self._vectors):
            similarity = active_predicate.similarity(stored, query_set)
            if similarity >= active_predicate.threshold:
                matches.append((vector_id, similarity))
        matches.sort(key=lambda entry: (-entry[1], entry[0]))
        return matches

    def nearest(self, query: SetLike) -> tuple[int | None, float]:
        """The single most similar stored vector (no threshold applied)."""
        query_set = frozenset(int(item) for item in query)
        best_id: int | None = None
        best_similarity = -1.0
        for vector_id, stored in enumerate(self._vectors):
            similarity = braun_blanquet(stored, query_set)
            if similarity > best_similarity:
                best_similarity = similarity
                best_id = vector_id
        return best_id, max(best_similarity, 0.0)

    def __repr__(self) -> str:
        return f"BruteForceIndex(indexed={len(self._vectors)}, predicate={self._predicate})"

"""MinHash LSH baseline (Broder 1997; banding scheme).

MinHash is the classical locality-sensitive hashing scheme for Jaccard
similarity: the probability that two sets have the same minimum hash under a
random permutation equals their Jaccard similarity.  The index concatenates
``rows_per_band`` MinHash values into a band key and uses ``num_bands``
independent bands; two sets become candidates when they agree on at least one
full band.

The paper notes (Section 1.2) that Chosen Path strictly improves on MinHash
for sparse data; the baseline is included so the empirical comparison covers
the standard practice as well.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.core.batch import run_loop_batch
from repro.core.stats import BatchQueryStats, BuildStats, QueryStats
from repro.hashing.minwise import MinwiseHasher
from repro.similarity.measures import braun_blanquet
from repro.similarity.predicates import jaccard_from_braun_blanquet

SetLike = Iterable[int]


def banding_parameters(
    jaccard_threshold: float, target_bands: int = 16, max_rows: int = 8
) -> tuple[int, int]:
    """Choose (num_bands, rows_per_band) for a Jaccard threshold.

    Uses the standard rule of thumb that the S-curve threshold of a banding
    scheme is approximately ``(1/bands)^(1/rows)``; rows are chosen so that
    this value is close to (and not above) the requested threshold.
    """
    if not 0.0 < jaccard_threshold < 1.0:
        raise ValueError(f"jaccard_threshold must be in (0, 1), got {jaccard_threshold}")
    if target_bands <= 0 or max_rows <= 0:
        raise ValueError("target_bands and max_rows must be positive")
    best_rows = 1
    for rows in range(1, max_rows + 1):
        curve_threshold = (1.0 / target_bands) ** (1.0 / rows)
        if curve_threshold <= jaccard_threshold:
            best_rows = rows
            break
        best_rows = rows
    return target_bands, best_rows


class MinHashIndex:
    """MinHash LSH index with banding.

    Parameters
    ----------
    threshold:
        Braun-Blanquet similarity threshold of the search problem; converted
        to the equivalent Jaccard threshold internally.
    num_bands, rows_per_band:
        Banding parameters; when omitted they are derived from the threshold
        via :func:`banding_parameters`.
    seed:
        Hash seed.
    """

    def __init__(
        self,
        threshold: float,
        num_bands: int | None = None,
        rows_per_band: int | None = None,
        seed: int = 0,
    ):
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"threshold must be in (0, 1], got {threshold}")
        self._threshold = float(threshold)
        jaccard_threshold = jaccard_from_braun_blanquet(min(threshold, 0.999))
        if num_bands is None or rows_per_band is None:
            derived_bands, derived_rows = banding_parameters(max(jaccard_threshold, 0.01))
            num_bands = num_bands if num_bands is not None else derived_bands
            rows_per_band = rows_per_band if rows_per_band is not None else derived_rows
        if num_bands <= 0 or rows_per_band <= 0:
            raise ValueError("num_bands and rows_per_band must be positive")
        self._num_bands = int(num_bands)
        self._rows_per_band = int(rows_per_band)
        self._hasher = MinwiseHasher(self._num_bands * self._rows_per_band, seed)
        self._buckets: list[dict[tuple[int, ...], list[int]]] = [
            {} for _ in range(self._num_bands)
        ]
        self._vectors: list[frozenset[int]] = []

    # ------------------------------------------------------------------ #
    # Properties
    # ------------------------------------------------------------------ #

    @property
    def threshold(self) -> float:
        return self._threshold

    @property
    def num_bands(self) -> int:
        return self._num_bands

    @property
    def rows_per_band(self) -> int:
        return self._rows_per_band

    @property
    def num_indexed(self) -> int:
        return len(self._vectors)

    def collision_probability(self, jaccard: float) -> float:
        """S-curve probability that a pair with the given Jaccard collides."""
        if not 0.0 <= jaccard <= 1.0:
            raise ValueError(f"jaccard must be in [0, 1], got {jaccard}")
        miss_one_band = 1.0 - jaccard**self._rows_per_band
        return 1.0 - miss_one_band**self._num_bands

    # ------------------------------------------------------------------ #
    # Build / query
    # ------------------------------------------------------------------ #

    def _band_keys(self, members: frozenset[int]) -> list[tuple[int, ...]]:
        signature = self._hasher.signature(sorted(members))
        keys = []
        for band in range(self._num_bands):
            start = band * self._rows_per_band
            keys.append(tuple(int(value) for value in signature[start : start + self._rows_per_band]))
        return keys

    def build(self, collection: Iterable[SetLike]) -> BuildStats:
        """Index a dataset."""
        self._vectors = [frozenset(int(item) for item in members) for members in collection]
        self._buckets = [{} for _ in range(self._num_bands)]
        stats = BuildStats(num_vectors=len(self._vectors), repetitions=self._num_bands)
        for vector_id, members in enumerate(self._vectors):
            if not members:
                continue
            for band, key in enumerate(self._band_keys(members)):
                self._buckets[band].setdefault(key, []).append(vector_id)
                stats.total_filters += 1
        return stats

    def query(self, query: SetLike, mode: str = "first") -> tuple[int | None, QueryStats]:
        """Return a stored vector with Braun-Blanquet similarity >= threshold."""
        if mode not in ("first", "best"):
            raise ValueError(f"mode must be 'first' or 'best', got {mode!r}")
        query_set = frozenset(int(item) for item in query)
        stats = QueryStats()
        if not query_set or not self._vectors:
            return None, stats
        best_id: int | None = None
        best_similarity = -1.0
        evaluated: set[int] = set()
        for band, key in enumerate(self._band_keys(query_set)):
            stats.filters_generated += 1
            stats.repetitions_used += 1
            for candidate_id in self._buckets[band].get(key, []):
                stats.candidates_examined += 1
                if candidate_id in evaluated:
                    continue
                evaluated.add(candidate_id)
                stats.unique_candidates += 1
                similarity = braun_blanquet(self._vectors[candidate_id], query_set)
                stats.similarity_evaluations += 1
                if similarity >= self._threshold:
                    if mode == "first":
                        stats.found = True
                        return candidate_id, stats
                    if similarity > best_similarity:
                        best_similarity = similarity
                        best_id = candidate_id
        stats.found = best_id is not None
        return best_id, stats

    def query_candidates(self, query: SetLike) -> tuple[set[int], QueryStats]:
        """All distinct candidates sharing at least one band with the query."""
        query_set = frozenset(int(item) for item in query)
        stats = QueryStats()
        candidates: set[int] = set()
        if not query_set or not self._vectors:
            return candidates, stats
        for band, key in enumerate(self._band_keys(query_set)):
            stats.filters_generated += 1
            stats.repetitions_used += 1
            for candidate_id in self._buckets[band].get(key, []):
                stats.candidates_examined += 1
                candidates.add(candidate_id)
        stats.unique_candidates = len(candidates)
        return candidates, stats

    def query_batch(
        self,
        queries: Sequence[SetLike],
        mode: str = "first",
        batch_size: int | None = None,
        max_workers: int | None = None,
        deduplicate: bool = True,
    ) -> tuple[list[int | None], BatchQueryStats]:
        """Batched queries (loop-based executor with query deduplication).

        ``batch_size`` and ``max_workers`` are accepted for interface
        compatibility with the engine-backed indexes; the banding structure
        has no filter generation to amortise, so only duplicate queries are
        deduplicated.
        """
        del batch_size, max_workers
        return run_loop_batch(
            lambda query_set: self.query(query_set, mode=mode), queries, deduplicate
        )

    def query_candidates_batch(
        self,
        queries: Sequence[SetLike],
        batch_size: int | None = None,
        max_workers: int | None = None,
        deduplicate: bool = True,
    ) -> tuple[list[set[int]], BatchQueryStats]:
        """Batched candidate enumeration (loop-based executor)."""
        del batch_size, max_workers
        return run_loop_batch(self.query_candidates, queries, deduplicate)

    def get_vector(self, vector_id: int) -> frozenset[int]:
        return self._vectors[vector_id]

    def __repr__(self) -> str:
        return (
            f"MinHashIndex(threshold={self._threshold:g}, bands={self._num_bands}, "
            f"rows={self._rows_per_band}, indexed={len(self._vectors)})"
        )


def estimate_rho_minhash(b1_jaccard: float, b2_jaccard: float) -> float:
    """The textbook MinHash exponent ``ρ = log(b1) / log(b2)`` on Jaccard values."""
    if not 0.0 < b2_jaccard < b1_jaccard <= 1.0:
        raise ValueError("need 0 < b2 < b1 <= 1 for a meaningful exponent")
    if b1_jaccard == 1.0:
        return 0.0
    return math.log(b1_jaccard) / math.log(b2_jaccard)

"""Quality and work metrics for similarity-search experiments.

The paper's guarantees have two sides: a *correctness* side (the planted /
similar vector is returned with good probability) and a *work* side (the
number of filters and candidates scales as ``n^ρ``).  The metrics here
quantify both from the raw per-query results produced by the harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.stats import QueryStats


def recall_at_one(returned: Sequence[int | None], expected: Sequence[int]) -> float:
    """Fraction of queries whose returned id matches the expected id.

    Parameters
    ----------
    returned:
        Per-query returned vector id (``None`` for "not found").
    expected:
        Per-query planted / ground-truth id.
    """
    if len(returned) != len(expected):
        raise ValueError(
            f"returned and expected must have equal length, got {len(returned)} and "
            f"{len(expected)}"
        )
    if not returned:
        return 0.0
    hits = sum(
        1 for got, want in zip(returned, expected) if got is not None and got == want
    )
    return hits / len(returned)


def success_rate(returned: Sequence[int | None]) -> float:
    """Fraction of queries that returned *some* vector (found anything)."""
    if not returned:
        return 0.0
    return sum(1 for got in returned if got is not None) / len(returned)


def acceptable_rate(
    returned: Sequence[int | None],
    acceptable: Sequence[set[int]],
) -> float:
    """Fraction of queries whose returned id belongs to an acceptable set.

    This is the correctness notion of the adversarial guarantee (Theorem 2):
    any vector meeting the similarity threshold is a valid answer, not only
    the planted one.
    """
    if len(returned) != len(acceptable):
        raise ValueError(
            f"returned and acceptable must have equal length, got {len(returned)} and "
            f"{len(acceptable)}"
        )
    if not returned:
        return 0.0
    hits = sum(
        1
        for got, valid in zip(returned, acceptable)
        if got is not None and got in valid
    )
    return hits / len(returned)


@dataclass(frozen=True)
class WorkSummary:
    """Summary statistics of the per-query work of one method."""

    mean_candidates: float
    median_candidates: float
    p90_candidates: float
    mean_filters: float
    mean_total_work: float
    max_total_work: float

    def as_dict(self) -> dict[str, float]:
        return {
            "mean_candidates": self.mean_candidates,
            "median_candidates": self.median_candidates,
            "p90_candidates": self.p90_candidates,
            "mean_filters": self.mean_filters,
            "mean_total_work": self.mean_total_work,
            "max_total_work": self.max_total_work,
        }


def work_summary(stats: Sequence[QueryStats]) -> WorkSummary:
    """Aggregate work statistics over a batch of queries."""
    if not stats:
        return WorkSummary(0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    candidates = np.asarray([entry.candidates_examined for entry in stats], dtype=np.float64)
    filters = np.asarray([entry.filters_generated for entry in stats], dtype=np.float64)
    total = candidates + filters
    return WorkSummary(
        mean_candidates=float(candidates.mean()),
        median_candidates=float(np.median(candidates)),
        p90_candidates=float(np.percentile(candidates, 90)),
        mean_filters=float(filters.mean()),
        mean_total_work=float(total.mean()),
        max_total_work=float(total.max()),
    )


def empirical_exponent(work: float, num_vectors: int) -> float:
    """The exponent ``ρ̂ = log(work)/log(n)`` implied by a measured work figure.

    A convenient way to compare a measured candidate count against the
    analytic ``n^ρ`` predictions: if the measurement behaves like ``n^ρ`` the
    returned value approaches ρ as n grows.
    """
    if num_vectors <= 1:
        raise ValueError(f"num_vectors must be at least 2, got {num_vectors}")
    if work <= 1.0:
        return 0.0
    return float(np.log(work) / np.log(num_vectors))

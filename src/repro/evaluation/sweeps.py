"""Parameter grid helpers for experiment sweeps."""

from __future__ import annotations

from itertools import product
from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np


def linear_grid(start: float, stop: float, num_points: int) -> list[float]:
    """Evenly spaced grid including both endpoints."""
    if num_points <= 0:
        raise ValueError(f"num_points must be positive, got {num_points}")
    if num_points == 1:
        return [float(start)]
    return [float(value) for value in np.linspace(start, stop, num_points)]


def geometric_grid(start: float, stop: float, num_points: int) -> list[float]:
    """Geometrically spaced grid including both endpoints (both must be positive)."""
    if num_points <= 0:
        raise ValueError(f"num_points must be positive, got {num_points}")
    if start <= 0.0 or stop <= 0.0:
        raise ValueError("geometric grids require positive endpoints")
    if num_points == 1:
        return [float(start)]
    return [float(value) for value in np.geomspace(start, stop, num_points)]


def parameter_product(grid: Mapping[str, Sequence[object]]) -> Iterator[dict[str, object]]:
    """Cartesian product of named parameter grids, as dictionaries.

    Example
    -------
    ``parameter_product({"alpha": [0.5, 0.7], "n": [100, 1000]})`` yields four
    dictionaries covering every combination, in a deterministic order.
    """
    names = list(grid)
    for values in product(*(grid[name] for name in names)):
        yield dict(zip(names, values))


def probability_sweep(
    minimum: float, maximum: float, num_points: int, spacing: str = "linear"
) -> list[float]:
    """Grid of probabilities in ``(0, 1)``, clipped away from the endpoints."""
    if spacing not in ("linear", "geometric"):
        raise ValueError(f"spacing must be 'linear' or 'geometric', got {spacing!r}")
    low = max(minimum, 1e-9)
    high = min(maximum, 1.0 - 1e-9)
    if low > high:
        raise ValueError(f"empty probability range [{minimum}, {maximum}]")
    grid = (
        linear_grid(low, high, num_points)
        if spacing == "linear"
        else geometric_grid(low, high, num_points)
    )
    return [min(max(value, 1e-9), 1.0 - 1e-9) for value in grid]


def dataset_size_sweep(minimum: int, maximum: int, num_points: int) -> list[int]:
    """Geometric grid of dataset sizes, deduplicated and sorted."""
    values = geometric_grid(float(minimum), float(maximum), num_points)
    sizes = sorted({max(1, int(round(value))) for value in values})
    return sizes


def sweep_results_to_rows(
    parameters: Iterable[Mapping[str, object]],
    results: Iterable[Mapping[str, object]],
) -> list[dict[str, object]]:
    """Merge parameter dictionaries with result dictionaries row by row."""
    rows = []
    for parameter_row, result_row in zip(parameters, results):
        merged: dict[str, object] = dict(parameter_row)
        merged.update(result_row)
        rows.append(merged)
    return rows

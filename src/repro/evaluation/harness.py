"""Workload runner: build an index, run queries, collect results.

The harness is deliberately index-agnostic: anything exposing the common
``build`` / ``query`` surface (the paper's two indexes, the three baselines)
can be driven by :func:`run_workload`, so comparative experiments are a loop
over index factories.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Protocol, Sequence

from repro.core.stats import BatchQueryStats, QueryStats
from repro.evaluation.metrics import (
    WorkSummary,
    acceptable_rate,
    recall_at_one,
    success_rate,
    work_summary,
)

SetLike = Iterable[int]


class SearchIndex(Protocol):
    """The minimal index interface the harness drives."""

    def build(self, collection: Iterable[SetLike]):  # pragma: no cover - protocol
        ...

    def query(self, query: SetLike, mode: str = "first"):  # pragma: no cover - protocol
        ...


@dataclass
class QueryWorkload:
    """A batch of queries with optional ground truth.

    Attributes
    ----------
    queries:
        The query sets.
    expected_ids:
        For planted workloads, the id of the vector each query is correlated
        with (used for recall@1).
    acceptable_ids:
        For adversarial workloads, the full set of acceptable answers per
        query (any vector meeting the similarity threshold).
    """

    queries: list[frozenset[int]]
    expected_ids: list[int] | None = None
    acceptable_ids: list[set[int]] | None = None

    def __post_init__(self) -> None:
        self.queries = [frozenset(int(item) for item in query) for query in self.queries]
        if self.expected_ids is not None and len(self.expected_ids) != len(self.queries):
            raise ValueError("expected_ids must have one entry per query")
        if self.acceptable_ids is not None and len(self.acceptable_ids) != len(self.queries):
            raise ValueError("acceptable_ids must have one entry per query")

    def __len__(self) -> int:
        return len(self.queries)


@dataclass
class ExperimentResult:
    """Everything measured while running one workload against one index."""

    method: str
    num_indexed: int
    num_queries: int
    build_seconds: float
    query_seconds: float
    returned_ids: list[int | None] = field(default_factory=list)
    query_stats: list[QueryStats] = field(default_factory=list)
    recall: float | None = None
    success: float = 0.0
    acceptable: float | None = None
    work: WorkSummary | None = None
    total_stored_filters: int | None = None
    batch_stats: BatchQueryStats | None = None

    def as_row(self) -> dict[str, object]:
        """Flat dictionary suitable for the text-table reporter."""
        row: dict[str, object] = {
            "method": self.method,
            "n": self.num_indexed,
            "queries": self.num_queries,
            "build_s": round(self.build_seconds, 4),
            "query_s": round(self.query_seconds, 4),
            "success": round(self.success, 3),
        }
        if self.recall is not None:
            row["recall@1"] = round(self.recall, 3)
        if self.acceptable is not None:
            row["acceptable"] = round(self.acceptable, 3)
        if self.work is not None:
            row["mean_candidates"] = round(self.work.mean_candidates, 1)
            row["mean_filters"] = round(self.work.mean_filters, 1)
        if self.total_stored_filters is not None:
            row["stored_filters"] = self.total_stored_filters
        if self.batch_stats is not None:
            row["dedupe_rate"] = round(self.batch_stats.dedupe_hit_rate, 3)
        return row


def run_workload(
    index_factory: Callable[[], SearchIndex],
    dataset: Sequence[SetLike],
    workload: QueryWorkload,
    method_name: str,
    query_mode: str = "first",
    batch_size: int | None = None,
    max_workers: int | None = None,
) -> ExperimentResult:
    """Build an index over ``dataset`` and run every query of the workload.

    Parameters
    ----------
    index_factory:
        Zero-argument callable constructing a fresh (unbuilt) index.
    dataset:
        The collection to index.
    workload:
        Queries plus optional ground truth.
    method_name:
        Label recorded in the result (used by the reporters).
    query_mode:
        Forwarded to the index's ``query`` method.
    batch_size:
        When set and the index exposes ``query_batch``, the workload runs
        through the batched subsystem in chunks of this size (the results
        are identical to the per-query loop); the returned result then
        carries the batch statistics.
    max_workers:
        Optional worker-pool fan-out for the batched execution.
    """
    index = index_factory()
    build_start = time.perf_counter()
    index.build(dataset)
    build_seconds = time.perf_counter() - build_start

    returned: list[int | None] = []
    stats: list[QueryStats] = []
    batch_stats: BatchQueryStats | None = None
    query_start = time.perf_counter()
    if batch_size is not None and hasattr(index, "query_batch"):
        returned, batch_stats = index.query_batch(
            workload.queries,
            mode=query_mode,
            batch_size=batch_size,
            max_workers=max_workers,
        )
        stats = batch_stats.per_query
    else:
        for query in workload.queries:
            result_id, query_stat = index.query(query, mode=query_mode)
            returned.append(result_id)
            stats.append(query_stat)
    query_seconds = time.perf_counter() - query_start

    result = ExperimentResult(
        method=method_name,
        num_indexed=len(dataset),
        num_queries=len(workload),
        build_seconds=build_seconds,
        query_seconds=query_seconds,
        returned_ids=returned,
        query_stats=stats,
        success=success_rate(returned),
        work=work_summary(stats),
        total_stored_filters=getattr(index, "total_stored_filters", None),
        batch_stats=batch_stats,
    )
    if workload.expected_ids is not None:
        result.recall = recall_at_one(returned, workload.expected_ids)
    if workload.acceptable_ids is not None:
        result.acceptable = acceptable_rate(returned, workload.acceptable_ids)
    return result


def compare_indexes(
    factories: dict[str, Callable[[], SearchIndex]],
    dataset: Sequence[SetLike],
    workload: QueryWorkload,
    query_mode: str = "first",
    batch_size: int | None = None,
    max_workers: int | None = None,
) -> list[ExperimentResult]:
    """Run the same workload against several index factories.

    Returns one :class:`ExperimentResult` per method, in the iteration order
    of the ``factories`` mapping.  ``batch_size`` (and optionally
    ``max_workers``) route the workload through each index's batched
    execution path where available.
    """
    return [
        run_workload(
            factory,
            dataset,
            workload,
            method_name=name,
            query_mode=query_mode,
            batch_size=batch_size,
            max_workers=max_workers,
        )
        for name, factory in factories.items()
    ]

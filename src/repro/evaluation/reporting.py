"""Plain-text rendering of experiment results.

The benchmark harness prints its outputs as fixed-width text tables and
series (no plotting dependencies are available offline); the formats mirror
the paper's Table 1 rows and the Figure 1 / Figure 2 series so that a reader
can compare shapes directly against the paper.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence


def _format_value(value: object, precision: int) -> str:
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    precision: int = 3,
    title: str | None = None,
) -> str:
    """Render a list of dictionaries as a fixed-width text table.

    Parameters
    ----------
    rows:
        The table rows; missing keys render as empty cells.
    columns:
        Column order; defaults to the keys of the first row.
    precision:
        Decimal places used for float values.
    title:
        Optional title line printed above the table.
    """
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered_rows = [
        [_format_value(row.get(column, ""), precision) for column in columns] for row in rows
    ]
    widths = [
        max(len(str(column)), max(len(rendered[index]) for rendered in rendered_rows))
        for index, column in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(str(column).ljust(width) for column, width in zip(columns, widths))
    lines.append(header)
    lines.append("  ".join("-" * width for width in widths))
    for rendered in rendered_rows:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(rendered, widths)))
    return "\n".join(lines)


def format_series(
    x_values: Sequence[float],
    series: Mapping[str, Sequence[float]],
    x_label: str = "x",
    precision: int = 3,
    title: str | None = None,
    max_rows: int | None = None,
) -> str:
    """Render one or more named series over a shared x-axis as a table.

    This is how the figure benches print their curves (one row per x value,
    one column per line of the figure).
    """
    for name, values in series.items():
        if len(values) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(values)} values but there are "
                f"{len(x_values)} x values"
            )
    indices = range(len(x_values))
    if max_rows is not None and len(x_values) > max_rows:
        step = max(1, len(x_values) // max_rows)
        indices = range(0, len(x_values), step)
    rows = []
    for index in indices:
        row: dict[str, object] = {x_label: float(x_values[index])}
        for name, values in series.items():
            row[name] = float(values[index])
        rows.append(row)
    return format_table(rows, precision=precision, title=title)


def format_comparison_summary(rows: Iterable[Mapping[str, object]], title: str) -> str:
    """Convenience wrapper used by the method-comparison benches."""
    return format_table(list(rows), title=title)


def indent(text: str, prefix: str = "    ") -> str:
    """Indent every line of a block of text (for nested reports)."""
    return "\n".join(prefix + line for line in text.splitlines())

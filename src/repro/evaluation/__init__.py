"""Evaluation harness: experiments, metrics, sweeps and reporting.

The subpackage turns the library into the paper's evaluation: the
``experiments`` package contains one module per table/figure (each exposing a
``run()`` function returning plain data structures), ``harness`` runs
build/query workloads against any index, ``metrics`` computes recall and
work statistics, ``sweeps`` provides parameter grids, and ``reporting``
renders results as fixed-width text tables in the same shape as the paper's
tables and figure series.
"""

from repro.evaluation.harness import ExperimentResult, QueryWorkload, run_workload
from repro.evaluation.metrics import recall_at_one, success_rate, work_summary
from repro.evaluation.reporting import format_series, format_table
from repro.evaluation.sweeps import geometric_grid, linear_grid

__all__ = [
    "ExperimentResult",
    "QueryWorkload",
    "run_workload",
    "recall_at_one",
    "success_rate",
    "work_summary",
    "format_series",
    "format_table",
    "geometric_grid",
    "linear_grid",
]

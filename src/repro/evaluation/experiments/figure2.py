"""Figure 2: item-frequency profiles of the benchmark(-like) datasets.

The paper plots, for each of the ten Mann et al. datasets, the sorted item
frequencies ``p_j`` in two normalisations: ``y = 1 + log_n p_j`` against
``x = j/d`` (left plot) and against ``x = log_d j`` (right plot).  All real
datasets show significant skew; a pure Zipfian distribution would be a
straight line on the right plot, and the observed curves are approximately
"piecewise Zipfian".

Real datasets are not available offline, so the experiment profiles the
synthetic stand-ins from :mod:`repro.data.generators`, which were
parameterised to reproduce that shape (that module's docstring records the
substitution rationale and the per-dataset profiles).
"""

from __future__ import annotations

from typing import Sequence

from repro.data.analysis import FrequencyProfile, frequency_profile
from repro.data.generators import all_benchmark_names, generate_benchmark_like
from repro.evaluation.reporting import format_series


def run(
    dataset_names: Sequence[str] | None = None,
    scale: float = 0.25,
    seed: int = 0,
    num_points: int = 40,
) -> dict[str, FrequencyProfile]:
    """Generate each dataset and compute its Figure 2 frequency profile.

    Parameters
    ----------
    dataset_names:
        Datasets to include (default: all ten profiles).
    scale:
        Size multiplier for the synthetic generators (0.25 keeps the full
        sweep under a few seconds).
    seed:
        Generation seed.
    num_points:
        Number of points retained per curve (subsampled evenly).
    """
    names = list(dataset_names) if dataset_names is not None else all_benchmark_names()
    profiles: dict[str, FrequencyProfile] = {}
    for name in names:
        collection = generate_benchmark_like(name, scale=scale, seed=seed)
        profiles[name] = frequency_profile(collection, name=name).sampled(num_points)
    return profiles


def render(profiles: dict[str, FrequencyProfile], axis: str = "relative") -> str:
    """Format the profiles as a text series.

    Parameters
    ----------
    profiles:
        Output of :func:`run`.
    axis:
        ``"relative"`` uses ``x = j/d`` (left plot of Figure 2); ``"log"``
        uses ``x = log_d j`` (right plot).
    """
    if axis not in ("relative", "log"):
        raise ValueError(f"axis must be 'relative' or 'log', got {axis!r}")
    if not profiles:
        return "(no profiles)"
    blocks = []
    for name, profile in profiles.items():
        x_values = (
            profile.relative_rank if axis == "relative" else profile.log_rank
        )
        blocks.append(
            format_series(
                [float(value) for value in x_values],
                {"1 + log_n p_j": [float(v) for v in profile.normalized_log_frequency]},
                x_label="j/d" if axis == "relative" else "log_d j",
                title=f"Figure 2 ({axis} axis) — {name}",
                max_rows=12,
            )
        )
    return "\n\n".join(blocks)


def skew_indicators(profiles: dict[str, FrequencyProfile]) -> list[dict[str, object]]:
    """Scalar indicators showing every dataset is skewed (used by tests).

    For each dataset we report the y-value (``1 + log_n p_j``) at the head,
    the 10th percentile rank, and the tail of the curve.  Skew shows up as a
    large drop from head to tail; a flat (non-skewed) profile would have
    nearly equal values.
    """
    rows: list[dict[str, object]] = []
    for name, profile in profiles.items():
        y = profile.normalized_log_frequency
        if y.size == 0:
            continue
        head = float(y[0])
        tenth = float(y[max(0, int(0.1 * (y.size - 1)))])
        tail = float(y[-1])
        rows.append(
            {
                "dataset": name,
                "head": head,
                "p10_rank": tenth,
                "tail": tail,
                "drop": head - tail,
            }
        )
    return rows

"""End-to-end empirical comparison validating the analytic claims.

The paper's evaluation is analytic (ρ values); this experiment closes the
loop by actually building every index on synthetic data drawn from the
paper's model and measuring recall and work:

* On a **skewed** two-block distribution, the correlated skew-adaptive index
  should examine markedly fewer candidates than the Chosen Path baseline at
  comparable recall, and prefix filtering should sit between them (exact but
  touching many candidates through the frequent items).
* On a **uniform** (no-skew) distribution the skew-adaptive and Chosen Path
  structures should do essentially the same amount of work — there is no
  skew to exploit — matching the paper's claim that the method degrades
  gracefully to Chosen Path.

Work is measured in candidates examined (the machine-independent unit the
analysis bounds), with wall-clock timings reported as secondary output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.baselines.brute_force import BruteForceIndex
from repro.baselines.chosen_path import ChosenPathIndex
from repro.baselines.prefix_filter import PrefixFilterIndex
from repro.core.correlated_index import CorrelatedIndex
from repro.core.config import CorrelatedIndexConfig, SkewAdaptiveIndexConfig
from repro.core.skewed_index import SkewAdaptiveIndex
from repro.data.distributions import ItemDistribution
from repro.data.families import two_block_probabilities, uniform_probabilities
from repro.evaluation.harness import QueryWorkload, compare_indexes
from repro.evaluation.reporting import format_table
from repro.hashing.random_source import RandomSource
from repro.similarity.predicates import SimilarityPredicate


@dataclass(frozen=True)
class EmpiricalSetting:
    """One synthetic instance of the end-to-end comparison."""

    name: str
    distribution: ItemDistribution
    num_vectors: int
    num_queries: int
    alpha: float
    seed: int


def default_settings(
    num_vectors: int = 400,
    num_queries: int = 40,
    alpha: float = 2.0 / 3.0,
    seed: int = 0,
) -> list[EmpiricalSetting]:
    """The two canonical settings: skewed two-block and uniform (no skew).

    The probability levels are chosen so the expected set size is around 30
    in both cases (comfortably above ``log n``), with the skewed instance
    splitting its mass between frequent and rare items.
    """
    skewed = ItemDistribution(
        np.concatenate(
            [
                two_block_probabilities(80, 0.25, 0.25 / 8.0),
                np.full(1500, 8.0 / 1500.0),
            ]
        )
    )
    uniform = ItemDistribution(uniform_probabilities(300, 0.1))
    return [
        EmpiricalSetting("skewed", skewed, num_vectors, num_queries, alpha, seed),
        EmpiricalSetting("uniform", uniform, num_vectors, num_queries, alpha, seed + 1),
    ]


def build_planted_workload(
    setting: EmpiricalSetting,
) -> tuple[list[frozenset[int]], QueryWorkload]:
    """Sample a dataset and α-correlated queries targeting known vectors."""
    source = RandomSource(setting.seed)
    distribution = setting.distribution
    dataset = distribution.sample_many(setting.num_vectors, source.child("data").generator)
    for index, vector in enumerate(dataset):
        if not vector:
            dataset[index] = distribution.sample(source.child("refill", index).generator)
    target_ids = source.child("targets").generator.choice(
        setting.num_vectors, size=setting.num_queries, replace=False
    )
    queries = []
    expected = []
    for query_number, target_id in enumerate(int(i) for i in target_ids):
        query = distribution.sample_correlated(
            dataset[target_id], setting.alpha, source.child("query", query_number).generator
        )
        queries.append(query)
        expected.append(target_id)
    return dataset, QueryWorkload(queries=queries, expected_ids=expected)


def index_factories(
    setting: EmpiricalSetting,
    repetitions: int = 6,
) -> dict[str, Callable[[], object]]:
    """Factories for every compared method, configured consistently.

    The acceptance threshold of the threshold-based methods is ``α/1.3``
    (Lemma 10); Chosen Path additionally needs the "far" similarity level
    ``b2``, for which the distribution's expected uncorrelated similarity is
    used.
    """
    alpha = setting.alpha
    b1 = alpha / 1.3
    b2 = max(min(setting.distribution.expected_similarity(), b1 * 0.9), 1e-3)
    distribution = setting.distribution
    dimension = distribution.dimension
    num_vectors = setting.num_vectors

    def correlated() -> CorrelatedIndex:
        return CorrelatedIndex(
            distribution,
            config=CorrelatedIndexConfig(alpha=alpha, repetitions=repetitions, seed=setting.seed),
        )

    def adversarial() -> SkewAdaptiveIndex:
        return SkewAdaptiveIndex(
            distribution,
            config=SkewAdaptiveIndexConfig(b1=b1, repetitions=repetitions, seed=setting.seed),
        )

    def chosen_path() -> ChosenPathIndex:
        return ChosenPathIndex(
            dimension, b1=b1, b2=b2, repetitions=repetitions, seed=setting.seed
        )

    def prefix_filter() -> PrefixFilterIndex:
        return PrefixFilterIndex(b1, item_frequencies=distribution.probabilities)

    def brute_force() -> BruteForceIndex:
        return BruteForceIndex(SimilarityPredicate("braun_blanquet", b1))

    del num_vectors
    return {
        "correlated (ours)": correlated,
        "adversarial (ours)": adversarial,
        "chosen_path": chosen_path,
        "prefix_filter": prefix_filter,
        "brute_force": brute_force,
    }


def run(
    num_vectors: int = 400,
    num_queries: int = 40,
    alpha: float = 2.0 / 3.0,
    seed: int = 0,
    repetitions: int = 6,
    settings: Sequence[EmpiricalSetting] | None = None,
) -> list[dict[str, object]]:
    """Run the full comparison and return one row per (setting, method)."""
    if settings is None:
        settings = default_settings(num_vectors, num_queries, alpha, seed)
    rows: list[dict[str, object]] = []
    for setting in settings:
        dataset, workload = build_planted_workload(setting)
        factories = index_factories(setting, repetitions=repetitions)
        results = compare_indexes(factories, dataset, workload, query_mode="first")
        for result in results:
            row = result.as_row()
            row["setting"] = setting.name
            rows.append(row)
    return rows


def render(rows: list[dict[str, object]]) -> str:
    columns = [
        "setting",
        "method",
        "recall@1",
        "success",
        "mean_candidates",
        "mean_filters",
        "build_s",
        "query_s",
    ]
    return format_table(
        rows,
        columns=columns,
        title=(
            "Empirical comparison — recall and work of every method on skewed vs "
            "uniform synthetic data (candidates examined is the paper's work unit)"
        ),
    )

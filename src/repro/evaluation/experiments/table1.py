"""Table 1: how far the benchmark datasets deviate from item independence.

For each dataset the paper reports the ratio between the observed expected
number of sets containing a random item subset ``I`` and the number
predicted under independence (``n ∏_{j∈I} p_j``), for ``|I| = 2`` and
``|I| = 3``.  Ratios close to 1 mean the independence assumption of the
model is reasonable; the paper finds mild violations for most datasets and
strong ones for SPOTIFY and KOSARAK.

The experiment runs the same statistic on the synthetic benchmark-like
datasets.  Absolute values depend on the generators' dependence parameters,
but the qualitative conclusions are preserved: every ratio is at least 1,
triples deviate more than pairs, and the dependence-heavy profiles (SPOTIFY,
KOSARAK) stand out.  The paper's published values are included in the output
for side-by-side comparison.
"""

from __future__ import annotations

from typing import Sequence

from repro.data.analysis import independence_ratio
from repro.data.generators import all_benchmark_names, generate_benchmark_like
from repro.evaluation.reporting import format_table

#: The paper's published Table 1 values (|I| = 2, |I| = 3) per dataset.
PAPER_TABLE1: dict[str, tuple[float, float]] = {
    "AOL": (1.2, 3.9),
    "BMS-POS": (1.5, 3.9),
    "DBLP": (1.4, 2.3),
    "ENRON": (2.9, 21.8),
    "FLICKR": (1.7, 4.9),
    "KOSARAK": (7.1, 269.4),
    "LIVEJOURNAL": (2.3, 7.3),
    "NETFLIX": (3.1, 24.0),
    "ORKUT": (4.0, 37.9),
    "SPOTIFY": (24.7, 6022.1),
}


def run(
    dataset_names: Sequence[str] | None = None,
    scale: float = 0.25,
    seed: int = 0,
    num_samples: int = 1500,
) -> list[dict[str, object]]:
    """Compute independence ratios for pairs and triples on every dataset.

    Returns one row per dataset with the measured ratios and the paper's
    published values.
    """
    names = list(dataset_names) if dataset_names is not None else all_benchmark_names()
    rows: list[dict[str, object]] = []
    for name in names:
        collection = generate_benchmark_like(name, scale=scale, seed=seed)
        ratio_pairs = independence_ratio(collection, subset_size=2, num_samples=num_samples, seed=seed)
        ratio_triples = independence_ratio(
            collection, subset_size=3, num_samples=num_samples, seed=seed + 1
        )
        paper_pairs, paper_triples = PAPER_TABLE1.get(name.upper(), (float("nan"), float("nan")))
        rows.append(
            {
                "dataset": name,
                "measured |I|=2": round(ratio_pairs, 2),
                "measured |I|=3": round(ratio_triples, 2),
                "paper |I|=2": paper_pairs,
                "paper |I|=3": paper_triples,
            }
        )
    return rows


def render(rows: list[dict[str, object]]) -> str:
    """Format the result in the shape of the paper's Table 1."""
    return format_table(
        rows,
        columns=["dataset", "measured |I|=2", "measured |I|=3", "paper |I|=2", "paper |I|=3"],
        title=(
            "Table 1 — ratio of observed to independence-predicted co-occurrence "
            "(synthetic stand-ins; compare shapes, not absolute values)"
        ),
    )

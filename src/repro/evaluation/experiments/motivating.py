"""Section 1 motivating example: splitting a harmonic-distribution query.

The introduction shows that on the harmonic distribution (``p_k = 1/k``)
splitting the query into a frequent half and a rare half and running two
searches beats a single search whenever ``i_frequent ≫ i_rare``.  The
experiment computes the single-search and optimal-split exponents for a
range of target intersection fractions ``i1`` and universe sizes.
"""

from __future__ import annotations

from typing import Sequence

from repro.evaluation.reporting import format_table
from repro.theory.motivating import motivating_example_exponents


def run(
    i1_values: Sequence[float] = (0.2, 0.3, 0.4, 0.5, 0.6),
    dimension: int = 4096,
    seed: int = 0,
) -> list[dict[str, object]]:
    """Single-search, split-search and skew-adaptive exponents on a harmonic query."""
    rows: list[dict[str, object]] = []
    for i1 in i1_values:
        result = motivating_example_exponents(dimension=dimension, i1=i1, seed=seed)
        rows.append(
            {
                "i1": round(i1, 3),
                "single_rho": round(result.single_rho, 3),
                "split_cost_exponent": round(result.split_cost_exponent, 3),
                "skew_adaptive_rho": round(result.skew_adaptive_rho, 3),
                "adaptive_speedup": round(result.adaptive_speedup_exponent, 3),
                "i_frequent": round(result.i_frequent, 4),
                "i_rare": round(result.i_rare, 4),
            }
        )
    return rows


def render(rows: list[dict[str, object]]) -> str:
    return format_table(
        rows,
        title=(
            "Section 1 motivating example — harmonic-distribution query: the paper's "
            "skew-adaptive exponent (last column is its gain over the single "
            "skew-oblivious search; the two-way split of the introduction is shown "
            "as the intermediate heuristic)"
        ),
    )

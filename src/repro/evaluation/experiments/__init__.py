"""One module per paper table/figure, each exposing a ``run()`` function.

* :mod:`figure1` — ρ curves of the skew-adaptive structure vs Chosen Path.
* :mod:`figure2` — frequency profiles of the benchmark-like datasets.
* :mod:`table1` — independence ratios for item pairs and triples.
* :mod:`section7_adversarial` — the Section 7.1 worked examples.
* :mod:`section7_correlated` — the Section 7.2 worked examples.
* :mod:`motivating` — the Section 1 split-query example.
* :mod:`empirical` — end-to-end candidate/recall comparison validating the
  analytic claims on synthetic data.

``run()`` functions return plain data (lists of dictionaries) so they can be
consumed by the pytest benches, the examples and ad-hoc scripts alike;
``render()`` helpers format them as text.
"""

from repro.evaluation.experiments import (
    empirical,
    figure1,
    figure2,
    motivating,
    section7_adversarial,
    section7_correlated,
    table1,
)

__all__ = [
    "empirical",
    "figure1",
    "figure2",
    "motivating",
    "section7_adversarial",
    "section7_correlated",
    "table1",
]

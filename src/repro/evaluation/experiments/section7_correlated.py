"""Section 7.2 worked examples: correlated queries.

Two regimes are worked through in the paper:

* **Extreme skew**: ``4 C log n`` items set with probability ``p_a = 1/4``
  and ``n^{0.9} C log n`` items with probability ``p_b = n^{-0.9}``, with
  ``α = 2/3``.  The paper's structure achieves query time ``O(n^ε)`` for any
  ε > 0 (ρ → 0), whereas prefix filtering needs ``Ω(n^{0.1})``.
* **Θ(1) probabilities** (the Figure 1 regime): half the items at ``p`` and
  half at ``p/8``, α = 2/3; prefix filtering has no non-trivial guarantee
  and the structure strictly beats Chosen Path for every p (Figure 1).

``run()`` reproduces both regimes from the Theorem 1 equation.
"""

from __future__ import annotations

import math

import numpy as np

from repro.evaluation.reporting import format_table
from repro.theory.comparison import compare_methods
from repro.theory.rho import prefix_filter_exponent, solve_correlated_rho_weighted


def extreme_skew_profile(num_vectors: int, capital_c: float = 20.0) -> tuple[np.ndarray, np.ndarray]:
    """The Section 7.2 extreme-skew distribution, as (probabilities, weights).

    ``4 C log n`` items at probability 1/4 plus ``n^{0.9} C log n`` items at
    probability ``n^{-0.9}``.  The rare block can contain far more items than
    fit in memory (``n^{0.9} C log n``), so it is represented as a weighted
    block and fed to the weighted ρ solver rather than materialised.
    """
    if num_vectors <= 2:
        raise ValueError(f"num_vectors must be at least 3, got {num_vectors}")
    log_n = math.log(num_vectors)
    frequent_count = 4.0 * capital_c * log_n
    rare_probability = float(num_vectors) ** -0.9
    rare_count = (num_vectors**0.9) * capital_c * log_n
    probabilities = np.array([0.25, rare_probability])
    weights = np.array([frequent_count, rare_count])
    return probabilities, weights


def run(
    num_vectors: int = 10**6,
    alpha: float = 2.0 / 3.0,
    theta1_probabilities: tuple[float, ...] = (0.05, 0.1, 0.2, 0.3, 0.4),
) -> list[dict[str, object]]:
    """Reproduce the Section 7.2 examples.

    Returns one row for the extreme-skew instance and one row per ``p`` of
    the Θ(1)-probability instances.
    """
    rows: list[dict[str, object]] = []

    probabilities_blocks, weight_blocks = extreme_skew_profile(num_vectors)
    ours = solve_correlated_rho_weighted(probabilities_blocks, weight_blocks, alpha)
    prefix = prefix_filter_exponent(probabilities_blocks, num_vectors)
    rows.append(
        {
            "instance": "extreme skew (p_a=1/4, p_b=n^-0.9)",
            "ours": round(ours, 3),
            "chosen_path": float("nan"),
            "prefix_filter_exponent": round(prefix, 3),
            "paper": "ours -> 0, prefix Omega(n^0.1)",
        }
    )

    for p in theta1_probabilities:
        probabilities = np.concatenate([np.full(500, p), np.full(500, p / 8.0)])
        comparison = compare_methods(probabilities, alpha, num_vectors=num_vectors)
        rows.append(
            {
                "instance": f"theta(1) skew, p={p:g}",
                "ours": round(comparison.skew_adaptive_rho, 3),
                "chosen_path": round(comparison.chosen_path_rho, 3),
                "prefix_filter_exponent": round(comparison.prefix_filter_exponent, 3),
                "paper": "ours < chosen_path (Figure 1), prefix = 1",
            }
        )
    return rows


def render(rows: list[dict[str, object]]) -> str:
    return format_table(
        rows,
        columns=["instance", "ours", "chosen_path", "prefix_filter_exponent", "paper"],
        title="Section 7.2 — correlated-query exponents (alpha = 2/3); lower is better",
    )

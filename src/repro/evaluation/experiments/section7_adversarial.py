"""Section 7.1 worked examples: adversarial queries on a two-block profile.

The paper works through a query whose items split into two halves — one half
set with probability ``p_a = 1/4`` in a random dataset vector, the other with
probability ``p_b = n^{-0.9}`` — and reports:

* at ``b1 = 1/3``: Chosen Path gets ``ρ_CP ≥ log(1/3)/log(1/8) ≈ 0.528``
  while the skew-adaptive structure achieves
  ``ρ = log(2/3)/log(1/4) + o(1) ≈ 0.293``; prefix filtering has no
  non-trivial guarantee;
* at ``b1 = 2/3``: the skew-adaptive ρ tends to 0 while Chosen Path gets
  ``ρ_CP = log(2/3)/log(1/8) ≈ 0.194`` and prefix filtering needs
  ``Ω(n^{0.1})`` time.

``run()`` recomputes those numbers from the general equations (no closed
forms are hard-coded), so agreement with the paper's constants is a genuine
check of the solver.
"""

from __future__ import annotations

import math

import numpy as np

from repro.evaluation.reporting import format_table
from repro.theory.rho import (
    chosen_path_rho,
    prefix_filter_exponent,
    solve_adversarial_rho,
)


def query_profile(num_vectors: int, query_size: int = 200) -> np.ndarray:
    """The Section 7.1 query: half the items at 1/4, half at ``n^{-0.9}``."""
    if num_vectors <= 1:
        raise ValueError(f"num_vectors must be at least 2, got {num_vectors}")
    if query_size < 2 or query_size % 2:
        raise ValueError(f"query_size must be an even number >= 2, got {query_size}")
    frequent = np.full(query_size // 2, 0.25)
    rare = np.full(query_size // 2, float(num_vectors) ** -0.9)
    return np.concatenate([frequent, rare])


def run(num_vectors: int = 10**9, query_size: int = 200) -> list[dict[str, object]]:
    """Reproduce the two worked examples of Section 7.1.

    ``num_vectors`` is large by default because the paper's statements are
    asymptotic (``n^{-0.9}`` must actually be tiny for the +o(1) terms to
    vanish); the computation is purely analytic so the size costs nothing.
    """
    probabilities = query_profile(num_vectors, query_size)
    rows: list[dict[str, object]] = []
    for b1, paper_ours, paper_chosen_path in ((1.0 / 3.0, 0.293, 0.528), (2.0 / 3.0, 0.0, 0.194)):
        ours = solve_adversarial_rho(probabilities, b1)
        # Chosen Path solves the (b1, b2)-approximate problem with b2 the
        # average item probability of the query (the expected similarity to a
        # random dataset vector): (1/4 + n^{-0.9})/2 ≈ 1/8.
        b2 = float(probabilities.mean())
        baseline = chosen_path_rho(b1, b2) if b2 < b1 else float("nan")
        prefix = prefix_filter_exponent(probabilities, num_vectors)
        rows.append(
            {
                "b1": round(b1, 4),
                "ours": round(ours, 3),
                "paper ours": paper_ours,
                "chosen_path": round(baseline, 3),
                "paper chosen_path": paper_chosen_path,
                "prefix_filter_exponent": round(prefix, 3),
            }
        )
    return rows


def closed_form_check(num_vectors: int = 10**9) -> dict[str, float]:
    """The closed forms the paper derives for this instance.

    At ``b1 = 1/3`` the rare items contribute nothing as n grows, so the
    equation degenerates to ``(1/2)(1/4)^ρ = 1/3``, i.e.
    ``ρ = log(2/3)/log(1/4)``.  Returns both the closed form and the solver's
    answer so tests can assert they agree.
    """
    probabilities = query_profile(num_vectors)
    return {
        "closed_form": math.log(2.0 / 3.0) / math.log(1.0 / 4.0),
        "solver": solve_adversarial_rho(probabilities, 1.0 / 3.0),
    }


def render(rows: list[dict[str, object]]) -> str:
    return format_table(
        rows,
        title=(
            "Section 7.1 — adversarial-query exponents on the two-block profile "
            "(p_a = 1/4, p_b = n^-0.9); lower is better"
        ),
    )

"""Figure 1: ρ of the skew-adaptive structure vs Chosen Path as skew varies.

The paper's Figure 1 plots, for the distribution in which half the bits are
set with probability ``p`` and the other half with probability ``p/8`` and a
sought-for correlation of ``α = 2/3``:

* the ρ value of the paper's data structure (red line), and
* the ρ value achieved by Chosen Path (blue line),

with prefix filtering at ρ = 1 throughout (omitted from the plot).  The
expected shape: both curves increase with ``p``; the paper's curve lies
strictly below Chosen Path for every ``p`` because the distribution is
skewed, and the gap is the benefit of skew-adaptivity.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.evaluation.reporting import format_series
from repro.theory.comparison import figure1_curve


def run(
    p_values: Sequence[float] | None = None,
    alpha: float = 2.0 / 3.0,
    rare_divisor: float = 8.0,
) -> list[dict[str, float]]:
    """Compute the Figure 1 curves.

    Returns one row per ``p`` with the exponents of both methods (and of
    prefix filtering, which the paper mentions in the caption).
    """
    return figure1_curve(p_values=p_values, alpha=alpha, rare_divisor=rare_divisor)


def render(rows: list[dict[str, float]], max_rows: int = 25) -> str:
    """Format the curves as a text series in the shape of Figure 1."""
    x_values = [row["p"] for row in rows]
    series = {
        "ours (red)": [row["ours"] for row in rows],
        "chosen_path (blue)": [row["chosen_path"] for row in rows],
        "prefix_filter": [row["prefix_filter"] for row in rows],
    }
    return format_series(
        x_values,
        series,
        x_label="p",
        title=(
            "Figure 1 — rho vs p (half the bits at p, half at p/8, alpha = 2/3); "
            "lower is better"
        ),
        max_rows=max_rows,
    )


def headline_numbers(rows: list[dict[str, float]]) -> dict[str, float]:
    """Summary statistics used by tests and EXPERIMENTS.md.

    * the largest gap ``ρ_CP − ρ_ours`` over the sweep,
    * the mean gap, and
    * the fraction of grid points where the paper's method is strictly better.
    """
    gaps = np.asarray([row["chosen_path"] - row["ours"] for row in rows], dtype=np.float64)
    return {
        "max_gap": float(gaps.max()),
        "mean_gap": float(gaps.mean()),
        "fraction_better": float(np.mean(gaps > 0.0)),
    }

"""Similarity predicates and threshold conversions.

Different set-similarity systems use different measures (the paper uses
Braun-Blanquet, the prefix-filtering literature mostly uses Jaccard, MinHash
estimates Jaccard).  When sets have (approximately) equal size the measures
are monotone transformations of each other; this module provides the
conversions used when configuring baselines so that all indexes answer the
same underlying question.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Collection

from repro.similarity import measures

SetLike = Collection[int]

_MEASURES: dict[str, Callable[[SetLike, SetLike], float]] = {
    "braun_blanquet": measures.braun_blanquet,
    "jaccard": measures.jaccard,
    "dice": measures.dice,
    "overlap": measures.overlap_coefficient,
    "cosine": measures.cosine,
}


def measure_by_name(name: str) -> Callable[[SetLike, SetLike], float]:
    """Look up a similarity function by its canonical name.

    Raises
    ------
    KeyError
        If the name is not one of ``braun_blanquet``, ``jaccard``, ``dice``,
        ``overlap``, ``cosine``.
    """
    key = name.lower()
    if key not in _MEASURES:
        raise KeyError(
            f"unknown similarity measure {name!r}; expected one of {sorted(_MEASURES)}"
        )
    return _MEASURES[key]


def jaccard_from_braun_blanquet(threshold: float) -> float:
    """Convert a Braun-Blanquet threshold to the equivalent Jaccard threshold.

    For sets of equal size ``|x| = |q| = m`` with intersection ``c`` we have
    ``B = c / m`` and ``J = c / (2m - c)``, hence ``J = B / (2 - B)``.  For
    unequal sizes the conversion is a lower bound on the Jaccard value of any
    pair meeting the Braun-Blanquet threshold, which keeps baseline indexes
    recall-safe.
    """
    if not 0.0 <= threshold <= 1.0:
        raise ValueError(f"threshold must be in [0, 1], got {threshold}")
    return threshold / (2.0 - threshold)


def braun_blanquet_from_jaccard(threshold: float) -> float:
    """Inverse of :func:`jaccard_from_braun_blanquet`: ``B = 2J / (1 + J)``."""
    if not 0.0 <= threshold <= 1.0:
        raise ValueError(f"threshold must be in [0, 1], got {threshold}")
    return 2.0 * threshold / (1.0 + threshold)


@dataclass(frozen=True)
class SimilarityPredicate:
    """A named similarity measure together with an acceptance threshold.

    Instances are used by the search indexes to decide whether a candidate
    should be reported, and by the evaluation harness to compute ground
    truth.
    """

    measure: str = "braun_blanquet"
    threshold: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.threshold <= 1.0:
            raise ValueError(f"threshold must be in [0, 1], got {self.threshold}")
        measure_by_name(self.measure)  # validates the name

    def similarity(self, x: SetLike, q: SetLike) -> float:
        """Similarity of ``x`` and ``q`` under this predicate's measure."""
        return measure_by_name(self.measure)(x, q)

    def accepts(self, x: SetLike, q: SetLike) -> bool:
        """True if ``similarity(x, q) >= threshold``."""
        return self.similarity(x, q) >= self.threshold

    def with_threshold(self, threshold: float) -> "SimilarityPredicate":
        """Copy of this predicate with a different threshold."""
        return SimilarityPredicate(measure=self.measure, threshold=threshold)

    def as_jaccard(self) -> "SimilarityPredicate":
        """Equivalent (recall-safe) Jaccard predicate.

        Only meaningful when the current measure is Braun-Blanquet; other
        measures are returned unchanged.
        """
        if self.measure != "braun_blanquet":
            return self
        return SimilarityPredicate(
            measure="jaccard", threshold=jaccard_from_braun_blanquet(self.threshold)
        )

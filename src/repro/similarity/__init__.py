"""Similarity measures for sparse binary vectors (sets).

The paper measures similarity by Braun-Blanquet similarity
``B(x, q) = |x ∩ q| / max(|x|, |q|)`` and relates it to Pearson correlation
of the underlying boolean vectors (Lemma 10).  This subpackage implements
the usual binary similarity measures together with conversion helpers
between their thresholds.
"""

from repro.similarity.measures import (
    braun_blanquet,
    cosine,
    dice,
    hamming_distance,
    intersection_size,
    jaccard,
    overlap_coefficient,
    pearson_binary,
    similarity_matrix,
)
from repro.similarity.predicates import (
    SimilarityPredicate,
    braun_blanquet_from_jaccard,
    jaccard_from_braun_blanquet,
    measure_by_name,
)

__all__ = [
    "braun_blanquet",
    "cosine",
    "dice",
    "hamming_distance",
    "intersection_size",
    "jaccard",
    "overlap_coefficient",
    "pearson_binary",
    "similarity_matrix",
    "SimilarityPredicate",
    "braun_blanquet_from_jaccard",
    "jaccard_from_braun_blanquet",
    "measure_by_name",
]

"""Binary set similarity measures.

All functions accept sets represented either as Python ``set``/``frozenset``
of item ids or as sorted sequences of item ids; the helpers normalise the
representation internally.  Vectors are *sparse*: only the indices of set
bits are passed around, never dense 0/1 arrays (the paper's dimension ``d``
can be huge while sets are small).
"""

from __future__ import annotations

import math
from typing import Collection, Iterable, Sequence

import numpy as np

SetLike = Collection[int]


def _as_set(items: SetLike) -> frozenset[int]:
    """Normalise a collection of item ids to a frozenset."""
    if isinstance(items, (set, frozenset)):
        return frozenset(items)
    return frozenset(items)


def intersection_size(x: SetLike, q: SetLike) -> int:
    """Return ``|x ∩ q|``."""
    set_x = _as_set(x)
    set_q = _as_set(q)
    if len(set_x) > len(set_q):
        set_x, set_q = set_q, set_x
    return sum(1 for item in set_x if item in set_q)


def braun_blanquet(x: SetLike, q: SetLike) -> float:
    """Braun-Blanquet similarity ``|x ∩ q| / max(|x|, |q|)``.

    This is the similarity measure used throughout the paper.  Returns 0 for
    a pair of empty sets (by convention).
    """
    set_x = _as_set(x)
    set_q = _as_set(q)
    denominator = max(len(set_x), len(set_q))
    if denominator == 0:
        return 0.0
    return intersection_size(set_x, set_q) / denominator


def jaccard(x: SetLike, q: SetLike) -> float:
    """Jaccard similarity ``|x ∩ q| / |x ∪ q|``.  0 for two empty sets."""
    set_x = _as_set(x)
    set_q = _as_set(q)
    inter = intersection_size(set_x, set_q)
    union = len(set_x) + len(set_q) - inter
    if union == 0:
        return 0.0
    return inter / union


def dice(x: SetLike, q: SetLike) -> float:
    """Sørensen-Dice similarity ``2|x ∩ q| / (|x| + |q|)``.  0 for empty sets."""
    set_x = _as_set(x)
    set_q = _as_set(q)
    total = len(set_x) + len(set_q)
    if total == 0:
        return 0.0
    return 2.0 * intersection_size(set_x, set_q) / total


def overlap_coefficient(x: SetLike, q: SetLike) -> float:
    """Overlap (Szymkiewicz-Simpson) coefficient ``|x ∩ q| / min(|x|, |q|)``."""
    set_x = _as_set(x)
    set_q = _as_set(q)
    denominator = min(len(set_x), len(set_q))
    if denominator == 0:
        return 0.0
    return intersection_size(set_x, set_q) / denominator


def cosine(x: SetLike, q: SetLike) -> float:
    """Cosine similarity of the binary indicator vectors."""
    set_x = _as_set(x)
    set_q = _as_set(q)
    denominator = math.sqrt(len(set_x) * len(set_q))
    if denominator == 0:
        return 0.0
    return intersection_size(set_x, set_q) / denominator


def hamming_distance(x: SetLike, q: SetLike) -> int:
    """Hamming distance between the binary indicator vectors, ``|x Δ q|``."""
    set_x = _as_set(x)
    set_q = _as_set(q)
    inter = intersection_size(set_x, set_q)
    return len(set_x) + len(set_q) - 2 * inter


def pearson_binary(x: SetLike, q: SetLike, dimension: int) -> float:
    """Pearson correlation between the binary indicator vectors in dimension ``d``.

    Unlike the set-only measures, Pearson correlation needs the ambient
    dimension because the 0-coordinates contribute to the means.

    Parameters
    ----------
    x, q:
        The two sets of set-bit indices.
    dimension:
        The ambient dimension ``d``; must be at least the largest index + 1
        and strictly positive.
    """
    if dimension <= 0:
        raise ValueError(f"dimension must be positive, got {dimension}")
    set_x = _as_set(x)
    set_q = _as_set(q)
    if set_x and max(set_x) >= dimension:
        raise ValueError("set x contains an index outside the ambient dimension")
    if set_q and max(set_q) >= dimension:
        raise ValueError("set q contains an index outside the ambient dimension")
    size_x = len(set_x)
    size_q = len(set_q)
    mean_x = size_x / dimension
    mean_q = size_q / dimension
    variance_x = mean_x * (1.0 - mean_x)
    variance_q = mean_q * (1.0 - mean_q)
    if variance_x == 0.0 or variance_q == 0.0:
        return 0.0
    covariance = intersection_size(set_x, set_q) / dimension - mean_x * mean_q
    return covariance / math.sqrt(variance_x * variance_q)


def similarity_matrix(
    sets: Sequence[SetLike],
    queries: Sequence[SetLike] | None = None,
    measure: str = "braun_blanquet",
) -> np.ndarray:
    """Dense matrix of pairwise similarities.

    Parameters
    ----------
    sets:
        Row collection of sets.
    queries:
        Column collection; defaults to ``sets`` (symmetric self-similarity).
    measure:
        One of ``braun_blanquet``, ``jaccard``, ``dice``, ``overlap``,
        ``cosine``.

    Notes
    -----
    Intended for small collections (tests, examples, exact verification); the
    similarity-search indexes exist precisely so that this quadratic
    computation is avoided at scale.
    """
    from repro.similarity.predicates import measure_by_name

    function = measure_by_name(measure)
    columns = sets if queries is None else queries
    normalised_rows = [_as_set(row) for row in sets]
    normalised_columns = [_as_set(column) for column in columns]
    matrix = np.zeros((len(normalised_rows), len(normalised_columns)), dtype=np.float64)
    for row_index, row in enumerate(normalised_rows):
        for column_index, column in enumerate(normalised_columns):
            matrix[row_index, column_index] = function(row, column)
    return matrix


def weight_histogram(sets: Iterable[SetLike]) -> dict[int, int]:
    """Histogram of set sizes (Hamming weights) over a collection."""
    histogram: dict[int, int] = {}
    for items in sets:
        size = len(_as_set(items))
        histogram[size] = histogram.get(size, 0) + 1
    return histogram

"""Command-line interface.

Ten subcommands cover the workflows a downstream user needs without writing
Python (``docs/cli.md`` is the full flag-by-flag reference and CI snapshot):

* ``repro generate`` — write a synthetic benchmark-like dataset in
  transaction format;
* ``repro profile`` — skew / dependence profile of a transaction file plus
  the predicted query exponents (the Section 8 analyses applied to your own
  data);
* ``repro build`` — build a skew-adaptive index over a transaction file and
  save it to disk (the sharded format v3 by default; ``--shards`` controls
  the key-range shard count and ``--format 2`` writes the legacy container);
* ``repro query`` — load a saved index and run queries from a transaction
  file, printing matches and work statistics (``--candidates-only`` stops
  after the CSR probe/merge phase and reports the merged candidate sets;
  ``--load-mode mmap`` serves the queries from lazily mapped shards instead
  of loading the index into RAM).
* ``repro query-batch`` — the same workload through the batched execution
  engine: vectorised filter generation, probe deduplication across the
  batch and optional worker-pool fan-out, with throughput and per-phase
  (generation / merge / verification) timing reporting; also honours
  ``--candidates-only``, ``--load-mode`` and ``--shard-workers`` (per-probe
  shard fan-out on mmap-loaded indexes).
* ``repro convert`` — rewrite a saved index in another format: v1/v2 → v3
  upgrades by default, ``--format 2`` downgrades a v3 directory to the
  legacy single-file container;
* ``repro inspect`` — print the format version, configuration, build
  statistics, shard layout and on-disk vs resident footprint of a saved
  index (any format) without running queries;
* ``repro serve`` — serve one or more saved indexes over HTTP with
  server-side micro-batching: concurrent requests are coalesced into
  amortised ``query_batch`` calls (``--batch-window-ms``), bounded by a
  load-shedding admission limit (``--max-pending``), with latency and
  coalescing statistics on ``/stats``; ``--shard-procs N`` fans probes out
  over N shard worker processes (``--shard-addr`` connects to pre-started
  ``shard-worker`` servers instead), with per-shard health on ``/stats``
  and ``/metrics`` (see ``docs/distributed.md``);
* ``repro shard-worker`` — serve a subset of a v3 index's key-range shards
  over a TCP or unix socket for a ``--shard-addr`` router to fan out to;
* ``repro experiments`` — regenerate one of the paper's tables/figures as a
  text table.

Run ``python -m repro --help`` for details.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Any, Sequence

import numpy as np


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.data.generators import all_benchmark_names, generate_benchmark_like
    from repro.data.io import write_transactions

    if args.name.upper() not in {name.upper() for name in all_benchmark_names()}:
        print(f"unknown dataset profile {args.name!r}; choose from {all_benchmark_names()}")
        return 2
    collection = generate_benchmark_like(args.name, scale=args.scale, seed=args.seed)
    write_transactions(collection, args.output)
    print(
        f"wrote {len(collection)} sets over a universe of {collection.dimension} items "
        f"to {args.output}"
    )
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.data.analysis import independence_ratio, skew_summary
    from repro.data.estimation import recommend_parameters
    from repro.data.io import read_transactions
    from repro.evaluation.reporting import format_table
    from repro.theory.comparison import compare_methods

    collection = read_transactions(args.input)
    if len(collection) == 0:
        print("the input file contains no sets")
        return 2
    summary = skew_summary(collection)
    pair_ratio = independence_ratio(collection, 2, num_samples=args.samples, seed=args.seed)
    rows = [
        {
            "sets": len(collection),
            "universe": collection.dimension,
            "avg size": round(collection.average_size(), 2),
            "gini": round(summary.gini, 3),
            "zipf exponent": round(summary.zipf_exponent, 3),
            "top-10% mass": round(summary.top_10_percent_mass, 3),
            "pair dependence ratio": round(pair_ratio, 2),
        }
    ]
    print(format_table(rows, title=f"Profile of {args.input}"))

    frequencies = np.clip(collection.item_frequencies(), 1e-9, 0.5)
    comparison = compare_methods(frequencies, args.alpha, num_vectors=len(collection))
    recommendation = recommend_parameters(collection, alpha=args.alpha)
    print()
    print(
        format_table(
            [
                {
                    "ours (rho)": round(comparison.skew_adaptive_rho, 3),
                    "chosen_path (rho)": round(comparison.chosen_path_rho, 3),
                    "prefix exponent": round(comparison.prefix_filter_exponent, 3),
                    "recommended repetitions": recommendation.repetitions,
                    "meets size requirement": recommendation.meets_size_requirement,
                }
            ],
            title=f"Predicted query exponents at alpha = {args.alpha:g}",
        )
    )
    return 0


def _print_kernel_stats(kernel: Any) -> None:
    """Render a :class:`~repro.core.stats.KernelStats` as a counter table."""
    from repro.core.kernels import active_backend
    from repro.evaluation.reporting import format_table

    rows = [
        {"counter": name, "count": value} for name, value in kernel.to_dict().items()
    ]
    print()
    print(format_table(rows, title=f"Kernel counters ({active_backend()} backend)"))


def _cmd_build(args: argparse.Namespace) -> int:
    from repro.core.config import (
        CorrelatedIndexConfig,
        PersistenceConfig,
        SkewAdaptiveIndexConfig,
    )
    from repro.core.correlated_index import CorrelatedIndex
    from repro.core.serialization import save_index
    from repro.core.skewed_index import SkewAdaptiveIndex
    from repro.data.estimation import estimate_probabilities
    from repro.data.io import read_transactions

    collection = read_transactions(args.input)
    if len(collection) == 0:
        print("the input file contains no sets")
        return 2
    distribution = estimate_probabilities(collection)
    if args.kind == "correlated":
        index = CorrelatedIndex(
            distribution,
            config=CorrelatedIndexConfig(
                alpha=args.alpha, repetitions=args.repetitions, seed=args.seed
            ),
        )
    else:
        index = SkewAdaptiveIndex(
            distribution,
            config=SkewAdaptiveIndexConfig(
                b1=args.b1, repetitions=args.repetitions, seed=args.seed
            ),
        )
    stats = index.build(list(collection))
    from repro.core.serialization import index_disk_bytes

    persistence = PersistenceConfig(
        format_version=args.format,
        shards=args.shards,
        compress=not args.no_compress,
    )
    save_index(index, args.output, config=persistence)
    size = index_disk_bytes(args.output)
    layout = (
        f"format v{args.format}, {args.shards} shards" if args.format == 3 else "format v2"
    )
    print(
        f"built a {args.kind} index over {stats.num_vectors} sets "
        f"({stats.total_filters} filters, {stats.repetitions} repetitions) and saved it to "
        f"{args.output} ({layout}, {size} bytes)"
    )
    if args.kernel_stats:
        _print_kernel_stats(stats.kernel)
    return 0


def _cmd_convert(args: argparse.Namespace) -> int:
    from repro.core.config import PersistenceConfig
    from repro.core.serialization import convert_index_file, index_disk_bytes

    try:
        source_size = index_disk_bytes(args.input)
        convert_index_file(
            args.input,
            args.output,
            config=PersistenceConfig(format_version=args.format, shards=args.shards),
        )
    except (ValueError, OSError) as error:
        print(f"cannot convert {args.input}: {error}")
        return 2
    output_size = index_disk_bytes(args.output)
    if output_size and source_size / output_size >= 1.05:
        comparison = f", {source_size / output_size:.1f}x smaller"
    else:
        comparison = ""
    print(
        f"converted {args.input} ({source_size} bytes) to format v{args.format} at "
        f"{args.output} ({output_size} bytes{comparison})"
    )
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    from repro.core.serialization import describe_index_file
    from repro.evaluation.reporting import format_table

    try:
        description = describe_index_file(args.index)
    except (ValueError, OSError) as error:
        print(f"cannot inspect {args.index}: {error}")
        return 2
    build_stats = description["build_stats"]
    rows = [
        {
            "format": f"v{description['format_version']}",
            "kind": description["kind"],
            "vectors": description["num_vectors"],
            "filters": build_stats.get("total_filters", 0),
            "repetitions": description["repetitions"],
            "shards": description["num_shards"] if description["num_shards"] else "-",
            "disk bytes": description["disk_bytes"],
            "resident bytes": description["resident_bytes"],
        }
    ]
    print(format_table(rows, title=f"Saved index {args.index}"))
    if description["num_shards"]:
        fences = description["fences"]
        bounds = [0, *fences, 1 << 64]
        shard_rows = [
            {
                "shard": shard,
                "key range": f"[{bounds[shard]:#018x}, {bounds[shard + 1]:#018x})",
                "slots": entry["slots"],
                "postings": entry["postings"],
            }
            for shard, entry in enumerate(description["shards"])
        ]
        print()
        print(
            format_table(
                shard_rows,
                title=f"{description['num_shards']} key-range shards (all repetitions)",
            )
        )
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    from repro.core.serialization import load_index
    from repro.data.io import read_transactions
    from repro.evaluation.reporting import format_table

    try:
        index = load_index(
            args.index, mode=args.load_mode, shard_workers=args.shard_workers
        )
    except (ValueError, OSError) as error:
        print(f"cannot load {args.index}: {error}")
        return 2
    from repro.core.stats import KernelStats

    queries = read_transactions(args.queries)
    rows = []
    kernel_total = KernelStats()
    if args.candidates_only:
        for query_number, query in enumerate(queries):
            candidates, stats = index.query_candidates(query)
            kernel_total.add(stats.kernel)
            rows.append(
                {
                    "query": query_number,
                    "unique": stats.unique_candidates,
                    "candidates": stats.candidates_examined,
                    "filters": stats.filters_generated,
                    "sample": ",".join(str(v) for v in sorted(candidates)[:5]) or "-",
                }
            )
        print(
            format_table(
                rows, title=f"{len(queries)} candidate probes against {args.index}"
            )
        )
        total = sum(row["candidates"] for row in rows)
        unique = sum(row["unique"] for row in rows)
        print(
            f"\n{total} candidate collisions merged into {unique} distinct candidates "
            "(verification skipped)"
        )
        if args.kernel_stats:
            _print_kernel_stats(kernel_total)
        return 0
    for query_number, query in enumerate(queries):
        result, stats = index.query(query, mode=args.mode)
        kernel_total.add(stats.kernel)
        rows.append(
            {
                "query": query_number,
                "match": "-" if result is None else result,
                "candidates": stats.candidates_examined,
                "filters": stats.filters_generated,
            }
        )
    print(format_table(rows, title=f"{len(queries)} queries against {args.index}"))
    found = sum(1 for row in rows if row["match"] != "-")
    print(f"\n{found}/{len(queries)} queries returned a match")
    if args.kernel_stats:
        _print_kernel_stats(kernel_total)
    return 0


def _cmd_query_batch(args: argparse.Namespace) -> int:
    import time

    from repro.core.config import DEFAULT_BATCH_SIZE, BatchQueryConfig
    from repro.core.serialization import load_index
    from repro.data.io import read_transactions
    from repro.evaluation.reporting import format_table

    config = BatchQueryConfig(
        batch_size=args.batch_size if args.batch_size is not None else DEFAULT_BATCH_SIZE,
        max_workers=args.workers,
        shard_workers=args.shard_workers,
        allow_partial=args.allow_partial,
    )
    try:
        index = load_index(args.index, mode=args.load_mode)
    except (ValueError, OSError) as error:
        print(f"cannot load {args.index}: {error}")
        return 2
    queries = list(read_transactions(args.queries))
    start = time.perf_counter()
    if args.candidates_only:
        candidate_lists, batch_stats = index.query_candidates_batch(
            queries, **config.as_kwargs()
        )
        results = None
    else:
        results, batch_stats = index.query_batch(
            queries, mode=args.mode, **config.as_kwargs()
        )
    elapsed = time.perf_counter() - start
    rows = []
    for query_number, stats in enumerate(batch_stats.per_query):
        row = {"query": query_number}
        if results is None:
            row["unique"] = stats.unique_candidates
        else:
            result = results[query_number]
            row["match"] = "-" if result is None else result
        row["candidates"] = stats.candidates_examined
        row["filters"] = stats.filters_generated
        row["cached"] = "yes" if stats.from_cache else ""
        rows.append(row)
    what = "batched candidate probes" if results is None else "batched queries"
    print(format_table(rows, title=f"{len(queries)} {what} against {args.index}"))
    throughput = len(queries) / elapsed if elapsed > 0 else float("inf")
    if results is None:
        distinct = len(set().union(*candidate_lists)) if candidate_lists else 0
        memberships = sum(len(candidates) for candidates in candidate_lists)
        print(
            f"\n{memberships} per-query candidate memberships over "
            f"{distinct} distinct vectors (verification skipped)"
        )
    else:
        found = sum(1 for result in results if result is not None)
        print(f"\n{found}/{len(queries)} queries returned a match")
    print(
        f"batch of {len(queries)} in {elapsed:.4f}s ({throughput:.0f} queries/s); "
        f"probe dedupe hit rate {batch_stats.dedupe_hit_rate:.1%}, "
        f"{batch_stats.queries_deduplicated} duplicate queries answered from cache"
    )
    print(
        "phase seconds: "
        f"generation {batch_stats.generation_seconds:.4f}, "
        f"merge {batch_stats.merge_seconds:.4f}, "
        f"verification {batch_stats.verification_seconds:.4f}"
    )
    if args.kernel_stats:
        _print_kernel_stats(batch_stats.kernel)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import IndexSpec, ServeConfig, run_server

    if args.shard_addr and args.extra_index:
        print("--shard-addr applies to the positional index only; it cannot "
              "be combined with --index NAME=PATH extras")
        return 2
    try:
        specs = [
            IndexSpec(
                name=args.name,
                path=str(args.index),
                load_mode=args.load_mode,
                shard_workers=args.shard_workers,
                shard_procs=args.shard_procs,
                shard_addrs=tuple(args.shard_addr) if args.shard_addr else None,
                fault_spec=args.fault_spec,
            )
        ]
        for extra in args.extra_index or []:
            name, separator, path = extra.partition("=")
            if not separator or not name or not path:
                print(f"--index expects NAME=PATH, got {extra!r}")
                return 2
            specs.append(
                IndexSpec(
                    name=name,
                    path=path,
                    load_mode=args.load_mode,
                    shard_workers=args.shard_workers,
                    shard_procs=args.shard_procs,
                )
            )
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            print(f"duplicate index names: {sorted(names)}")
            return 2
        config = ServeConfig(
            host=args.host,
            port=args.port,
            batch_window_ms=args.batch_window_ms,
            max_batch_queries=args.max_batch_size,
            max_pending_queries=args.max_pending,
            retry_after_seconds=args.retry_after,
            default_deadline_ms=args.default_deadline_ms,
        )
    except ValueError as error:
        print(f"cannot serve: {error}")
        return 2
    try:
        run_server(specs, config)
    except (ValueError, OSError) as error:
        print(f"cannot serve: {error}")
        return 2
    return 0


def _parse_shard_set(text: str) -> list[int]:
    """Parse a ``--shards`` spec: comma-separated ids and ``A-B`` ranges."""
    shards: set[int] = set()
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        low, dash, high = part.partition("-")
        if dash:
            shards.update(range(int(low), int(high) + 1))
        else:
            shards.add(int(part))
    if not shards:
        raise ValueError(f"no shard ids in {text!r}")
    return sorted(shards)


def _cmd_shard_worker(args: argparse.Namespace) -> int:
    from repro.dist import ShardServer, ShardWorkerState

    try:
        shards = _parse_shard_set(args.shards)
        state = ShardWorkerState(str(args.index), shards)
    except (ValueError, OSError) as error:
        print(f"cannot start shard worker: {error}")
        return 2
    server = ShardServer(
        state,
        host=args.host,
        port=args.port,
        socket_path=str(args.socket) if args.socket else None,
    )
    try:
        address = server.start()
    except OSError as error:
        print(f"cannot start shard worker: {error}")
        return 2
    # The "ready" line is the startup contract: a supervisor greps for it and
    # takes the last whitespace-separated token as the bound address.
    print(
        f"shard-worker serving shards {','.join(map(str, shards))} of "
        f"{args.index} — ready {address}",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.evaluation.experiments import (
        figure1,
        figure2,
        motivating,
        section7_adversarial,
        section7_correlated,
        table1,
    )

    if args.which == "figure1":
        print(figure1.render(figure1.run()))
    elif args.which == "figure2":
        profiles = figure2.run(scale=args.scale, seed=args.seed)
        print(figure2.render(profiles, axis="relative"))
    elif args.which == "table1":
        print(table1.render(table1.run(scale=args.scale, seed=args.seed)))
    elif args.which == "section7.1":
        print(section7_adversarial.render(section7_adversarial.run()))
    elif args.which == "section7.2":
        print(section7_correlated.render(section7_correlated.run()))
    elif args.which == "motivating":
        print(motivating.render(motivating.run()))
    else:  # pragma: no cover - argparse restricts the choices
        print(f"unknown experiment {args.which!r}")
        return 2
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import Baseline, all_rules, lint_paths
    from repro.analysis.formatters import render

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id}  {rule.title}")
            print(f"    {rule.rationale}")
        return 0

    root = args.root.resolve()
    paths = [Path(p) for p in args.paths] if args.paths else [root / "src" / "repro"]
    try:
        baseline = Baseline.load(args.baseline) if args.baseline else Baseline.empty()
    except ValueError as error:
        print(f"cannot load baseline: {error}", file=sys.stderr)
        return 2
    result = lint_paths(paths, root=root, baseline=baseline)

    if args.update_baseline:
        if args.baseline is None:
            print("--update-baseline requires --baseline FILE", file=sys.stderr)
            return 2
        refreshed = Baseline.from_findings(
            result.findings + result.grandfathered,
            reason=args.baseline_reason,
        )
        refreshed.save(args.baseline)
        print(
            f"baseline updated: {len(refreshed.entries)} entr(y/ies) written "
            f"to {args.baseline}"
        )
        return 0

    print(render(result, args.format))
    return 0 if result.ok else 1


def lint_main(argv: Sequence[str] | None = None) -> int:
    """Entry point for ``tools/run_lint.py`` (lint without a subcommand)."""
    parser = argparse.ArgumentParser(
        prog="run_lint", description="repo-specific static analysis (RPL rules)"
    )
    _add_lint_arguments(parser)
    args = parser.parse_args(argv)
    return _cmd_lint(args)


def _add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src/repro under --root)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json", "github"],
        default="text",
        help="output format (github emits workflow error annotations)",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=Path("."),
        help="repository root anchoring the repo-relative finding paths",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="baseline JSON of grandfathered findings (entries need reasons)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite --baseline from the current findings and exit",
    )
    parser.add_argument(
        "--baseline-reason",
        default="grandfathered at baseline creation",
        help="reason recorded for entries written by --update-baseline",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list registered rules and exit"
    )


def _positive_int(value: str) -> int:
    """argparse type for strictly positive integer options."""
    try:
        parsed = int(value)
    except ValueError as error:
        raise argparse.ArgumentTypeError(f"{value!r} is not an integer") from error
    if parsed <= 0:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {parsed}")
    return parsed


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Skew-adaptive set similarity search (PODS 2018 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="generate a synthetic benchmark-like dataset")
    generate.add_argument("name", help="dataset profile name (e.g. DBLP, KOSARAK, SPOTIFY)")
    generate.add_argument("--output", "-o", type=Path, required=True, help="output transaction file")
    generate.add_argument("--scale", type=float, default=0.25, help="size multiplier")
    generate.add_argument("--seed", type=int, default=0)
    generate.set_defaults(handler=_cmd_generate)

    profile = subparsers.add_parser("profile", help="profile skew and dependence of a dataset")
    profile.add_argument("input", type=Path, help="transaction file to profile")
    profile.add_argument("--alpha", type=float, default=2.0 / 3.0, help="correlation level for rho prediction")
    profile.add_argument("--samples", type=int, default=1000, help="samples for the dependence ratio")
    profile.add_argument("--seed", type=int, default=0)
    profile.set_defaults(handler=_cmd_profile)

    build = subparsers.add_parser("build", help="build and save an index over a dataset")
    build.add_argument("input", type=Path, help="transaction file to index")
    build.add_argument("--output", "-o", type=Path, required=True, help="output index file")
    build.add_argument("--kind", choices=["adversarial", "correlated"], default="adversarial")
    build.add_argument("--b1", type=float, default=0.5, help="similarity threshold (adversarial)")
    build.add_argument("--alpha", type=float, default=2.0 / 3.0, help="correlation level (correlated)")
    build.add_argument("--repetitions", type=int, default=None)
    build.add_argument("--seed", type=int, default=0)
    build.add_argument(
        "--format",
        type=int,
        choices=[2, 3],
        default=3,
        help="on-disk format: 3 (sharded, mmap-native directory; default) "
        "or 2 (legacy single-file compressed container)",
    )
    build.add_argument(
        "--shards",
        type=_positive_int,
        default=8,
        help="number of folded-key-range shards a v3 save splits the index into "
        "(default 8; ignored with --format 2)",
    )
    build.add_argument(
        "--no-compress",
        action="store_true",
        help="write a v2 file without compression (larger but faster saves; "
        "v3 is always uncompressed raw arrays)",
    )
    build.add_argument(
        "--kernel-stats",
        action="store_true",
        help="print the per-stage kernel work counters of the build "
        "(path extension, compaction chain resolution)",
    )
    build.set_defaults(handler=_cmd_build)

    convert = subparsers.add_parser(
        "convert", help="rewrite a saved index in another format (v3 upgrade / v2 downgrade)"
    )
    convert.add_argument("input", type=Path, help="saved index (any readable version)")
    convert.add_argument("--output", "-o", type=Path, required=True, help="output index path")
    convert.add_argument(
        "--format",
        type=int,
        choices=[2, 3],
        default=3,
        help="target format: 3 upgrades to the sharded mmap-native layout "
        "(default), 2 downgrades to the legacy single-file container",
    )
    convert.add_argument(
        "--shards",
        type=_positive_int,
        default=8,
        help="shard count of a v3 target (default 8; ignored with --format 2)",
    )
    convert.set_defaults(handler=_cmd_convert)

    inspect = subparsers.add_parser(
        "inspect", help="print the format, stats, shard layout and footprint of a saved index"
    )
    inspect.add_argument("index", type=Path, help="saved index file or v3 directory")
    inspect.set_defaults(handler=_cmd_inspect)

    query = subparsers.add_parser("query", help="run queries against a saved index")
    query.add_argument("index", type=Path, help="index written by 'repro build'")
    query.add_argument("queries", type=Path, help="transaction file of query sets")
    query.add_argument("--mode", choices=["first", "best"], default="first")
    query.add_argument(
        "--load-mode",
        choices=["ram", "mmap"],
        default="ram",
        help="'ram' loads the whole index into memory; 'mmap' (v3 indexes only) "
        "opens lazily mapped shards and pages in only what queries touch",
    )
    query.add_argument(
        "--shard-workers",
        type=_positive_int,
        default=None,
        help="per-probe shard fan-out on an mmap-loaded index (threads)",
    )
    query.add_argument(
        "--candidates-only",
        action="store_true",
        help="enumerate merged candidate sets without verification "
        "(observes the CSR probe/merge phase in isolation)",
    )
    query.add_argument(
        "--kernel-stats",
        action="store_true",
        help="print the per-stage kernel work counters accumulated over the "
        "queries (path extension, CSR merges)",
    )
    query.set_defaults(handler=_cmd_query)

    query_batch = subparsers.add_parser(
        "query-batch", help="run queries through the batched execution engine"
    )
    query_batch.add_argument("index", type=Path, help="index file written by 'repro build'")
    query_batch.add_argument("queries", type=Path, help="transaction file of query sets")
    query_batch.add_argument("--mode", choices=["first", "best"], default="first")
    from repro.core.config import DEFAULT_BATCH_SIZE

    query_batch.add_argument(
        "--batch-size",
        type=_positive_int,
        default=None,
        help=f"queries per vectorised execution chunk (default {DEFAULT_BATCH_SIZE})",
    )
    query_batch.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        help="fan chunks out over a thread pool of this size",
    )
    query_batch.add_argument(
        "--load-mode",
        choices=["ram", "mmap"],
        default="ram",
        help="'ram' loads the whole index into memory; 'mmap' (v3 indexes only) "
        "opens lazily mapped shards and pages in only what queries touch",
    )
    query_batch.add_argument(
        "--shard-workers",
        type=_positive_int,
        default=None,
        help="per-probe shard fan-out on an mmap-loaded index (threads)",
    )
    query_batch.add_argument(
        "--allow-partial",
        action="store_true",
        help="router-backed indexes: serve from live shards when a worker's "
        "circuit breaker is open instead of failing (degraded results)",
    )
    query_batch.add_argument(
        "--candidates-only",
        action="store_true",
        help="enumerate merged candidate sets without verification "
        "(observes the CSR probe/merge phase in isolation)",
    )
    query_batch.add_argument(
        "--kernel-stats",
        action="store_true",
        help="print the per-stage kernel work counters of the batch "
        "(path extension, CSR merges)",
    )
    query_batch.set_defaults(handler=_cmd_query_batch)

    serve = subparsers.add_parser(
        "serve",
        help="serve saved indexes over HTTP with server-side micro-batching",
    )
    serve.add_argument("index", type=Path, help="saved index to serve (name 'default')")
    serve.add_argument(
        "--name",
        default="default",
        help="name the positional index is addressed by (default 'default')",
    )
    serve.add_argument(
        "--index",
        dest="extra_index",
        action="append",
        metavar="NAME=PATH",
        help="serve an additional index under NAME (repeatable)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address (default 127.0.0.1)")
    serve.add_argument(
        "--port",
        type=int,
        default=8080,
        help="bind port; 0 picks an ephemeral port (default 8080)",
    )
    serve.add_argument(
        "--batch-window-ms",
        type=float,
        default=2.0,
        help="micro-batching admission window in milliseconds; concurrent "
        "requests arriving within it coalesce into one engine call "
        "(0 disables coalescing; default 2.0)",
    )
    serve.add_argument(
        "--max-batch-size",
        type=_positive_int,
        default=DEFAULT_BATCH_SIZE,
        help="dispatch a forming batch once it holds this many queries "
        f"(default {DEFAULT_BATCH_SIZE})",
    )
    serve.add_argument(
        "--max-pending",
        type=_positive_int,
        default=4096,
        help="load-shedding bound on queued + executing queries per index; "
        "beyond it requests get 429 with Retry-After (default 4096)",
    )
    serve.add_argument(
        "--retry-after",
        type=float,
        default=None,
        help="fixed Retry-After seconds for shed requests "
        "(default: estimate from the current backlog)",
    )
    serve.add_argument(
        "--load-mode",
        choices=["ram", "mmap"],
        default="mmap",
        help="'mmap' (default) opens v3 indexes lazily — the serving "
        "configuration; 'ram' loads everything for maximum throughput",
    )
    serve.add_argument(
        "--shard-workers",
        type=_positive_int,
        default=None,
        help="per-probe shard fan-out on mmap-loaded indexes (threads)",
    )
    serve.add_argument(
        "--shard-procs",
        type=_positive_int,
        default=None,
        help="serve v3 indexes through a shard router: this many worker "
        "processes each mmap only their own shards, with per-shard health "
        "on /stats and /metrics (requires --load-mode mmap)",
    )
    serve.add_argument(
        "--shard-addr",
        action="append",
        metavar="ADDR",
        help="connect the positional index to a pre-started `repro "
        "shard-worker` at ADDR (host:port, a unix socket path, or "
        "unix:PATH; repeatable, one per worker)",
    )
    serve.add_argument(
        "--default-deadline-ms",
        type=float,
        default=None,
        help="deadline budget for requests without an X-Repro-Deadline-Ms "
        "header; expired requests answer 504 (default: no deadline)",
    )
    serve.add_argument(
        "--fault-spec",
        default=None,
        help="inject deterministic faults into the shard transport of "
        "router-backed indexes (a spec like 'crash:worker=0:count=2' or a "
        "preset name; chaos testing only)",
    )
    serve.set_defaults(handler=_cmd_serve)

    shard_worker = subparsers.add_parser(
        "shard-worker",
        help="serve a subset of a v3 index's shards to a router over a socket",
    )
    shard_worker.add_argument("index", type=Path, help="saved v3 index directory")
    shard_worker.add_argument(
        "--shards",
        required=True,
        help="shard ids this worker owns: comma-separated ids and A-B ranges "
        "(e.g. '0-3' or '0,2,5'); the full worker set must cover every "
        "shard of the index exactly once",
    )
    shard_worker.add_argument(
        "--host", default="127.0.0.1", help="TCP bind address (default 127.0.0.1)"
    )
    shard_worker.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP bind port; 0 picks an ephemeral port (default) — the "
        "resolved address is printed on the 'ready' line",
    )
    shard_worker.add_argument(
        "--socket",
        type=Path,
        default=None,
        help="serve on a unix domain socket at PATH instead of TCP",
    )
    shard_worker.set_defaults(handler=_cmd_shard_worker)

    experiments = subparsers.add_parser("experiments", help="regenerate a paper table/figure")
    experiments.add_argument(
        "which",
        choices=["figure1", "figure2", "table1", "section7.1", "section7.2", "motivating"],
    )
    experiments.add_argument("--scale", type=float, default=0.25)
    experiments.add_argument("--seed", type=int, default=0)
    experiments.set_defaults(handler=_cmd_experiments)

    lint = subparsers.add_parser(
        "lint",
        help="run the repo-specific static-analysis suite (RPL rules)",
    )
    _add_lint_arguments(lint)
    lint.set_defaults(handler=_cmd_lint)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())

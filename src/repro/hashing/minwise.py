"""Minwise hashing for the MinHash LSH baseline.

MinHash [Broder et al., 1997] represents each set by the minimum hash value
of its members under a random permutation of the universe; the probability
that two sets agree on a MinHash equals their Jaccard similarity.  The
baseline index in :mod:`repro.baselines.minhash` bands together ``r``
signatures per table over ``L`` tables.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.hashing.random_source import derive_seed
from repro.hashing.tabulation import TabulationHash


def minhash_signature(items: Sequence[int], hashers: Sequence[TabulationHash]) -> np.ndarray:
    """Return the MinHash signature of ``items`` under each hasher.

    Parameters
    ----------
    items:
        The set members (item ids).  Must be non-empty.
    hashers:
        One tabulation hash per signature coordinate.

    Returns
    -------
    numpy.ndarray
        Unsigned 64-bit array of length ``len(hashers)`` whose ``k``-th entry
        is ``min_{i in items} h_k(i)``.
    """
    if len(items) == 0:
        raise ValueError("cannot compute a MinHash signature of an empty set")
    item_array = np.asarray(list(items), dtype=np.uint64)
    signature = np.empty(len(hashers), dtype=np.uint64)
    for index, hasher in enumerate(hashers):
        signature[index] = hasher.hash_array(item_array).min()
    return signature


class MinwiseHasher:
    """Produces MinHash signatures of a fixed length for arbitrary sets."""

    def __init__(self, num_hashes: int, seed: int) -> None:
        if num_hashes <= 0:
            raise ValueError(f"num_hashes must be positive, got {num_hashes}")
        self._num_hashes = int(num_hashes)
        self._seed = int(seed)
        self._hashers = [
            TabulationHash(derive_seed(seed, "minwise", index)) for index in range(num_hashes)
        ]

    @property
    def num_hashes(self) -> int:
        """Length of the signatures produced by :meth:`signature`."""
        return self._num_hashes

    @property
    def seed(self) -> int:
        return self._seed

    def signature(self, items: Sequence[int]) -> np.ndarray:
        """MinHash signature of ``items`` (see :func:`minhash_signature`)."""
        return minhash_signature(items, self._hashers)

    def signatures(self, sets: Iterable[Sequence[int]]) -> np.ndarray:
        """Stacked signatures for an iterable of sets (one row per set)."""
        rows = [self.signature(items) for items in sets]
        if not rows:
            return np.empty((0, self._num_hashes), dtype=np.uint64)
        return np.vstack(rows)

    @staticmethod
    def estimate_jaccard(signature_a: np.ndarray, signature_b: np.ndarray) -> float:
        """Estimate Jaccard similarity as the fraction of agreeing coordinates."""
        if signature_a.shape != signature_b.shape:
            raise ValueError(
                "signatures must have the same shape, got "
                f"{signature_a.shape} and {signature_b.shape}"
            )
        if signature_a.size == 0:
            return 0.0
        return float(np.mean(signature_a == signature_b))

    def __repr__(self) -> str:
        return f"MinwiseHasher(num_hashes={self._num_hashes}, seed={self._seed})"

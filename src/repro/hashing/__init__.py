"""Hashing substrate used throughout the library.

The locality-sensitive filtering construction of the paper requires, for each
recursion level ``j``, a hash function ``h_j`` mapping paths (tuples of item
ids) to a uniform value in ``[0, 1)``.  The analysis only needs pairwise
independence, which :class:`~repro.hashing.pairwise.PairwiseHashFamily`
provides.  Tabulation hashing and minwise hashing are provided for the
baseline implementations (MinHash LSH) and for users who want stronger
independence guarantees.
"""

from repro.hashing.pairwise import PairwiseHash, PairwiseHashFamily, PathHasher
from repro.hashing.tabulation import TabulationHash
from repro.hashing.minwise import MinwiseHasher, minhash_signature
from repro.hashing.random_source import RandomSource, derive_seed, split_seed

__all__ = [
    "PairwiseHash",
    "PairwiseHashFamily",
    "PathHasher",
    "TabulationHash",
    "MinwiseHasher",
    "minhash_signature",
    "RandomSource",
    "derive_seed",
    "split_seed",
]

"""Simple tabulation hashing.

Tabulation hashing (Zobrist hashing) is 3-independent and has strong
concentration properties far beyond its formal independence.  We provide it
as an alternative to the multiply-add pairwise family for users who want
stronger guarantees in the filter construction, and it is used internally by
the MinHash baseline to permute item ids.
"""

from __future__ import annotations

import numpy as np

from repro.hashing.random_source import derive_seed

_MASK_64 = (1 << 64) - 1


class TabulationHash:
    """Simple tabulation hash of 32-bit keys to 64-bit values.

    The key is split into four 8-bit characters; each character indexes a
    random table of 64-bit values and the results are XOR-ed together.
    """

    #: Number of 8-bit characters in a 32-bit key.
    NUM_CHARACTERS = 4

    def __init__(self, seed: int) -> None:
        generator = np.random.default_rng(derive_seed(seed, "tabulation"))
        self._tables = generator.integers(
            0, 1 << 63, size=(self.NUM_CHARACTERS, 256), dtype=np.uint64
        )
        # Spread entropy into the top bit as well (integers() above excludes it).
        top_bits = generator.integers(0, 2, size=(self.NUM_CHARACTERS, 256), dtype=np.uint64)
        self._tables = self._tables | (top_bits << np.uint64(63))

    def hash_int(self, key: int) -> int:
        """Hash a non-negative integer key (reduced mod 2^32) to 64 bits."""
        key = int(key) & 0xFFFFFFFF
        result = np.uint64(0)
        for character_index in range(self.NUM_CHARACTERS):
            byte = (key >> (8 * character_index)) & 0xFF
            result ^= self._tables[character_index, byte]
        return int(result)

    def hash_unit(self, key: int) -> float:
        """Hash a key to a float in ``[0, 1)``."""
        return self.hash_int(key) / float(1 << 64)

    def hash_array(self, keys: np.ndarray) -> np.ndarray:
        """Vectorised hashing of an array of non-negative integer keys."""
        keys = np.asarray(keys, dtype=np.uint64) & np.uint64(0xFFFFFFFF)
        result = np.zeros(keys.shape, dtype=np.uint64)
        for character_index in range(self.NUM_CHARACTERS):
            bytes_ = (keys >> np.uint64(8 * character_index)) & np.uint64(0xFF)
            result ^= self._tables[character_index, bytes_.astype(np.int64)]
        return result

    def hash_array_unit(self, keys: np.ndarray) -> np.ndarray:
        """Vectorised hashing of keys to floats in ``[0, 1)``."""
        return self.hash_array(keys).astype(np.float64) / float(1 << 64)

    def __call__(self, key: int) -> int:
        return self.hash_int(key)

    def __repr__(self) -> str:
        return "TabulationHash()"

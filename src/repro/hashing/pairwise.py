"""Pairwise independent hashing of integers and paths to ``[0, 1)``.

The Chosen Path style constructions of the paper need, at every recursion
level ``j``, a hash function ``h_j : [d]^j -> [0, 1)`` drawn from a pairwise
independent family.  Two vectors that consider extending the *same* path
``v ∘ i`` must see the *same* hash value, so the hash must be a deterministic
function of the path content and the level, not of the vector.

We implement the classic multiply-shift / multiply-add-prime construction
over a Mersenne prime, composed with a strong 64-bit mixer to turn a path
(tuple of item ids) into a single integer key.  The mixer (SplitMix64) is not
itself part of the pairwise-independence argument; it only serves to collapse
variable-length tuples into 64-bit keys with negligible collision
probability, after which the multiply-add-prime step provides the pairwise
independence used by Lemma 5 of the paper.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.hashing.random_source import derive_seed

#: Mersenne prime 2^61 - 1, used as the field size for multiply-add hashing.
MERSENNE_PRIME = (1 << 61) - 1

_MASK_64 = (1 << 64) - 1


def splitmix64(value: int) -> int:
    """Mix a 64-bit integer using the SplitMix64 finalizer.

    This is a bijection on 64-bit integers with excellent avalanche
    behaviour; we use it to fold path elements into a single key.
    """
    value = (value + 0x9E3779B97F4A7C15) & _MASK_64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK_64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK_64
    return (value ^ (value >> 31)) & _MASK_64


def fold_path(path: Sequence[int]) -> int:
    """Fold a path (sequence of item ids) into a single 64-bit key.

    Parameters
    ----------
    path:
        Ordered item indices forming the path.
    """
    state = 0x243F6A8885A308D3  # pi-derived constant, arbitrary non-zero start
    for element in path:
        state = splitmix64(state ^ ((int(element) + 1) & _MASK_64))
    return state


def extend_key(prefix_key: int, item: int) -> int:
    """Key of the path ``v ∘ item`` given the folded key of ``v``.

    Equivalent to ``fold_path(tuple(v) + (item,))``, but avoids re-walking the
    prefix when many candidate extensions of the same path are evaluated.
    """
    return splitmix64(prefix_key ^ ((int(item) + 1) & _MASK_64))


class PairwiseHash:
    """A single pairwise independent hash function ``h : Z -> [0, 1)``.

    Implemented as ``h(x) = ((a * x + b) mod p) / p`` with ``p`` the Mersenne
    prime ``2^61 - 1`` and ``a, b`` drawn uniformly (``a`` non-zero).  For
    distinct keys ``x != y`` the pair ``(h(x), h(y))`` is uniform over the
    grid ``{0, 1/p, ..., (p-1)/p}^2``, which is the property required by the
    second-moment argument in the paper's Lemma 5.
    """

    def __init__(self, seed: int):
        generator = np.random.default_rng(derive_seed(seed, "pairwise-hash"))
        self._a = int(generator.integers(1, MERSENNE_PRIME))
        self._b = int(generator.integers(0, MERSENNE_PRIME))

    @property
    def coefficients(self) -> tuple[int, int]:
        """The ``(a, b)`` coefficients of the multiply-add hash."""
        return self._a, self._b

    def hash_int(self, key: int) -> float:
        """Hash an integer key to a float in ``[0, 1)``."""
        value = (self._a * (int(key) % MERSENNE_PRIME) + self._b) % MERSENNE_PRIME
        return value / MERSENNE_PRIME

    def hash_many(self, keys: np.ndarray) -> np.ndarray:
        """Hash an array of integer keys to floats in ``[0, 1)``.

        Uses Python-object arithmetic per element to avoid 64-bit overflow;
        keys are expected to be modest in number (one per candidate
        extension), so this is not a hot loop in vectorised form.
        """
        out = np.empty(len(keys), dtype=np.float64)
        a = self._a
        b = self._b
        for index, key in enumerate(keys):
            out[index] = ((a * (int(key) % MERSENNE_PRIME) + b) % MERSENNE_PRIME) / MERSENNE_PRIME
        return out

    def __call__(self, key: int) -> float:
        return self.hash_int(key)

    def __repr__(self) -> str:
        return f"PairwiseHash(a={self._a}, b={self._b})"


class PairwiseHashFamily:
    """A family of independent :class:`PairwiseHash` functions, one per level.

    The family lazily instantiates new levels as the recursion deepens, so
    callers do not need to know the maximum path length in advance.
    """

    def __init__(self, seed: int):
        self._seed = int(seed)
        self._levels: list[PairwiseHash] = []

    @property
    def seed(self) -> int:
        return self._seed

    def level(self, index: int) -> PairwiseHash:
        """Return the hash function for recursion level ``index`` (0-based)."""
        if index < 0:
            raise IndexError(f"hash level must be non-negative, got {index}")
        while len(self._levels) <= index:
            self._levels.append(PairwiseHash(derive_seed(self._seed, "level", len(self._levels))))
        return self._levels[index]

    def __len__(self) -> int:
        return len(self._levels)

    def __repr__(self) -> str:
        return f"PairwiseHashFamily(seed={self._seed}, instantiated_levels={len(self._levels)})"


class PathHasher:
    """Hashes path extensions ``v ∘ i`` to ``[0, 1)`` per recursion level.

    This is the object actually consumed by the path-generation engine.  Two
    different vectors extending the same path with the same item at the same
    level observe the same hash value, which is what makes a shared path a
    shared filter.
    """

    def __init__(self, seed: int):
        self._family = PairwiseHashFamily(seed)
        self._seed = int(seed)

    @property
    def seed(self) -> int:
        return self._seed

    def extension_value(self, path: Sequence[int], item: int, level: int) -> float:
        """Return ``h_{level}(path ∘ item)`` as a float in ``[0, 1)``."""
        key = extend_key(fold_path(path), item)
        return self._family.level(level).hash_int(key)

    def extension_values(
        self, path: Sequence[int], items: Iterable[int], level: int
    ) -> np.ndarray:
        """Vector of hash values for extending ``path`` with each of ``items``."""
        hash_function = self._family.level(level)
        prefix_key = fold_path(path)
        values = [hash_function.hash_int(extend_key(prefix_key, item)) for item in items]
        return np.asarray(values, dtype=np.float64)

    def extension_values_from_key(
        self, prefix_key: int, items: Iterable[int], level: int
    ) -> np.ndarray:
        """Like :meth:`extension_values` but reusing a precomputed prefix key."""
        hash_function = self._family.level(level)
        values = [hash_function.hash_int(extend_key(prefix_key, item)) for item in items]
        return np.asarray(values, dtype=np.float64)

    def path_key(self, path: Sequence[int]) -> int:
        """Stable 64-bit key identifying a path (used by inverted indexes)."""
        return fold_path(path)

    def __repr__(self) -> str:
        return f"PathHasher(seed={self._seed})"

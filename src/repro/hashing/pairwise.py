"""Pairwise independent hashing of integers and paths to ``[0, 1)``.

The Chosen Path style constructions of the paper need, at every recursion
level ``j``, a hash function ``h_j : [d]^j -> [0, 1)`` drawn from a pairwise
independent family.  Two vectors that consider extending the *same* path
``v ∘ i`` must see the *same* hash value, so the hash must be a deterministic
function of the path content and the level, not of the vector.

We implement the classic multiply-shift / multiply-add-prime construction
over a Mersenne prime, composed with a strong 64-bit mixer to turn a path
(tuple of item ids) into a single integer key.  The mixer (SplitMix64) is not
itself part of the pairwise-independence argument; it only serves to collapse
variable-length tuples into 64-bit keys with negligible collision
probability, after which the multiply-add-prime step provides the pairwise
independence used by Lemma 5 of the paper.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.hashing.random_source import derive_seed

#: Mersenne prime 2^61 - 1, used as the field size for multiply-add hashing.
MERSENNE_PRIME = (1 << 61) - 1

_MASK_64 = (1 << 64) - 1

_PRIME_U64 = np.uint64(MERSENNE_PRIME)
_PRIME_FLOAT = float(MERSENNE_PRIME)
_LOW32_U64 = np.uint64((1 << 32) - 1)
_LOW29_U64 = np.uint64((1 << 29) - 1)


def _mod_mersenne(values: np.ndarray) -> np.ndarray:
    """Reduce an array of uint64 values modulo ``2^61 - 1`` exactly.

    Uses the identity ``2^61 ≡ 1 (mod p)``: folding the top bits down gives a
    value below ``2p``, after which a single conditional subtract finishes the
    reduction.
    """
    folded = (values & _PRIME_U64) + (values >> np.uint64(61))
    return np.where(folded >= _PRIME_U64, folded - _PRIME_U64, folded)


def splitmix64(value: int) -> int:
    """Mix a 64-bit integer using the SplitMix64 finalizer.

    This is a bijection on 64-bit integers with excellent avalanche
    behaviour; we use it to fold path elements into a single key.
    """
    value = (value + 0x9E3779B97F4A7C15) & _MASK_64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK_64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK_64
    return (value ^ (value >> 31)) & _MASK_64


def splitmix64_array(values: np.ndarray) -> np.ndarray:
    """Vectorised :func:`splitmix64` over a uint64 array (bit-identical)."""
    values = (values + np.uint64(0x9E3779B97F4A7C15))
    values = (values ^ (values >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    values = (values ^ (values >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return values ^ (values >> np.uint64(31))


def fold_path(path: Sequence[int]) -> int:
    """Fold a path (sequence of item ids) into a single 64-bit key.

    Parameters
    ----------
    path:
        Ordered item indices forming the path.
    """
    state = EMPTY_PATH_KEY  # pi-derived constant, arbitrary non-zero start
    for element in path:
        state = splitmix64(state ^ ((int(element) + 1) & _MASK_64))
    return state


def fold_paths_csr(path_items: np.ndarray, path_offsets: np.ndarray) -> np.ndarray:
    """Folded keys of many paths stored in CSR form, level-synchronously.

    Parameters
    ----------
    path_items:
        Item ids of all paths, concatenated.
    path_offsets:
        Monotone offsets of length ``num_paths + 1``; path ``k`` occupies
        ``path_items[path_offsets[k]:path_offsets[k + 1]]``.

    Bit-identical to calling :func:`fold_path` on each path, but folds one
    recursion level of every path per vectorised call, so validating the keys
    of a whole serialised postings store costs ``O(max_depth)`` array
    operations instead of a Python loop per path element.
    """
    path_items = np.ascontiguousarray(path_items, dtype=np.int64)
    path_offsets = np.ascontiguousarray(path_offsets, dtype=np.int64)
    num_paths = path_offsets.size - 1
    keys = np.full(num_paths, np.uint64(EMPTY_PATH_KEY), dtype=np.uint64)
    if num_paths == 0:
        return keys
    lengths = np.diff(path_offsets)
    starts = path_offsets[:-1]
    for level in range(int(lengths.max(initial=0))):
        alive = np.flatnonzero(lengths > level)
        items = path_items[starts[alive] + level]
        keys[alive] = extend_keys(keys[alive], items)
    return keys


#: Folded key of the empty path — the start state of :func:`fold_path`.
EMPTY_PATH_KEY = 0x243F6A8885A308D3


def extend_key(prefix_key: int, item: int) -> int:
    """Key of the path ``v ∘ item`` given the folded key of ``v``.

    Equivalent to ``fold_path(tuple(v) + (item,))``, but avoids re-walking the
    prefix when many candidate extensions of the same path are evaluated.
    """
    return splitmix64(prefix_key ^ ((int(item) + 1) & _MASK_64))


def extend_keys(prefix_keys: np.ndarray, items: np.ndarray) -> np.ndarray:
    """Vectorised :func:`extend_key`: extended keys for many (path, item) pairs.

    Parameters
    ----------
    prefix_keys:
        uint64 array of folded prefix keys, one per extension considered.
    items:
        Integer array of the items extending each prefix (non-negative).

    Bit-identical to calling :func:`extend_key` elementwise.
    """
    prefix_keys = np.ascontiguousarray(prefix_keys, dtype=np.uint64)
    item_keys = np.ascontiguousarray(items, dtype=np.uint64) + np.uint64(1)
    return splitmix64_array(prefix_keys ^ item_keys)


def hash_keys(keys: np.ndarray, a: int, b: int) -> np.ndarray:
    """Multiply-add-prime hash of a uint64 key array with coefficients ``(a, b)``.

    Computes ``((a * (x mod p) + b) mod p) / p`` with ``p = 2^61 - 1``,
    carried out entirely in uint64 arithmetic by splitting both operands into
    32-bit halves and folding the partial products with ``2^61 ≡ 1 (mod p)``
    (``2^64 ≡ 8`` and ``2^32 · m ≡ (m >> 29) + ((m & (2^29−1)) << 32)``), so
    no intermediate ever exceeds 64 bits.  Bit-identical to
    :meth:`PairwiseHash.hash_int` elementwise; the compiled kernels mirror
    this exact arithmetic scalar-for-scalar.
    """
    keys_u64 = np.ascontiguousarray(keys, dtype=np.uint64)
    reduced = _mod_mersenne(keys_u64)

    a_hi = np.uint64(a >> 32)
    a_lo = np.uint64(a & ((1 << 32) - 1))
    x_hi = reduced >> np.uint64(32)
    x_lo = reduced & _LOW32_U64

    # a·x = a_hi·x_hi·2^64 + (a_hi·x_lo + a_lo·x_hi)·2^32 + a_lo·x_lo,
    # with every partial product below 2^64.
    high = _mod_mersenne(np.uint64(8) * (a_hi * x_hi))
    middle = _mod_mersenne(a_hi * x_lo + a_lo * x_hi)
    middle = _mod_mersenne(
        (middle >> np.uint64(29)) + ((middle & _LOW29_U64) << np.uint64(32))
    )
    low = _mod_mersenne(a_lo * x_lo)

    total = _mod_mersenne(high + middle + low + np.uint64(b))
    return total.astype(np.float64) / float(MERSENNE_PRIME)


class PairwiseHash:
    """A single pairwise independent hash function ``h : Z -> [0, 1)``.

    Implemented as ``h(x) = ((a * x + b) mod p) / p`` with ``p`` the Mersenne
    prime ``2^61 - 1`` and ``a, b`` drawn uniformly (``a`` non-zero).  For
    distinct keys ``x != y`` the pair ``(h(x), h(y))`` is uniform over the
    grid ``{0, 1/p, ..., (p-1)/p}^2``, which is the property required by the
    second-moment argument in the paper's Lemma 5.
    """

    def __init__(self, seed: int) -> None:
        generator = np.random.default_rng(derive_seed(seed, "pairwise-hash"))
        self._a = int(generator.integers(1, MERSENNE_PRIME))
        self._b = int(generator.integers(0, MERSENNE_PRIME))

    @property
    def coefficients(self) -> tuple[int, int]:
        """The ``(a, b)`` coefficients of the multiply-add hash."""
        return self._a, self._b

    def hash_int(self, key: int) -> float:
        """Hash an integer key to a float in ``[0, 1)``.

        The float conversion happens before the division (rather than
        dividing exact integers) so that the scalar and the vectorised
        :meth:`hash_many` paths produce bit-identical values.
        """
        value = (self._a * (int(key) % MERSENNE_PRIME) + self._b) % MERSENNE_PRIME
        return float(value) / _PRIME_FLOAT

    def hash_many(self, keys: np.ndarray) -> np.ndarray:
        """Hash an array of integer keys to floats in ``[0, 1)``.

        Fully vectorised and bit-identical to :meth:`hash_int`; delegates to
        the module-level :func:`hash_keys`, which the compiled kernels also
        mirror scalar-for-scalar.
        """
        return hash_keys(keys, self._a, self._b)

    def __call__(self, key: int) -> float:
        return self.hash_int(key)

    def __repr__(self) -> str:
        return f"PairwiseHash(a={self._a}, b={self._b})"


class PairwiseHashFamily:
    """A family of independent :class:`PairwiseHash` functions, one per level.

    The family lazily instantiates new levels as the recursion deepens, so
    callers do not need to know the maximum path length in advance.
    """

    def __init__(self, seed: int) -> None:
        self._seed = int(seed)
        self._levels: list[PairwiseHash] = []

    @property
    def seed(self) -> int:
        return self._seed

    def level(self, index: int) -> PairwiseHash:
        """Return the hash function for recursion level ``index`` (0-based)."""
        if index < 0:
            raise IndexError(f"hash level must be non-negative, got {index}")
        while len(self._levels) <= index:
            self._levels.append(PairwiseHash(derive_seed(self._seed, "level", len(self._levels))))
        return self._levels[index]

    def __len__(self) -> int:
        return len(self._levels)

    def __repr__(self) -> str:
        return f"PairwiseHashFamily(seed={self._seed}, instantiated_levels={len(self._levels)})"


class PathHasher:
    """Hashes path extensions ``v ∘ i`` to ``[0, 1)`` per recursion level.

    This is the object actually consumed by the path-generation engine.  Two
    different vectors extending the same path with the same item at the same
    level observe the same hash value, which is what makes a shared path a
    shared filter.
    """

    def __init__(self, seed: int) -> None:
        self._family = PairwiseHashFamily(seed)
        self._seed = int(seed)

    @property
    def seed(self) -> int:
        return self._seed

    def extension_value(self, path: Sequence[int], item: int, level: int) -> float:
        """Return ``h_{level}(path ∘ item)`` as a float in ``[0, 1)``."""
        key = extend_key(fold_path(path), item)
        return self._family.level(level).hash_int(key)

    def extension_values(
        self, path: Sequence[int], items: Iterable[int], level: int
    ) -> np.ndarray:
        """Vector of hash values for extending ``path`` with each of ``items``."""
        return self.extension_values_from_key(fold_path(path), items, level)

    def extension_values_from_key(
        self, prefix_key: int, items: Iterable[int], level: int
    ) -> np.ndarray:
        """Like :meth:`extension_values` but reusing a precomputed prefix key."""
        item_array = np.fromiter((int(item) for item in items), dtype=np.int64)
        prefix_keys = np.full(item_array.size, np.uint64(prefix_key), dtype=np.uint64)
        return self.extension_values_flat(prefix_keys, item_array, level)

    def extension_values_flat(
        self, prefix_keys: np.ndarray, items: np.ndarray, level: int
    ) -> np.ndarray:
        """Hash many path extensions at once, all at the same level.

        Parameters
        ----------
        prefix_keys:
            uint64 array of folded prefix keys — one per extension, so
            extensions of *different* paths (and different queries) can be
            hashed in a single call.
        items:
            The item extending each prefix (same length as ``prefix_keys``).
        level:
            The recursion level shared by every extension in the call.

        This is the batched-query hot path: one call hashes every candidate
        extension of an entire batch frontier.
        """
        return self._family.level(level).hash_many(extend_keys(prefix_keys, items))

    def extension_pairs_flat(
        self, prefix_keys: np.ndarray, items: np.ndarray, level: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Like :meth:`extension_values_flat` but also returns the extended keys.

        The keys are the folded identifiers of each extended path
        ``v ∘ item``; a batched generator reuses them as prefix keys at the
        next level, avoiding any per-path re-folding.
        """
        keys = extend_keys(prefix_keys, items)
        return keys, self._family.level(level).hash_many(keys)

    def level_coefficients(self, level: int) -> tuple[int, int]:
        """The ``(a, b)`` multiply-add coefficients of a recursion level.

        Compiled kernels take the raw coefficients and reproduce
        :func:`hash_keys` internally rather than calling back into Python.
        """
        return self._family.level(level).coefficients

    def path_key(self, path: Sequence[int]) -> int:
        """Stable 64-bit key identifying a path (used by inverted indexes)."""
        return fold_path(path)

    def ensure_levels(self, count: int) -> None:
        """Eagerly instantiate the first ``count`` per-level hash functions.

        Levels are otherwise created lazily on first use, which is not safe
        when multiple threads share one hasher; call this before any
        concurrent use.
        """
        if count > 0:
            self._family.level(count - 1)

    def __repr__(self) -> str:
        return f"PathHasher(seed={self._seed})"

"""Seed management for reproducible randomized data structures.

Every randomized component in the library (path hashers, dataset generators,
baseline indexes) takes an explicit integer seed.  This module centralises the
way seeds are derived from each other so that, for instance, an index built
with seed 7 always draws the same hash functions regardless of the order in
which its sub-components are constructed.
"""

from __future__ import annotations

import hashlib
from typing import Iterator

import numpy as np

_MASK_63 = (1 << 63) - 1


def derive_seed(base_seed: int, *labels: object) -> int:
    """Derive a new 63-bit seed from ``base_seed`` and a sequence of labels.

    The derivation is a SHA-256 hash of the textual representation of the
    base seed and labels, so it is stable across processes and Python
    versions (unlike the built-in ``hash``).

    Parameters
    ----------
    base_seed:
        The parent seed.
    labels:
        Arbitrary hashable labels (strings, integers) distinguishing the
        derived stream, e.g. ``derive_seed(seed, "level", 3)``.

    Returns
    -------
    int
        A non-negative integer strictly below ``2**63``.
    """
    digest = hashlib.sha256()
    digest.update(repr(int(base_seed)).encode("utf-8"))
    for label in labels:
        digest.update(b"\x1f")
        digest.update(repr(label).encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "little") & _MASK_63


def split_seed(base_seed: int, count: int, label: str = "split") -> list[int]:
    """Derive ``count`` independent seeds from ``base_seed``.

    Parameters
    ----------
    base_seed:
        The parent seed.
    count:
        Number of child seeds to derive.  Must be non-negative.
    label:
        Namespace label so different call sites do not collide.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    return [derive_seed(base_seed, label, index) for index in range(count)]


class RandomSource:
    """A seeded random source wrapping :class:`numpy.random.Generator`.

    The class exists so that components can pass around a single object that
    yields both numpy generators (for vectorised sampling) and derived child
    seeds (for constructing further reproducible components).
    """

    def __init__(self, seed: int) -> None:
        if seed < 0:
            raise ValueError(f"seed must be non-negative, got {seed}")
        self._seed = int(seed)
        self._generator = np.random.default_rng(self._seed)

    @property
    def seed(self) -> int:
        """The seed this source was created with."""
        return self._seed

    @property
    def generator(self) -> np.random.Generator:
        """The underlying numpy generator (shared, stateful)."""
        return self._generator

    def child(self, *labels: object) -> "RandomSource":
        """Return a new independent :class:`RandomSource` derived by labels."""
        return RandomSource(derive_seed(self._seed, *labels))

    def child_seeds(self, count: int, label: str = "child") -> list[int]:
        """Return ``count`` derived seeds (see :func:`split_seed`)."""
        return split_seed(self._seed, count, label=label)

    def fresh_generator(self, *labels: object) -> np.random.Generator:
        """Return a new numpy generator seeded by the derived labels."""
        return np.random.default_rng(derive_seed(self._seed, *labels))

    def integers(
        self, low: int, high: int, size: int | None = None
    ) -> np.int64 | np.ndarray:
        """Sample integers in ``[low, high)`` from the shared generator."""
        return self._generator.integers(low, high, size=size)

    def uniform(self, size: int | None = None) -> float | np.ndarray:
        """Sample uniform floats in ``[0, 1)`` from the shared generator."""
        return self._generator.random(size)

    def stream(self, label: str = "stream") -> Iterator[int]:
        """Yield an endless stream of derived seeds."""
        index = 0
        while True:
            yield derive_seed(self._seed, label, index)
            index += 1

    def __repr__(self) -> str:
        return f"RandomSource(seed={self._seed})"

#!/usr/bin/env python
"""CI docs gate: relative links resolve and the CLI help snapshot is fresh.

Two checks, stdlib-only:

* every relative markdown link in ``README.md`` and ``docs/*.md`` points at
  a file or directory that exists (external ``http(s)``/``mailto`` links,
  pure ``#anchor`` links, and GitHub-web-relative links that escape the
  repository root — like the CI badge — are skipped);
* the fenced block between ``<!-- help:start -->`` and ``<!-- help:end -->``
  in ``docs/cli.md`` matches the live ``python -m repro --help`` output
  (rendered at ``COLUMNS=100``), so the committed reference cannot drift
  from the argparse definitions.

Run from anywhere::

    python tools/check_docs.py
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: ``[text](target)`` links, excluding images' surrounding ``!`` is fine —
#: image targets must resolve too.
_LINK_PATTERN = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

_HELP_BLOCK_PATTERN = re.compile(
    r"<!-- help:start -->\n```\n(.*?)```\n<!-- help:end -->", re.DOTALL
)


def _doc_files() -> list[Path]:
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [path for path in files if path.exists()]


def check_links() -> list[str]:
    """Return one error string per broken relative link."""
    errors: list[str] = []
    for doc in _doc_files():
        text = doc.read_text(encoding="utf-8")
        for match in _LINK_PATTERN.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:
                continue
            resolved = (doc.parent / path_part).resolve()
            if not resolved.is_relative_to(REPO_ROOT):
                continue  # GitHub-web-relative (e.g. the CI badge)
            if not resolved.exists():
                errors.append(
                    f"{doc.relative_to(REPO_ROOT)}: broken link {target!r} "
                    f"(resolved to {resolved.relative_to(REPO_ROOT)})"
                )
    return errors


def check_help_snapshot() -> list[str]:
    """Return errors when docs/cli.md's help block drifts from the CLI."""
    cli_doc = REPO_ROOT / "docs" / "cli.md"
    if not cli_doc.exists():
        return ["docs/cli.md does not exist"]
    text = cli_doc.read_text(encoding="utf-8")
    match = _HELP_BLOCK_PATTERN.search(text)
    if match is None:
        return [
            "docs/cli.md has no <!-- help:start -->/<!-- help:end --> "
            "fenced block to snapshot-test"
        ]
    documented = match.group(1)

    env = dict(os.environ)
    env["COLUMNS"] = "100"
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    completed = subprocess.run(
        [sys.executable, "-m", "repro", "--help"],
        capture_output=True,
        text=True,
        env=env,
        check=False,
    )
    if completed.returncode != 0:
        return [f"python -m repro --help failed:\n{completed.stderr}"]
    live = completed.stdout
    if documented.rstrip("\n") == live.rstrip("\n"):
        return []
    doc_lines = documented.rstrip("\n").splitlines()
    live_lines = live.rstrip("\n").splitlines()
    detail = next(
        (
            f"first difference at line {i + 1}:\n"
            f"  docs: {doc!r}\n  live: {liv!r}"
            for i, (doc, liv) in enumerate(zip(doc_lines, live_lines))
            if doc != liv
        ),
        f"line counts differ: docs {len(doc_lines)}, live {len(live_lines)}",
    )
    return [
        "docs/cli.md help snapshot is stale — regenerate with "
        "COLUMNS=100 PYTHONPATH=src python -m repro --help\n" + detail
    ]


def main() -> int:
    errors = check_links() + check_help_snapshot()
    for error in errors:
        print(f"FAIL: {error}")
    if errors:
        print(f"\n{len(errors)} docs problem(s)")
        return 1
    docs = ", ".join(str(path.relative_to(REPO_ROOT)) for path in _doc_files())
    print(f"OK: links resolve and the CLI help snapshot is fresh ({docs})")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""CI serving smoke: boot `repro serve`, hammer it, assert real coalescing.

Starts a real server subprocess on an ephemeral port over the given saved
index, fires concurrent single-query requests at it from a thread pool,
and then asserts — via ``/stats`` — that server-side micro-batching
actually coalesced them:

* every request answered 200 and every response carries a match field;
* ``engine_calls`` < requests (fewer engine calls than requests);
* ``coalesced_calls`` >= 1 and ``mean_batch_occupancy`` > 1.0;
* ``/healthz`` reports ok before and after the burst.

With ``--shard-procs N`` the server runs in router-backed multi-process
mode (one shard router fanning probes out to N spawned shard workers) and
the smoke additionally asserts the per-shard surface:

* ``/stats`` carries a ``shards`` entry with exactly N workers, all alive,
  and a positive total request count after the burst;
* ``/metrics`` exposes the ``repro_shard_*`` families.

Usage::

    PYTHONPATH=src python tools/serving_smoke.py INDEX_PATH QUERIES_FILE \
        [--shard-procs N]
"""

from __future__ import annotations

import json
import re
import subprocess
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from http.client import HTTPConnection
from pathlib import Path

NUM_REQUESTS = 64
NUM_CLIENTS = 16

_READY_PATTERN = re.compile(r"listening on http://127\.0\.0\.1:(\d+)")


def _read_queries(path: Path, count: int) -> list[list[int]]:
    queries: list[list[int]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            items = sorted({int(token) for token in line.split()})
            if items:
                queries.append(items)
    if not queries:
        raise SystemExit(f"no queries in {path}")
    return [queries[i % len(queries)] for i in range(count)]


def _get(port: int, path: str) -> tuple[int, dict]:
    connection = HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        connection.request("GET", path)
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


def _post_query(port: int, query: list[int]) -> tuple[int, dict]:
    connection = HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        body = json.dumps({"query": query}).encode()
        connection.request(
            "POST", "/query", body, {"Content-Type": "application/json"}
        )
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


def main(argv: list[str]) -> int:
    shard_procs = None
    positional: list[str] = []
    arguments = list(argv)
    while arguments:
        argument = arguments.pop(0)
        if argument == "--shard-procs":
            if not arguments:
                print(__doc__)
                return 2
            shard_procs = int(arguments.pop(0))
        else:
            positional.append(argument)
    if len(positional) != 2:
        print(__doc__)
        return 2
    index_path, queries_file = positional
    queries = _read_queries(Path(queries_file), NUM_REQUESTS)

    command = [
        sys.executable,
        "-m",
        "repro",
        "serve",
        index_path,
        "--port",
        "0",
        "--batch-window-ms",
        "5",
        "--max-batch-size",
        "64",
    ]
    if shard_procs is not None:
        command += ["--shard-procs", str(shard_procs)]
    server = subprocess.Popen(command, stdout=subprocess.PIPE, text=True)
    try:
        deadline = time.monotonic() + 60
        port = None
        assert server.stdout is not None
        while time.monotonic() < deadline:
            line = server.stdout.readline()
            if not line:
                raise SystemExit("server exited before printing the ready line")
            match = _READY_PATTERN.search(line)
            if match:
                port = int(match.group(1))
                break
        if port is None:
            raise SystemExit("server never printed the ready line")

        status, payload = _get(port, "/healthz")
        assert status == 200 and payload["status"] == "ok", (status, payload)

        with ThreadPoolExecutor(max_workers=NUM_CLIENTS) as pool:
            responses = list(pool.map(lambda q: _post_query(port, q), queries))
        bad = [(s, p) for s, p in responses if s != 200 or "match" not in p]
        assert not bad, f"{len(bad)} bad responses, first: {bad[0]}"

        status, stats = _get(port, "/stats")
        assert status == 200, status
        (index_stats,) = stats["indexes"].values()
        engine_calls = index_stats["engine_calls"]
        coalesced = index_stats["coalesced_calls"]
        occupancy = index_stats["mean_batch_occupancy"]
        assert index_stats["queries_executed"] == NUM_REQUESTS, index_stats
        assert engine_calls < NUM_REQUESTS, (
            f"no coalescing: {engine_calls} engine calls for {NUM_REQUESTS} requests"
        )
        assert coalesced >= 1, f"coalesced_calls={coalesced}"
        assert occupancy > 1.0, f"mean_batch_occupancy={occupancy}"
        query_metrics = stats["endpoints"]["/query"]
        assert query_metrics["requests"] == NUM_REQUESTS, query_metrics
        assert query_metrics["errors"] == 0, query_metrics

        shard_note = ""
        if shard_procs is not None:
            shards = index_stats.get("shards")
            assert shards is not None, "routed serve exported no shards stats"
            per_worker = shards["per_worker"]
            assert len(per_worker) == shard_procs, per_worker
            assert all(entry["alive"] for entry in per_worker), per_worker
            shard_requests = sum(entry["requests"] for entry in per_worker)
            assert shard_requests > 0, per_worker
            assert shards["transport"] == "spawn", shards
            shard_note = (
                f", {shard_procs} shard workers alive "
                f"({shard_requests} fan-out requests)"
            )

        status, payload = _get(port, "/healthz")
        assert status == 200, (status, payload)

        print(
            f"OK: {NUM_REQUESTS} requests -> {engine_calls} engine calls "
            f"({coalesced} coalesced, mean occupancy {occupancy:.1f}), "
            f"p99 {query_metrics['latency']['p99_ms']:.1f} ms{shard_note}"
        )
        return 0
    finally:
        server.terminate()
        server.wait(timeout=30)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

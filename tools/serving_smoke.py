#!/usr/bin/env python
"""CI serving smoke: boot `repro serve`, hammer it, assert real coalescing.

Starts a real server subprocess on an ephemeral port over the given saved
index, fires concurrent single-query requests at it from a thread pool,
and then asserts — via ``/stats`` — that server-side micro-batching
actually coalesced them:

* every request answered 200 and every response carries a match field;
* ``engine_calls`` < requests (fewer engine calls than requests);
* ``coalesced_calls`` >= 1 and ``mean_batch_occupancy`` > 1.0;
* ``/healthz`` reports ok before and after the burst.

With ``--shard-procs N`` the server runs in router-backed multi-process
mode (one shard router fanning probes out to N spawned shard workers) and
the smoke additionally asserts the per-shard surface:

* ``/stats`` carries a ``shards`` entry with exactly N workers, all alive,
  and a positive total request count after the burst;
* ``/metrics`` exposes the ``repro_shard_*`` families.

With ``--fault-spec SPEC`` (requires ``--shard-procs``) the smoke becomes a
chaos scenario instead of a coalescing burst: the server boots with the
fault schedule armed (e.g. the ``crash-one-worker`` preset) and the client
drives ``allow_partial`` batches through the failure, asserting that

* the service *degrades* — at least one 200 arrives with
  ``completeness < 1`` and ``shards_missing`` set — and never answers 5xx
  to a partial-tolerant request;
* the service *recovers* — completeness returns to 1.0 once the breaker's
  half-open probe succeeds, with every worker's breaker closed and at
  least one recovery probe counted in ``/stats``;
* ``/metrics`` exposes the ``repro_shard_breaker_state`` and
  ``repro_shard_retries_total`` families.

Usage::

    PYTHONPATH=src python tools/serving_smoke.py INDEX_PATH QUERIES_FILE \
        [--shard-procs N] [--fault-spec SPEC]
"""

from __future__ import annotations

import json
import re
import subprocess
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from http.client import HTTPConnection
from pathlib import Path

NUM_REQUESTS = 64
NUM_CLIENTS = 16

_READY_PATTERN = re.compile(r"listening on http://127\.0\.0\.1:(\d+)")


def _read_queries(path: Path, count: int) -> list[list[int]]:
    queries: list[list[int]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            items = sorted({int(token) for token in line.split()})
            if items:
                queries.append(items)
    if not queries:
        raise SystemExit(f"no queries in {path}")
    return [queries[i % len(queries)] for i in range(count)]


def _get(port: int, path: str) -> tuple[int, dict]:
    connection = HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        connection.request("GET", path)
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


def _get_text(port: int, path: str) -> tuple[int, str]:
    connection = HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        connection.request("GET", path)
        response = connection.getresponse()
        return response.status, response.read().decode()
    finally:
        connection.close()


def _post(port: int, path: str, payload: dict) -> tuple[int, dict]:
    connection = HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        body = json.dumps(payload).encode()
        connection.request("POST", path, body, {"Content-Type": "application/json"})
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


def _post_query(port: int, query: list[int]) -> tuple[int, dict]:
    return _post(port, "/query", {"query": query})


def _run_chaos(port: int, queries: list[list[int]], shard_procs: int) -> int:
    """Drive allow_partial batches through the fault schedule: the service
    must degrade (partial 200s), recover (completeness back to 1.0), and
    never answer 5xx to a partial-tolerant client."""
    batch = {"queries": queries[:8], "allow_partial": True}
    saw_partial = False
    recovered = False
    responses = 0
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        status, payload = _post(port, "/query-batch", batch)
        assert status < 500, f"5xx under chaos (response {responses}): {payload}"
        assert status == 200, (status, payload)
        responses += 1
        completeness = payload.get("completeness", 1.0)
        if completeness < 1.0:
            saw_partial = True
            assert payload["shards_missing"], payload
            assert len(payload["results"]) == len(batch["queries"]), payload
        elif saw_partial:
            recovered = True
            assert payload.get("shards_missing", []) == [], payload
            break
        time.sleep(0.1)
    assert saw_partial, "fault injection never degraded a response"
    assert recovered, "completeness never returned to 1.0 (no recovery)"

    status, stats = _get(port, "/stats")
    assert status == 200, status
    (index_stats,) = stats["indexes"].values()
    per_worker = index_stats["shards"]["per_worker"]
    assert len(per_worker) == shard_procs, per_worker
    assert all(
        entry["breaker"]["state"] == "closed" for entry in per_worker
    ), per_worker
    retries = sum(entry["retries"] for entry in per_worker)
    assert retries >= 1, f"no half-open recovery probe was ever admitted: {per_worker}"
    failures = sum(entry["failures"] for entry in per_worker)
    assert failures >= 1, per_worker

    status, metrics = _get_text(port, "/metrics")
    assert status == 200, status
    assert "repro_shard_breaker_state" in metrics, "breaker gauge missing"
    assert "repro_shard_retries_total" in metrics, "retries counter missing"

    print(
        f"OK: chaos degraded and recovered over {responses} partial-tolerant "
        f"batches ({failures} worker failures, {retries} recovery probes, "
        f"0 server errors)"
    )
    return 0


def main(argv: list[str]) -> int:
    shard_procs = None
    fault_spec = None
    positional: list[str] = []
    arguments = list(argv)
    while arguments:
        argument = arguments.pop(0)
        if argument == "--shard-procs":
            if not arguments:
                print(__doc__)
                return 2
            shard_procs = int(arguments.pop(0))
        elif argument == "--fault-spec":
            if not arguments:
                print(__doc__)
                return 2
            fault_spec = arguments.pop(0)
        else:
            positional.append(argument)
    if len(positional) != 2 or (fault_spec is not None and shard_procs is None):
        print(__doc__)
        return 2
    index_path, queries_file = positional
    queries = _read_queries(Path(queries_file), NUM_REQUESTS)

    command = [
        sys.executable,
        "-m",
        "repro",
        "serve",
        index_path,
        "--port",
        "0",
        "--batch-window-ms",
        "5",
        "--max-batch-size",
        "64",
    ]
    if shard_procs is not None:
        command += ["--shard-procs", str(shard_procs)]
    if fault_spec is not None:
        command += ["--fault-spec", fault_spec]
    server = subprocess.Popen(command, stdout=subprocess.PIPE, text=True)
    try:
        deadline = time.monotonic() + 60
        port = None
        assert server.stdout is not None
        while time.monotonic() < deadline:
            line = server.stdout.readline()
            if not line:
                raise SystemExit("server exited before printing the ready line")
            match = _READY_PATTERN.search(line)
            if match:
                port = int(match.group(1))
                break
        if port is None:
            raise SystemExit("server never printed the ready line")

        status, payload = _get(port, "/healthz")
        assert status == 200 and payload["status"] == "ok", (status, payload)

        if fault_spec is not None:
            assert shard_procs is not None
            return _run_chaos(port, queries, shard_procs)

        with ThreadPoolExecutor(max_workers=NUM_CLIENTS) as pool:
            responses = list(pool.map(lambda q: _post_query(port, q), queries))
        bad = [(s, p) for s, p in responses if s != 200 or "match" not in p]
        assert not bad, f"{len(bad)} bad responses, first: {bad[0]}"

        status, stats = _get(port, "/stats")
        assert status == 200, status
        (index_stats,) = stats["indexes"].values()
        engine_calls = index_stats["engine_calls"]
        coalesced = index_stats["coalesced_calls"]
        occupancy = index_stats["mean_batch_occupancy"]
        assert index_stats["queries_executed"] == NUM_REQUESTS, index_stats
        assert engine_calls < NUM_REQUESTS, (
            f"no coalescing: {engine_calls} engine calls for {NUM_REQUESTS} requests"
        )
        assert coalesced >= 1, f"coalesced_calls={coalesced}"
        assert occupancy > 1.0, f"mean_batch_occupancy={occupancy}"
        query_metrics = stats["endpoints"]["/query"]
        assert query_metrics["requests"] == NUM_REQUESTS, query_metrics
        assert query_metrics["errors"] == 0, query_metrics

        shard_note = ""
        if shard_procs is not None:
            shards = index_stats.get("shards")
            assert shards is not None, "routed serve exported no shards stats"
            per_worker = shards["per_worker"]
            assert len(per_worker) == shard_procs, per_worker
            assert all(entry["alive"] for entry in per_worker), per_worker
            shard_requests = sum(entry["requests"] for entry in per_worker)
            assert shard_requests > 0, per_worker
            assert shards["transport"] == "spawn", shards
            shard_note = (
                f", {shard_procs} shard workers alive "
                f"({shard_requests} fan-out requests)"
            )

        status, payload = _get(port, "/healthz")
        assert status == 200, (status, payload)

        print(
            f"OK: {NUM_REQUESTS} requests -> {engine_calls} engine calls "
            f"({coalesced} coalesced, mean occupancy {occupancy:.1f}), "
            f"p99 {query_metrics['latency']['p99_ms']:.1f} ms{shard_note}"
        )
        return 0
    finally:
        server.terminate()
        server.wait(timeout=30)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

#!/usr/bin/env python
"""Standalone entry point for the repo lint suite (CI uses this).

Equivalent to ``repro lint``; exists so the analysis job can run the
linter without installing the package::

    python tools/run_lint.py [--format {text,json,github}] [paths...]
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.cli import lint_main  # noqa: E402 - path setup must come first

if __name__ == "__main__":
    sys.exit(lint_main(sys.argv[1:]))

"""Figure 1 — ρ of the skew-adaptive structure vs Chosen Path as p varies.

Regenerates the two curves of the paper's Figure 1 (half the bits at
probability ``p``, half at ``p/8``, α = 2/3) and checks the headline claim:
the paper's structure achieves a strictly smaller ρ than Chosen Path at every
``p``, while prefix filtering sits at exponent ≈ 1.
"""

from __future__ import annotations

import numpy as np

from repro.evaluation.experiments import figure1


def test_figure1_rho_curve(benchmark):
    p_values = np.linspace(0.02, 0.98, 49)
    rows = benchmark(figure1.run, p_values=p_values)

    print()
    print(figure1.render(rows))

    headline = figure1.headline_numbers(rows)
    benchmark.extra_info.update(
        {
            "paper_expectation": "red (ours) strictly below blue (Chosen Path) for all p",
            "fraction_of_grid_where_ours_better": headline["fraction_better"],
            "max_rho_gap": round(headline["max_gap"], 4),
            "mean_rho_gap": round(headline["mean_gap"], 4),
        }
    )
    assert headline["fraction_better"] == 1.0
    assert headline["max_gap"] > 0.05
    # Prefix filtering has exponent ~1 in this Theta(1)-probability regime.
    assert min(row["prefix_filter"] for row in rows) > 0.5

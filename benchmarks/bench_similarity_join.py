"""Similarity join — R ⋈ S via repeated similarity-search queries.

Section 1.1 of the paper notes that the indexing result gives a join
algorithm with time ``O(d |R| |S|^ρ)`` when the output is small.  This bench
runs a self-join with planted near-duplicate pairs on skewed data, comparing
the skew-adaptive index against a brute-force join, and checks that the
planted pairs are recovered with far fewer candidate verifications.
"""

from __future__ import annotations

from repro.baselines.brute_force import BruteForceIndex
from repro.core.config import CorrelatedIndexConfig
from repro.core.correlated_index import CorrelatedIndex
from repro.core.join import similarity_self_join
from repro.data.correlation import plant_correlated_pairs
from repro.evaluation.reporting import format_table
from repro.similarity.predicates import SimilarityPredicate

ALPHA = 0.8
NUM_VECTORS = 250
NUM_PAIRS = 20


def _run_join(index, vectors, predicate):
    return similarity_self_join(index, vectors, predicate)


def test_similarity_self_join_skew_adaptive(benchmark, bench_skewed_distribution):
    vectors, planted = plant_correlated_pairs(
        bench_skewed_distribution, count=NUM_VECTORS, num_pairs=NUM_PAIRS, alpha=ALPHA, seed=3
    )
    predicate = SimilarityPredicate("braun_blanquet", ALPHA / 1.3)

    index = CorrelatedIndex(
        bench_skewed_distribution,
        config=CorrelatedIndexConfig(alpha=ALPHA, repetitions=5, seed=4),
    )
    index.build(vectors)

    result = benchmark(_run_join, index, vectors, predicate)

    brute = BruteForceIndex(predicate)
    brute.build(vectors)
    exact = _run_join(brute, vectors, predicate)

    reported = result.pair_set()
    exact_pairs = exact.pair_set()
    recall = len(reported & exact_pairs) / max(len(exact_pairs), 1)

    print()
    print(
        format_table(
            [
                {
                    "method": "correlated (ours)",
                    "pairs_found": result.num_pairs,
                    "candidates": result.candidates_examined,
                    "verifications": result.similarity_evaluations,
                },
                {
                    "method": "brute_force",
                    "pairs_found": exact.num_pairs,
                    "candidates": exact.candidates_examined,
                    "verifications": exact.similarity_evaluations,
                },
            ],
            title=(
                "Similarity self-join with planted near-duplicate pairs "
                f"(n={NUM_VECTORS}, {NUM_PAIRS} planted pairs, alpha={ALPHA})"
            ),
        )
    )

    benchmark.extra_info.update(
        {
            "paper_expectation": "join via repeated queries: output recovered with "
            "far fewer verifications than the quadratic baseline",
            "join_recall_vs_exact": round(recall, 3),
            "ours_verifications": result.similarity_evaluations,
            "brute_verifications": exact.similarity_evaluations,
        }
    )
    assert reported.issubset(exact_pairs)  # exact verification => no false positives
    assert recall >= 0.75
    assert result.similarity_evaluations < 0.5 * exact.similarity_evaluations

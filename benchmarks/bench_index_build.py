"""Index construction cost — build time and space of every method.

The paper's preprocessing bound is ``O(d n^{1+ρ})`` time and
``O(n^{1+ρ} + dn)`` space.  This bench measures wall-clock build time and the
number of stored filters (the space term the analysis bounds) for all indexes
on the same skewed dataset, so regressions in construction cost are visible.
"""

from __future__ import annotations

import pytest

from repro.baselines.chosen_path import ChosenPathIndex
from repro.baselines.minhash import MinHashIndex
from repro.baselines.prefix_filter import PrefixFilterIndex
from repro.core.config import CorrelatedIndexConfig, SkewAdaptiveIndexConfig
from repro.core.correlated_index import CorrelatedIndex
from repro.core.skewed_index import SkewAdaptiveIndex

ALPHA = 2.0 / 3.0
B1 = ALPHA / 1.3


def _build(index, dataset):
    index.build(dataset)
    return index


@pytest.mark.parametrize("repetitions", [4])
def test_build_correlated_index(benchmark, bench_skewed_distribution, bench_skewed_dataset, repetitions):
    def setup():
        index = CorrelatedIndex(
            bench_skewed_distribution,
            config=CorrelatedIndexConfig(alpha=ALPHA, repetitions=repetitions, seed=0),
        )
        return (index, bench_skewed_dataset), {}

    index = benchmark.pedantic(_build, setup=setup, rounds=3, iterations=1)
    benchmark.extra_info["stored_filters"] = index.total_stored_filters
    benchmark.extra_info["filters_per_vector"] = round(index.build_stats.filters_per_vector, 1)
    assert index.num_indexed == len(bench_skewed_dataset)


@pytest.mark.parametrize("repetitions", [4])
def test_build_adversarial_index(benchmark, bench_skewed_distribution, bench_skewed_dataset, repetitions):
    def setup():
        index = SkewAdaptiveIndex(
            bench_skewed_distribution,
            config=SkewAdaptiveIndexConfig(b1=B1, repetitions=repetitions, seed=0),
        )
        return (index, bench_skewed_dataset), {}

    index = benchmark.pedantic(_build, setup=setup, rounds=3, iterations=1)
    benchmark.extra_info["stored_filters"] = index.total_stored_filters
    assert index.num_indexed == len(bench_skewed_dataset)


@pytest.mark.parametrize("repetitions", [4])
def test_build_chosen_path_index(benchmark, bench_skewed_distribution, bench_skewed_dataset, repetitions):
    b2 = max(bench_skewed_distribution.expected_similarity(), 0.02)

    def setup():
        index = ChosenPathIndex(
            bench_skewed_distribution.dimension, b1=B1, b2=b2, repetitions=repetitions, seed=0
        )
        return (index, bench_skewed_dataset), {}

    index = benchmark.pedantic(_build, setup=setup, rounds=3, iterations=1)
    benchmark.extra_info["stored_filters"] = index.total_stored_filters
    assert index.num_indexed == len(bench_skewed_dataset)


def test_build_prefix_filter_index(benchmark, bench_skewed_distribution, bench_skewed_dataset):
    def setup():
        index = PrefixFilterIndex(B1, item_frequencies=bench_skewed_distribution.probabilities)
        return (index, bench_skewed_dataset), {}

    index = benchmark.pedantic(_build, setup=setup, rounds=3, iterations=1)
    benchmark.extra_info["stored_postings"] = index.total_postings
    assert index.num_indexed == len(bench_skewed_dataset)


def test_build_minhash_index(benchmark, bench_skewed_dataset):
    def setup():
        return (MinHashIndex(B1, num_bands=16, rows_per_band=2, seed=0), bench_skewed_dataset), {}

    index = benchmark.pedantic(_build, setup=setup, rounds=3, iterations=1)
    assert index.num_indexed == len(bench_skewed_dataset)

"""Multi-process shard fan-out vs single-process candidate-merge throughput.

Builds one skew-adaptive index over ``n`` vectors (``REPRO_BENCH_FANOUT_N``,
default 50 000), saves it in the sharded v3 format, and runs the same
batched candidate-enumeration workload (``query_candidates_arrays_batch`` —
the probe/merge-bound surface) through two execution modes on the *same*
on-disk index:

* ``single`` — the ordinary single-process mmap open (the baseline the
  router must beat: threads only, GIL-bound probe resolution);
* ``routed`` — a :class:`repro.dist.ShardRouter` fanning probes out to
  ``REPRO_BENCH_FANOUT_PROCS`` (default 4) spawned shard worker processes,
  each mmapping only its own shards.

Both modes must return bit-identical candidate arrays; the gated number is
the routed/single throughput ratio ``shard_fanout_speedup``.

**The bound scales with the machine.**  Process fan-out buys nothing
without cores: the acceptance bound (>= 1.8x with 4 workers) applies only
when the box actually has >= 4 usable cores *and* the index is acceptance
sized (n >= 50 000, where per-request IPC is amortised over large merges).
Smaller sizes and narrower boxes get guard bounds that catch collapse
(pickling, copies, serial fan-out) without pretending parallel speedup is
measurable there — on a 1-core container the routed mode is *expected* to
be slower than single-process.  The exported ``min_shard_fanout_speedup``
records which bound applied; ``check_batch_regression.py`` enforces it from
``BENCH_shard_fanout.json`` in CI.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.core.config import PersistenceConfig, SkewAdaptiveIndexConfig
from repro.core.serialization import load_index, save_index
from repro.core.skewed_index import SkewAdaptiveIndex
from repro.dist import load_routed_index, shard_router_of
from repro.evaluation.reporting import format_table
from repro.testing import rng_for

from conftest import warm_up

ACCEPTANCE_N = 50_000

#: routed/single throughput bound with >= 4 cores at the acceptance size.
MIN_FANOUT_SPEEDUP = 1.8

#: Guard bounds where real parallel speedup is not measurable: smoke sizes
#: on a multi-core box still amortise enough to stay ahead; 2 cores can at
#: best tread water; 1 core pays the full IPC tax with zero parallelism.
SMOKE_MIN_FANOUT_SPEEDUP = 1.05
TWO_CORE_MIN_FANOUT_SPEEDUP = 0.5
ONE_CORE_MIN_FANOUT_SPEEDUP = 0.2


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


def _speedup_bound(num_vectors: int, cores: int) -> float:
    if cores >= 4:
        if num_vectors >= ACCEPTANCE_N:
            return MIN_FANOUT_SPEEDUP
        return SMOKE_MIN_FANOUT_SPEEDUP
    if cores >= 2:
        return TWO_CORE_MIN_FANOUT_SPEEDUP
    return ONE_CORE_MIN_FANOUT_SPEEDUP


def _workload(distribution, dataset, num_queries, rng):
    """Half planted correlated queries, half fresh draws from the model."""
    planted = [
        distribution.sample_correlated(dataset[index], 0.8, rng)
        for index in range(num_queries // 2)
    ]
    fresh = [
        vector if vector else frozenset({0})
        for vector in distribution.sample_many(num_queries - len(planted), rng)
    ]
    return planted + fresh


def _best_pass_seconds(index, queries, rounds: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        index.query_candidates_arrays_batch(queries)
        best = min(best, time.perf_counter() - start)
    return best


def _run(distribution, num_vectors, num_queries, shard_procs, rounds, save_dir):
    dataset_rng = rng_for("bench:shard-fanout-dataset")
    vectors = distribution.sample_many(num_vectors, dataset_rng)
    dataset = [vector if vector else frozenset({0}) for vector in vectors]
    queries = _workload(
        distribution, dataset, num_queries, rng_for("bench:shard-fanout-queries")
    )

    index = SkewAdaptiveIndex(distribution, config=SkewAdaptiveIndexConfig(seed=3))
    index.build(dataset)
    path = save_dir / "fanout.v3"
    save_index(index, path, config=PersistenceConfig(shards=8))

    single = load_index(path, mode="mmap")
    routed = load_routed_index(path, transport="spawn", shard_procs=shard_procs)
    try:
        warm_up(
            lambda: single.query_candidates_arrays_batch(queries[:16]),
            lambda: routed.query_candidates_arrays_batch(queries[:16]),
        )
        expected_arrays, _ = single.query_candidates_arrays_batch(queries)
        routed_arrays, routed_stats = routed.query_candidates_arrays_batch(queries)
        for expected, actual in zip(expected_arrays, routed_arrays):
            assert np.array_equal(expected, actual), (
                "routed execution diverged from single-process results"
            )

        single_seconds = _best_pass_seconds(single, queries, rounds)
        routed_seconds = _best_pass_seconds(routed, queries, rounds)
    finally:
        shard_router_of(routed).close()

    return {
        "num_vectors": num_vectors,
        "num_queries": num_queries,
        "shard_procs": shard_procs,
        "single_seconds": single_seconds,
        "routed_seconds": routed_seconds,
        "single_qps": num_queries / single_seconds,
        "routed_qps": num_queries / routed_seconds,
        "speedup": single_seconds / routed_seconds,
        "fanout_requests": routed_stats.fanout.total_requests,
        "fanout_rows": routed_stats.fanout.total_rows,
    }


def test_shard_fanout_throughput(benchmark, bench_skewed_distribution, tmp_path):
    num_vectors = int(os.environ.get("REPRO_BENCH_FANOUT_N", str(ACCEPTANCE_N)))
    num_queries = int(os.environ.get("REPRO_BENCH_FANOUT_QUERIES", "300"))
    shard_procs = int(os.environ.get("REPRO_BENCH_FANOUT_PROCS", "4"))
    rounds = int(os.environ.get("REPRO_BENCH_FANOUT_ROUNDS", "3"))
    cores = _usable_cores()
    bound = _speedup_bound(num_vectors, cores)

    result = benchmark.pedantic(
        _run,
        kwargs=dict(
            distribution=bench_skewed_distribution,
            num_vectors=num_vectors,
            num_queries=num_queries,
            shard_procs=shard_procs,
            rounds=rounds,
            save_dir=tmp_path,
        ),
        rounds=1,
        iterations=1,
    )

    print()
    print(
        format_table(
            [
                {
                    "n": result["num_vectors"],
                    "queries": result["num_queries"],
                    "procs": result["shard_procs"],
                    "cores": cores,
                    "single q/s": round(result["single_qps"], 1),
                    "routed q/s": round(result["routed_qps"], 1),
                    "speedup": round(result["speedup"], 2),
                    "bound": bound,
                }
            ],
            title="Shard fan-out: routed (multi-process) vs single-process "
            "candidate-merge throughput (identical results)",
        )
    )

    benchmark.extra_info.update(
        {
            "paper_expectation": "the v3 key-range partition admits "
            "process-parallel probe resolution with bit-identical merges",
            "num_vectors": result["num_vectors"],
            "num_queries": result["num_queries"],
            "shard_procs": result["shard_procs"],
            "usable_cores": cores,
            "single_qps": result["single_qps"],
            "routed_qps": result["routed_qps"],
            "shard_fanout_speedup": result["speedup"],
            "min_shard_fanout_speedup": bound,
            "fanout_requests": result["fanout_requests"],
            "fanout_rows": result["fanout_rows"],
        }
    )

    assert result["speedup"] >= bound, (
        f"shard fan-out throughput regression: {result['speedup']:.2f}x < "
        f"{bound}x (cores={cores}, n={num_vectors})"
    )

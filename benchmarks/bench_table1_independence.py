"""Table 1 — independence ratios for item pairs and triples.

Regenerates the paper's Table 1 statistic (observed vs independence-predicted
co-occurrence counts for random item subsets of size 2 and 3) on the
synthetic benchmark-like datasets, printing the measured values next to the
paper's published ones.  Absolute values differ (the generators only mimic
the real datasets), but the qualitative conclusions are checked: ratios are
at least ~1, triples deviate more than pairs on the dependence-heavy
profiles, and SPOTIFY / KOSARAK stand out as in the paper.
"""

from __future__ import annotations

from repro.evaluation.experiments import table1


def test_table1_independence_ratios(benchmark):
    rows = benchmark(table1.run, scale=0.25, seed=0, num_samples=1500)

    print()
    print(table1.render(rows))

    by_name = {str(row["dataset"]).upper(): row for row in rows}
    benchmark.extra_info.update(
        {
            "paper_expectation": "all ratios >= 1; SPOTIFY and KOSARAK strongly dependent",
            "spotify_pair_ratio": by_name["SPOTIFY"]["measured |I|=2"],
            "kosarak_pair_ratio": by_name["KOSARAK"]["measured |I|=2"],
            "dblp_pair_ratio": by_name["DBLP"]["measured |I|=2"],
        }
    )
    assert len(rows) == 10
    for row in rows:
        assert float(row["measured |I|=2"]) > 0.5
    # The dependence ordering of the paper: SPOTIFY and KOSARAK well above the
    # nearly-independent datasets.
    assert float(by_name["SPOTIFY"]["measured |I|=2"]) > float(by_name["DBLP"]["measured |I|=2"])
    assert float(by_name["KOSARAK"]["measured |I|=2"]) > float(by_name["AOL"]["measured |I|=2"])

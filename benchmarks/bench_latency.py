"""Open-loop per-request latency: routed vs single-process mmap serving.

The throughput benches answer "how fast can a saturated batch go"; this one
answers the ROADMAP's unmeasured question — *per-request p50/p99 under
mixed load* — the number a tail-latency SLO is written against.  One
skew-adaptive index (``REPRO_BENCH_LATENCY_N`` vectors, default 20 000) is
saved in the sharded v3 format and served three ways off the same files:

* ``mmap``   — ordinary single-process mmap open (the baseline);
* ``routed`` — :class:`repro.dist.ShardRouter` over
  ``REPRO_BENCH_LATENCY_PROCS`` spawned shard workers;
* ``slow``   — the same routed setup with one injected slow worker
  (``delay:worker=0`` via the fault subsystem,
  ``REPRO_BENCH_LATENCY_DELAY`` seconds, default 2 ms) — what a p99 looks
  like when one box in the fan-out is sick.

The workload is mixed — three single-query requests to every batch of
eight — and **open loop**: arrivals follow a Poisson schedule fixed before
any mode runs, and a request's latency is measured from its *scheduled*
arrival, so a slow mode pays its queueing delay instead of silently
slowing the arrival process down (no coordinated omission).  The arrival
rate is calibrated to ~50% utilisation of the slowest mode, keeping every
mode in steady state.

The gated number is ``routed_p99_ratio`` (routed p99 over mmap p99),
bounded **above** by a deliberately loose, core-aware guard: per-request
IPC costs real latency — tens of percent is expected, especially on the
starved CI box — but a ratio past the guard means the fan-out path broke
(per-request reconnects, serialisation storms, lock convoys).
``check_batch_regression.py`` enforces it from ``BENCH_latency.json``.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.core.config import PersistenceConfig, SkewAdaptiveIndexConfig
from repro.core.serialization import load_index, save_index
from repro.core.skewed_index import SkewAdaptiveIndex
from repro.dist import load_routed_index, shard_router_of
from repro.evaluation.reporting import format_table
from repro.testing import rng_for

from conftest import warm_up

#: Target utilisation of the slowest mode the arrival rate is calibrated to.
UTILIZATION = 0.5

#: Queries per batch request; the mix is 3 singles to 1 batch.
BATCH_REQUEST_QUERIES = 8
SINGLES_PER_BATCH = 3

#: Upper guard on routed-p99 / mmap-p99 by usable core count.  Loose on
#: purpose: the gate catches a broken fan-out path, not IPC overhead.
FOUR_CORE_MAX_P99_RATIO = 30.0
TWO_CORE_MAX_P99_RATIO = 60.0
ONE_CORE_MAX_P99_RATIO = 120.0


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


def _p99_ratio_bound(cores: int) -> float:
    if cores >= 4:
        return FOUR_CORE_MAX_P99_RATIO
    if cores >= 2:
        return TWO_CORE_MAX_P99_RATIO
    return ONE_CORE_MAX_P99_RATIO


def _mixed_requests(distribution, dataset, num_requests, rng):
    """A mixed open-loop workload: mostly singles, every 4th a batch."""
    requests = []
    for number in range(num_requests):
        if number % (SINGLES_PER_BATCH + 1) == SINGLES_PER_BATCH:
            size = BATCH_REQUEST_QUERIES
        else:
            size = 1
        queries = []
        for _ in range(size):
            if rng.random() < 0.5:
                queries.append(
                    distribution.sample_correlated(
                        dataset[int(rng.integers(len(dataset)))], 0.8, rng
                    )
                )
            else:
                fresh = distribution.sample(rng)
                queries.append(fresh if fresh else frozenset({0}))
        requests.append(queries)
    return requests


def _closed_loop_mean_seconds(index, requests) -> float:
    start = time.perf_counter()
    for request in requests:
        index.query_batch(request)
    return (time.perf_counter() - start) / len(requests)


def _open_loop_latencies(index, requests, schedule, workers) -> np.ndarray:
    """Issue requests at their scheduled arrival times; latency per request
    runs from the scheduled arrival to completion (queueing included)."""
    clock_zero = time.perf_counter()

    def execute(request, arrival: float) -> float:
        index.query_batch(request)
        return time.perf_counter() - clock_zero - arrival

    with ThreadPoolExecutor(max_workers=workers) as pool:
        futures = []
        for arrival, request in zip(schedule, requests):
            delay = clock_zero + arrival - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            futures.append(pool.submit(execute, request, arrival))
        return np.asarray([future.result() for future in futures])


def _percentiles_ms(latencies: np.ndarray) -> tuple[float, float]:
    p50, p99 = np.percentile(latencies, [50, 99])
    return float(p50) * 1e3, float(p99) * 1e3


def _run(distribution, num_vectors, num_requests, shard_procs, delay_seconds, save_dir):
    dataset_rng = rng_for("bench:latency-queries")
    vectors = distribution.sample_many(num_vectors, dataset_rng)
    dataset = [vector if vector else frozenset({0}) for vector in vectors]
    requests = _mixed_requests(distribution, dataset, num_requests, dataset_rng)

    index = SkewAdaptiveIndex(distribution, config=SkewAdaptiveIndexConfig(seed=3))
    index.build(dataset)
    path = save_dir / "latency.v3"
    save_index(index, path, config=PersistenceConfig(shards=8))

    modes = {
        "mmap": load_index(path, mode="mmap"),
        "routed": load_routed_index(path, transport="spawn", shard_procs=shard_procs),
        "slow": load_routed_index(
            path,
            transport="spawn",
            shard_procs=shard_procs,
            fault_spec=f"delay:worker=0:seconds={delay_seconds:g}",
        ),
    }
    try:
        warm_up(*(lambda m=mode: m.query_batch(requests[0]) for mode in modes.values()))
        expected, _ = modes["mmap"].query_batch(requests[-1])
        routed_results, _ = modes["routed"].query_batch(requests[-1])
        assert routed_results == expected, (
            "routed execution diverged from single-process results"
        )

        # Calibrate one shared Poisson arrival schedule off the slowest
        # mode, so every mode faces identical offered load in steady state.
        mean_seconds = _closed_loop_mean_seconds(
            modes["slow"], requests[: min(32, len(requests))]
        )
        rate = UTILIZATION / max(mean_seconds, 1e-6)
        schedule_rng = np.random.default_rng(rng_for("bench:latency-queries").integers(2**32))
        schedule = np.cumsum(
            schedule_rng.exponential(1.0 / rate, size=len(requests))
        )

        latencies = {
            name: _open_loop_latencies(index, requests, schedule, workers=8)
            for name, index in modes.items()
        }
    finally:
        for name in ("routed", "slow"):
            shard_router_of(modes[name]).close()

    result = {
        "num_vectors": num_vectors,
        "num_requests": num_requests,
        "shard_procs": shard_procs,
        "delay_seconds": delay_seconds,
        "offered_rps": rate,
    }
    for name, values in latencies.items():
        p50_ms, p99_ms = _percentiles_ms(values)
        result[f"{name}_p50_ms"] = p50_ms
        result[f"{name}_p99_ms"] = p99_ms
    result["routed_p99_ratio"] = result["routed_p99_ms"] / result["mmap_p99_ms"]
    return result


def test_serving_latency_percentiles(benchmark, bench_skewed_distribution, tmp_path):
    num_vectors = int(os.environ.get("REPRO_BENCH_LATENCY_N", "20000"))
    num_requests = int(os.environ.get("REPRO_BENCH_LATENCY_REQUESTS", "400"))
    shard_procs = int(os.environ.get("REPRO_BENCH_LATENCY_PROCS", "2"))
    delay_seconds = float(os.environ.get("REPRO_BENCH_LATENCY_DELAY", "0.002"))
    cores = _usable_cores()
    bound = _p99_ratio_bound(cores)

    result = benchmark.pedantic(
        _run,
        kwargs=dict(
            distribution=bench_skewed_distribution,
            num_vectors=num_vectors,
            num_requests=num_requests,
            shard_procs=shard_procs,
            delay_seconds=delay_seconds,
            save_dir=tmp_path,
        ),
        rounds=1,
        iterations=1,
    )

    print()
    print(
        format_table(
            [
                {
                    "mode": name,
                    "p50 ms": round(result[f"{name}_p50_ms"], 2),
                    "p99 ms": round(result[f"{name}_p99_ms"], 2),
                }
                for name in ("mmap", "routed", "slow")
            ],
            title=f"Open-loop mixed-load latency (n={num_vectors}, "
            f"{result['offered_rps']:.0f} req/s offered, procs={shard_procs}, "
            f"slow worker +{delay_seconds * 1e3:g}ms)",
        )
    )

    benchmark.extra_info.update(
        {
            "paper_expectation": "routed fan-out trades per-request IPC "
            "latency for process parallelism; one slow worker surfaces in "
            "the tail, not a failure",
            "num_vectors": num_vectors,
            "num_requests": num_requests,
            "shard_procs": shard_procs,
            "usable_cores": cores,
            "offered_rps": result["offered_rps"],
            "delay_seconds": delay_seconds,
            **{
                key: result[key]
                for name in ("mmap", "routed", "slow")
                for key in (f"{name}_p50_ms", f"{name}_p99_ms")
            },
            "routed_p99_ratio": result["routed_p99_ratio"],
            "max_routed_p99_ratio": bound,
        }
    )

    # The injected 2ms delay must actually be visible in the sick mode's
    # tail — otherwise the fault wrapper silently stopped injecting.
    assert result["slow_p99_ms"] >= delay_seconds * 1e3, (
        f"slow-worker p99 {result['slow_p99_ms']:.2f}ms is below the "
        f"injected {delay_seconds * 1e3:g}ms delay: fault injection broke"
    )
    assert result["routed_p99_ratio"] <= bound, (
        f"routed per-request p99 regression: {result['routed_p99_ratio']:.1f}x "
        f"mmap p99 > {bound}x guard (cores={cores}, n={num_vectors})"
    )

"""Section 1 motivating example — exploiting skew on a harmonic query.

Regenerates the introduction's harmonic-distribution example: the
skew-oblivious single-search exponent, the two-way frequent/rare split
heuristic sketched in the paper, and the paper's principled skew-adaptive
exponent, which is the answer to the question the example raises.
"""

from __future__ import annotations

from repro.evaluation.experiments import motivating


def test_motivating_example(benchmark):
    rows = benchmark(motivating.run, i1_values=(0.2, 0.3, 0.4, 0.5, 0.6), dimension=4096)

    print()
    print(motivating.render(rows))

    max_gain = max(float(row["adaptive_speedup"]) for row in rows)
    benchmark.extra_info.update(
        {
            "paper_expectation": "skew can be exploited on the harmonic distribution; "
            "the principled structure never does worse and typically does better",
            "max_adaptive_speedup_exponent": round(max_gain, 4),
        }
    )
    for row in rows:
        assert float(row["skew_adaptive_rho"]) <= float(row["single_rho"]) + 1e-9
    assert max_gain > 0.0

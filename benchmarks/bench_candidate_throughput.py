"""CSR-native vs set-based candidate throughput — the merge pipeline's gate.

Builds a skew-adaptive index over ``n`` vectors (``REPRO_BENCH_CAND_N``,
default 10 000) and runs the same single-query ``query_candidates`` workload
twice on the *same built index*: once through a per-path set-based reference
loop (reimplemented here — the ``use_csr_merge=False`` engine escape hatch
was removed after its one-release soak, so the benchmark keeps its own
yardstick) and once through the CSR-native probe/merge pipeline.  Both runs
must return identical candidate sets, and the CSR path must deliver >= 1.5x
the reference throughput — the bound is enforced both here and by
``benchmarks/check_batch_regression.py``, which CI runs against the exported
pytest-benchmark JSON (``BENCH_candidates.json``).

CI runs this on a small size (n=2000) as a smoke gate; the acceptance-level
configuration is the default n=10000, where the measured speedup is ~2.5-3x.
"""

from __future__ import annotations

import os
import time

from repro.core.config import SkewAdaptiveIndexConfig
from repro.core.skewed_index import SkewAdaptiveIndex
from repro.evaluation.reporting import format_table
from repro.testing import rng_for

from conftest import warm_up

#: Minimum CSR/reference throughput ratio; keep in sync with
#: benchmarks/check_batch_regression.py (the CI gate).
MIN_SPEEDUP = 1.5


def _workload(distribution, dataset, num_queries, rng):
    """Half planted correlated queries, half fresh draws from the model."""
    planted = [
        distribution.sample_correlated(dataset[index], 0.8, rng)
        for index in range(num_queries // 2)
    ]
    fresh = [
        vector if vector else frozenset({0})
        for vector in distribution.sample_many(num_queries - len(planted), rng)
    ]
    return planted + fresh


def _reference_candidates(index, query) -> set[int]:
    """Pre-refactor execution shape: per-path lookups into Python sets.

    Mirrors what ``use_csr_merge=False`` used to run — per-repetition filter
    generation, one posting-list lookup per path, ``set.add`` per collision
    — so the gated ratio keeps measuring the same modernisation.
    """
    engine = index._engine  # noqa: SLF001 - benchmark reaches into the engine
    query_set = frozenset(int(item) for item in query)
    candidates: set[int] = set()
    if not query_set or not len(engine.vectors):
        return candidates
    members = sorted(query_set)
    for repetition in range(engine.repetitions):
        bound = engine._threshold_policy.bind(members)  # noqa: SLF001
        generation = engine._generators[repetition].generate(members, bound)  # noqa: SLF001
        for candidate_id in engine._indexes[repetition].candidates(  # noqa: SLF001
            generation.paths, generation.keys
        ):
            if candidate_id not in engine._removed:  # noqa: SLF001
                candidates.add(candidate_id)
    return candidates


def _run(distribution, num_vectors: int, num_queries: int) -> dict:
    rng = rng_for("bench:candidate-throughput")
    dataset = [
        vector if vector else frozenset({0})
        for vector in distribution.sample_many(num_vectors, rng)
    ]
    index = SkewAdaptiveIndex(
        distribution, config=SkewAdaptiveIndexConfig(b1=0.5, repetitions=4, seed=1)
    )
    build_stats = index.build(dataset)
    queries = _workload(distribution, dataset, num_queries, rng)

    # Warm both paths (hash levels, probe tables, kernel JIT) before timing.
    warm_up(
        lambda: _reference_candidates(index, queries[0]),
        lambda: index.query_candidates(queries[0]),
    )

    reference_start = time.perf_counter()
    reference = [_reference_candidates(index, query) for query in queries]
    reference_seconds = time.perf_counter() - reference_start

    csr_start = time.perf_counter()
    merged = [index.query_candidates(query)[0] for query in queries]
    csr_seconds = time.perf_counter() - csr_start

    assert merged == reference, "CSR merge diverged from the set-based reference"
    return {
        "num_vectors": num_vectors,
        "num_queries": num_queries,
        "build_seconds": build_stats.build_seconds,
        "reference_seconds": reference_seconds,
        "csr_seconds": csr_seconds,
        "reference_qps": num_queries / reference_seconds,
        "csr_qps": num_queries / csr_seconds,
        "speedup": reference_seconds / csr_seconds,
        "mean_candidates": sum(len(c) for c in merged) / max(len(merged), 1),
    }


def test_csr_vs_set_candidate_throughput(benchmark, bench_skewed_distribution):
    num_vectors = int(os.environ.get("REPRO_BENCH_CAND_N", "10000"))
    num_queries = int(os.environ.get("REPRO_BENCH_CAND_QUERIES", "300"))

    result = benchmark.pedantic(
        _run,
        kwargs=dict(
            distribution=bench_skewed_distribution,
            num_vectors=num_vectors,
            num_queries=num_queries,
        ),
        rounds=1,
        iterations=1,
    )

    print()
    print(
        format_table(
            [
                {
                    "n": result["num_vectors"],
                    "queries": result["num_queries"],
                    "set q/s": round(result["reference_qps"], 1),
                    "csr q/s": round(result["csr_qps"], 1),
                    "speedup": round(result["speedup"], 2),
                    "mean cands": round(result["mean_candidates"], 1),
                }
            ],
            title="CSR-native vs set-based candidate throughput (identical results)",
        )
    )

    benchmark.extra_info.update(
        {
            "paper_expectation": "array-native probe/merge keeps candidate "
            "verification cheap without changing any candidate set",
            "num_vectors": result["num_vectors"],
            "num_queries": result["num_queries"],
            "reference_qps": result["reference_qps"],
            "csr_qps": result["csr_qps"],
            "csr_merge_speedup": result["speedup"],
            "min_speedup_gate": MIN_SPEEDUP,
        }
    )

    assert result["speedup"] >= MIN_SPEEDUP, (
        f"CSR merge throughput regression: {result['speedup']:.2f}x < {MIN_SPEEDUP}x"
    )
